"""Ablation: VFILTER engineering choices.

1. **Attribute pruning** (paper Section VII future work): how many
   additional candidates are cut when views carry attribute predicates
   the query lacks.
2. **Wildcard-path registry**: all-wildcard view paths are served from
   per-length aggregates instead of the NFA; this measures the cost of
   a filter call with and without wildcard-heavy views present.
"""

from __future__ import annotations

import pytest

from repro.bench import FILTERING_CONFIG
from repro.core import VFilter, View
from repro.workload import QueryGenConfig, QueryGenerator, generate_xmark_document

from conftest import write_results

_rows: list[list[object]] = []


@pytest.fixture(scope="module")
def attribute_workload():
    document = generate_xmark_document(scale=0.25, seed=21)
    config = QueryGenConfig(
        max_depth=4,
        prob_wild=0.2,
        prob_desc=0.2,
        num_pred=1,
        num_nestedpath=2,
        attributes=("id", "category", "person"),
    )
    generator = QueryGenerator(document.schema, config, seed=21)
    plain_generator = QueryGenerator(document.schema, FILTERING_CONFIG, seed=99)
    # Half the pool carries attribute predicates, half is structural —
    # pruning should cut (roughly) the constrained half for
    # attribute-free probes while keeping the structural half intact.
    views = [View(f"A{i}", generator.generate()) for i in range(750)]
    views += [View(f"S{i}", plain_generator.generate()) for i in range(750)]
    queries = plain_generator.generate_many(40)
    return views, queries


@pytest.mark.parametrize("pruning", [False, True])
def test_ablation_attribute_pruning(benchmark, attribute_workload, pruning):
    views, queries = attribute_workload
    vfilter = VFilter(attribute_pruning=pruning)
    vfilter.add_views(views)

    def run():
        return sum(len(vfilter.filter(query).candidates) for query in queries)

    total_candidates = benchmark(run)
    label = "on" if pruning else "off"
    _rows.append([
        f"attribute pruning {label}",
        total_candidates,
        f"{benchmark.stats['mean'] * 1e3:.2f} ms",
    ])


def test_ablation_attribute_pruning_is_sound(attribute_workload):
    """Pruning never drops a view the un-pruned filter would keep AND
    that has a homomorphism (candidates with unmatched constraints are
    exactly the ones removed)."""
    from repro.matching import has_homomorphism

    views, queries = attribute_workload
    pruned = VFilter(attribute_pruning=True)
    unpruned = VFilter(attribute_pruning=False)
    pruned.add_views(views)
    unpruned.add_views(views)
    lookup = {view.view_id: view for view in views}
    for query in queries[:10]:
        kept = set(pruned.filter(query).candidates)
        baseline = set(unpruned.filter(query).candidates)
        assert kept <= baseline
        for view_id in baseline - kept:
            assert not has_homomorphism(lookup[view_id].pattern, query)


@pytest.fixture(scope="module", autouse=True)
def _ablation_report():
    yield
    if len(_rows) < 2:
        return
    write_results(
        "ablation_vfilter",
        ["configuration", "total candidates (40 queries)", "filter time"],
        _rows,
        "Ablation — VFILTER attribute pruning (750 constrained + 750 "
        "structural views, attribute-free probes)",
    )
