"""Figure 10: VFILTER utility ``U(Q) = |V''| / |V_Q|`` on V_1..V_8.

``V''`` is VFILTER's candidate set; ``V_Q`` the views with an actual
homomorphism to ``Q``.  ``U ≥ 1`` always (no false negatives); the paper
reports the average very close to 1 and the maximum between 3 and 16 —
false positives come from distinct tree patterns sharing their path
decompositions, which the workload rarely produces.
"""

from __future__ import annotations

import pytest

from repro.bench import FILTERING_CONFIG, build_view_patterns
from repro.core import VFilter
from repro.matching import has_homomorphism
from repro.workload import QueryGenerator, generate_xmark_document

from conftest import BENCH_SETS, UTILITY_QUERIES, write_results

_series: dict[int, tuple[float, float]] = {}


@pytest.fixture(scope="module")
def probe_queries():
    document = generate_xmark_document(scale=0.25, seed=7)
    generator = QueryGenerator(document.schema, FILTERING_CONFIG, seed=1234)
    return generator.generate_many(UTILITY_QUERIES)


@pytest.mark.parametrize("count", BENCH_SETS)
def test_fig10_utility(benchmark, view_sets, probe_queries, count):
    views = view_sets[count]
    vfilter = VFilter()
    vfilter.add_views(views)

    def utilities():
        values = []
        for query in probe_queries:
            candidates = set(vfilter.filter(query).candidates)
            actual = [
                view.view_id
                for view in views
                if has_homomorphism(view.pattern, query)
            ]
            if not actual:
                continue
            missing = set(actual) - candidates
            assert not missing, "false negative in VFILTER"
            values.append(len(candidates) / len(actual))
        return values

    values = benchmark.pedantic(utilities, rounds=1, iterations=1)
    assert values, "no probe query matched any view"
    _series[count] = (sum(values) / len(values), max(values))


@pytest.fixture(scope="module", autouse=True)
def _fig10_report(view_sets):
    yield
    if len(_series) < len(BENCH_SETS):
        return
    rows = [
        [count, f"{_series[count][0]:.3f}", f"{_series[count][1]:.2f}"]
        for count in BENCH_SETS
    ]
    title = (
        "Figure 10 — utility U(Q)=|V''|/|V_Q| "
        f"({UTILITY_QUERIES} probe queries per view set)"
    )
    write_results("fig10_utility", ["views", "avg U", "max U"], rows, title)
