"""Tables I-III: the paper's worked example and test workload.

Not timing experiments — these regenerate the paper's tables so the
setup of Sections III-VI is inspectable next to the figures:

* Table I — the example views V1..V4,
* Table II — their decomposed (normalized) path patterns,
* Table III — the four XMark test queries and how many views answer
  each one (verified live against the benchmark environment).
"""

from __future__ import annotations

import pytest

from repro.bench import TABLE_I_QUERY, TABLE_I_VIEWS, TEST_QUERIES
from repro.core import View

from conftest import write_results


def test_table_i_and_ii(benchmark):
    benchmark.pedantic(
        lambda: [View.from_xpath(vid, e) for vid, e in TABLE_I_VIEWS.items()],
        rounds=1, iterations=1,
    )
    rows_i = []
    rows_ii = []
    index = 1
    for view_id, expression in TABLE_I_VIEWS.items():
        view = View.from_xpath(view_id, expression)
        rows_i.append([view_id, expression, view.path_count])
        for path in view.paths:
            rows_ii.append([f"P{index}", path.to_xpath(), view_id])
            index += 1
    write_results(
        "table1_views", ["view", "xpath", "|D(V)|"], rows_i,
        f"Table I — example views (query Qe = {TABLE_I_QUERY})",
    )
    write_results(
        "table2_paths", ["path", "pattern", "from view"], rows_ii,
        "Table II — decomposed path patterns of Table I",
    )


def test_table_iii(benchmark, env):
    benchmark.pedantic(
        lambda: env.system.answer(TEST_QUERIES['Q1'][0], 'MV'), rounds=1,
        iterations=1,
    )
    rows = []
    for query_id, (expression, expected_views) in TEST_QUERIES.items():
        outcome = env.system.answer(expression, "MV")
        truth = env.system.direct_codes(expression)
        assert outcome.codes == truth
        rows.append([
            query_id,
            expression,
            expected_views,
            len(outcome.view_ids),
            len(outcome.codes),
        ])
        assert len(outcome.view_ids) == expected_views
    write_results(
        "table3_queries",
        ["query", "xpath", "paper #views", "measured #views", "answers"],
        rows,
        "Table III — XMark test queries (answered by 1/2/2/3 views)",
    )
