"""Hot-path benchmark: cold vs warm answer latency under a skewed
(Zipf-like) repeated-query workload.

Serving heavy repeated traffic is the ROADMAP's north star; this
benchmark measures what the plan cache + coverage memo buy on exactly
that shape of workload:

1. **baseline** — every distinct query answered once through a raw
   re-derivation pipeline equivalent to the pre-cache code path (parse,
   VFILTER, selection, rewrite; no memo, no plan cache).  This is the
   "no new layer" reference for the cold-overhead claim.
2. **cold** — the same distinct queries answered once each on a caching
   system: every call is a plan-cache miss, so (cold − baseline) is
   the overhead the caching layer adds to first-time queries.
3. **warm** — a skewed replay (rank weight ``1/rank^1.1``) of many
   thousands of samples over the same pool: nearly every call is a
   plan-cache hit.

Every answer — baseline, cold, and warm — is checked byte-identical
(identical sorted Dewey code lists) against the baseline run's answer
for that query, so the cache can never trade correctness for speed.

Run as a script (writes ``BENCH_hot_path.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py

Environment knobs: ``REPRO_BENCH_SCALE`` (default 4.0),
``REPRO_BENCH_HOT_VIEWS`` (default 1000), ``REPRO_BENCH_HOT_SAMPLES``
(default 2000).  Under pytest a small configuration runs with relaxed
timing thresholds (machine-dependent numbers are for the script run).
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

from repro.bench import build_environment
from repro.bench.report import run_metadata
from repro.core.selection import select_heuristic
from repro.core.rewrite import rewrite
from repro.xpath.parser import parse_xpath

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_hot_path.json")

ZIPF_EXPONENT = 1.1


def _answer_uncached(system, expression: str):
    """The seed repository's HV answering pipeline, re-derived per call:
    no parse cache benefit (pattern object is rebuilt), no coverage
    memo, no plan cache.  Reference for the cold-overhead measurement."""
    pattern = parse_xpath(expression)
    filter_result = system.vfilter.filter(pattern)
    selection = select_heuristic(
        filter_result,
        system.view,
        pattern,
        system.fragments.fragment_bytes,
    )
    result = rewrite(
        selection,
        pattern,
        system.fragments,
        system.document.schema,
        system.document.fst,
    )
    return result.codes


def _zipf_weights(count: int) -> list[float]:
    return [1.0 / (rank ** ZIPF_EXPONENT) for rank in range(1, count + 1)]


def build_query_pool(system, distinct: int, seed: int) -> list[str]:
    """Distinct answerable queries: the four paper test queries plus a
    sample of materialized view definitions (every view answers itself,
    so the pool is answerable by construction and mirrors dashboards
    re-asking the questions the views were built for)."""
    from repro.bench.workloads import TEST_QUERIES

    pool = [expression for expression, _ in TEST_QUERIES.values()]
    rng = random.Random(seed)
    views = system.materialized_views()
    rng.shuffle(views)
    for view in views:
        if len(pool) >= distinct:
            break
        expression = view.to_xpath()
        if expression not in pool:
            pool.append(expression)
    return pool[:distinct]


def run_hot_path(
    scale: float,
    view_count: int,
    distinct: int,
    samples: int,
    seed: int = 42,
) -> dict:
    setup_started = time.perf_counter()
    env = build_environment(scale=scale, view_count=view_count, seed=seed)
    setup_seconds = time.perf_counter() - setup_started
    system = env.system
    pool = build_query_pool(system, distinct, seed)

    # Phase 1: baseline — raw pipeline, one pass over the pool.
    truth: dict[str, list] = {}
    baseline_seconds = 0.0
    for expression in pool:
        started = time.perf_counter()
        codes = _answer_uncached(system, expression)
        baseline_seconds += time.perf_counter() - started
        truth[expression] = list(codes)

    # Phase 2: cold — caching layer on, every query a plan-cache miss.
    cold_seconds = 0.0
    for expression in pool:
        started = time.perf_counter()
        outcome = system.answer(expression, "HV")
        cold_seconds += time.perf_counter() - started
        assert not outcome.plan_cache_hit, "cold pass must miss the cache"
        assert outcome.codes == truth[expression], (
            f"cold answer differs from baseline for {expression!r}"
        )

    # Phase 3: warm — skewed replay; nearly every call is a hit.
    rng = random.Random(seed + 1)
    replay = rng.choices(pool, weights=_zipf_weights(len(pool)), k=samples)
    warm_seconds = 0.0
    warm_calls = 0
    for expression in replay:
        started = time.perf_counter()
        outcome = system.answer(expression, "HV")
        warm_seconds += time.perf_counter() - started
        warm_calls += 1
        assert outcome.plan_cache_hit, "replay after cold pass must hit"
        assert outcome.codes == truth[expression], (
            f"warm answer differs from baseline for {expression!r}"
        )

    stats = system.stats()
    assert stats["plan_cache"]["hits"] >= warm_calls

    baseline_mean = baseline_seconds / len(pool)
    cold_mean = cold_seconds / len(pool)
    warm_mean = warm_seconds / warm_calls
    return {
        "config": {
            "scale": scale,
            "views_registered": stats["views"]["registered"],
            "views_materialized": stats["views"]["materialized"],
            "distinct_queries": len(pool),
            "replay_samples": samples,
            "zipf_exponent": ZIPF_EXPONENT,
            "seed": seed,
        },
        "setup_seconds": round(setup_seconds, 3),
        "baseline_cold_ms": round(baseline_mean * 1e3, 4),
        "cold_ms": round(cold_mean * 1e3, 4),
        "warm_ms": round(warm_mean * 1e3, 4),
        "warm_speedup_vs_cold": round(cold_mean / warm_mean, 1),
        "cold_overhead_vs_baseline_pct": round(
            (cold_mean / baseline_mean - 1.0) * 100, 2
        ),
        "answers_byte_identical": True,
        "plan_cache": stats["plan_cache"],
        "coverage_memo": stats["coverage_memo"],
    }


def test_hot_path_small():
    """Pytest entry: small configuration, correctness + a conservative
    speedup bound (timing assertions stay loose off the record run)."""
    report = run_hot_path(scale=0.4, view_count=80, distinct=12, samples=400)
    assert report["answers_byte_identical"]
    assert report["plan_cache"]["hits"] > 0
    assert report["warm_speedup_vs_cold"] >= 2.0


def main() -> int:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "4.0"))
    view_count = int(os.environ.get("REPRO_BENCH_HOT_VIEWS", "1000"))
    samples = int(os.environ.get("REPRO_BENCH_HOT_SAMPLES", "2000"))
    report = run_hot_path(
        scale=scale, view_count=view_count, distinct=40, samples=samples
    )
    report["run"] = run_metadata()
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {RESULT_PATH}")
    # Acceptance: warm repeats ≥ 5× faster than cold, identical answers,
    # nonzero hits on the warm run.
    assert report["warm_speedup_vs_cold"] >= 5.0, report["warm_speedup_vs_cold"]
    assert report["plan_cache"]["hits"] > 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
