"""Cold-path perf smoke: the optimized code paths must be exercised.

A scaled-down cold-path microbenchmark (small document, few dozen
views, plan cache disabled) that asserts *feature flags*, not timings —
CI machines are too noisy for latency assertions, but they can verify
that the structural optimizations are actually on the serving path:

* **compiled VFILTER** — every filter layer carries a compiled
  transition table after registration (epoch publish precompiles), and
  every cold ``answer()`` goes through the compiled read path (zero
  set-simulation reads);
* **packed Dewey keys** — every encoded node carries ``dewey_packed``
  in lockstep with its tuple code, and the TJ baseline's per-label
  streams are packed byte strings;
* **correctness guard** — all answers are cross-checked against direct
  evaluation (run under ``XMVR_CHECK=1`` in CI for the full contract
  pass).

Run: ``PYTHONPATH=src python benchmarks/perf_smoke.py``
"""

from __future__ import annotations

import sys
import time

from repro.bench import build_environment
from repro.core.system import MaterializedViewSystem
from repro.service import build_query_mix
from repro.xmltree.dewey import pack_code


def run_smoke(scale: float = 0.2, view_count: int = 40) -> dict:
    env = build_environment(scale=scale, view_count=view_count, seed=42)
    system = MaterializedViewSystem(env.document, plan_cache_size=0)
    system.register_views(
        {view.view_id: view.pattern
         for view in env.system.materialized_views()}
    )

    # --- packed-key feature flags -------------------------------------
    sampled = 0
    for node in env.document.tree.iter_nodes():
        assert node.dewey is not None and node.dewey_packed is not None
        assert node.dewey_packed == pack_code(node.dewey), node.dewey
        sampled += 1
        if sampled >= 500:
            break
    assert sampled > 0, "document has no encoded nodes"

    # --- compiled-VFILTER feature flags -------------------------------
    vf_stats = system.vfilter.compiled_stats()
    assert vf_stats["compiled_layers"] == vf_stats["layers"], (
        "epoch publish left an uncompiled filter layer", vf_stats
    )
    assert vf_stats["dfa_rows"] > 0, vf_stats

    # --- drive cold queries -------------------------------------------
    queries = build_query_mix(system, limit=12)
    assert queries, "no answerable queries in the mix"
    answered = 0
    started = time.perf_counter()
    for expression in queries:
        outcome = system.answer(expression)
        assert outcome.codes == system.direct_codes(expression), expression
        assert not outcome.plan_cache_hit
        answered += 1
    elapsed = time.perf_counter() - started

    vf_stats = system.vfilter.compiled_stats()
    assert vf_stats["reads_compiled"] > 0, vf_stats
    assert vf_stats["reads_simulated"] == 0, (
        "a cold answer fell back to NFA set simulation", vf_stats
    )

    # The TJ baseline must run off packed per-label streams.
    tj = system.answer_tj(queries[0])
    assert tj.codes == system.direct_codes(queries[0])
    stream_index = system._stream_index
    assert stream_index is not None and stream_index.stored_bytes > 0
    for code in stream_index.all_codes()[:16]:
        assert isinstance(code, bytes)

    return {
        "queries": answered,
        "cold_seconds": round(elapsed, 4),
        "vfilter": vf_stats,
    }


def test_perf_smoke():
    """Pytest entry (same flags, tiny config)."""
    report = run_smoke(scale=0.15, view_count=24)
    assert report["queries"] > 0


def main() -> int:
    report = run_smoke()
    print(f"perf-smoke: {report['queries']} cold queries in "
          f"{report['cold_seconds']}s; vfilter {report['vfilter']}")
    print("perf-smoke: OK (compiled VFILTER + packed keys exercised)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
