"""Figure 8 (document-scale facet): the base-data vs views crossover.

The paper's headline Figure 8 claim — answering from materialized views
beats scanning the base data — depends on the document being large
relative to the capped view fragments.  At this reproduction's default
laptop scale the base-data evaluators are artificially competitive
(EXPERIMENTS.md discusses why), so this benchmark makes the *scaling
argument* explicit: it sweeps the document scale with a fixed view set
and reports BN / BF / TJ (all linear-ish in the document) against HV
(bounded by the 128 KiB fragment cap).

The shape to observe: the base-data columns grow with the document, the
HV column stays flat, so the curves cross — the paper's regime is the
far right of this table.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_seconds
from repro.bench.workloads import SEED_VIEWS, TEST_QUERIES
from repro.core.system import MaterializedViewSystem
from repro.workload import generate_xmark_document

from conftest import write_results

SCALES = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
# Q3's `name` fragments stay tiny as the document grows, so the view
# strategy remains under the 128 KiB cap at every scale; Q4's annotation
# fragments blow the cap at large scales (the paper's fallback case).
QUERY = TEST_QUERIES["Q3"][0]

_measured: dict[tuple[float, str], float] = {}
_sizes: dict[float, int] = {}
_systems: dict[float, MaterializedViewSystem] = {}


def _system_at(scale: float) -> MaterializedViewSystem:
    system = _systems.get(scale)
    if system is None:
        document = generate_xmark_document(scale=scale, seed=42)
        system = MaterializedViewSystem(document)
        for view_id, expression in SEED_VIEWS.items():
            system.register_view(view_id, expression)
        _systems[scale] = system
        _sizes[scale] = document.tree.size()
    return system


def _run(system: MaterializedViewSystem, method: str):
    if method == "BN":
        return system.answer_bn(QUERY)
    if method == "BF":
        return system.answer_bf(QUERY)
    if method == "TJ":
        return system.answer_tj(QUERY)
    return system.answer(QUERY, "HV")


@pytest.mark.parametrize("method", ["BN", "BF", "TJ", "HV"])
@pytest.mark.parametrize("scale", SCALES)
def test_fig8_crossover(benchmark, scale, method):
    system = _system_at(scale)
    truth = system.direct_codes(QUERY)
    outcome = _run(system, method)
    assert outcome.codes == truth, (scale, method)
    benchmark.pedantic(
        _run, args=(system, method), rounds=7, iterations=1, warmup_rounds=2
    )
    _measured[(scale, method)] = benchmark.stats["mean"]


@pytest.fixture(scope="module", autouse=True)
def _crossover_report():
    yield
    if len(_measured) < len(SCALES) * 4:
        return
    rows = []
    for scale in SCALES:
        rows.append([
            scale,
            _sizes.get(scale, "?"),
            format_seconds(_measured[(scale, "BN")]),
            format_seconds(_measured[(scale, "BF")]),
            format_seconds(_measured[(scale, "TJ")]),
            format_seconds(_measured[(scale, "HV")]),
        ])
    write_results(
        "fig8_crossover",
        ["scale", "doc nodes", "BN", "BF", "TJ", "HV"],
        rows,
        f"Figure 8 facet — base data vs views as the document grows "
        f"(query {QUERY})",
    )
