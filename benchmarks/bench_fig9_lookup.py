"""Figure 9: lookup time — finding the answering view set for Q1..Q4.

Lookup = filtering + selection, without rewriting.  Paper shape: MN
computes a homomorphism per registered view, so its lookup cost scales
with the view count and dominates; with VFILTER both MV and HV are fast
because only a handful of candidates survive, and filtering time itself
dominates their lookup.
"""

from __future__ import annotations

import pytest

from repro.bench import TEST_QUERIES
from repro.bench.report import format_seconds
from repro.core.selection import select_heuristic, select_minimum
from repro.xpath import parse_xpath

from conftest import write_results

QUERY_IDS = list(TEST_QUERIES)
STRATEGIES = ["MN", "MV", "HV"]

_measured: dict[tuple[str, str], float] = {}


def _lookup(system, strategy, pattern):
    if strategy == "MN":
        return select_minimum(
            system.materialized_views(), pattern, system.fragments.fragment_bytes
        )
    filter_result = system.vfilter.filter(pattern)
    if strategy == "MV":
        candidates = [system.view(v) for v in filter_result.candidates]
        return select_minimum(
            candidates, pattern, system.fragments.fragment_bytes
        )
    return select_heuristic(
        filter_result,
        system.view,
        pattern,
        system.fragments.fragment_bytes,
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_fig9_lookup(benchmark, env, query_id, strategy):
    expression, _ = TEST_QUERIES[query_id]
    pattern = parse_xpath(expression)
    selection = _lookup(env.system, strategy, pattern)
    assert selection.views

    benchmark(_lookup, env.system, strategy, pattern)
    _measured[(query_id, strategy)] = benchmark.stats["mean"]


@pytest.fixture(scope="module", autouse=True)
def _fig9_report(env):
    yield
    if len(_measured) < len(QUERY_IDS) * len(STRATEGIES):
        return
    rows = []
    for query_id in QUERY_IDS:
        row = [query_id]
        for strategy in STRATEGIES:
            row.append(format_seconds(_measured[(query_id, strategy)]))
        rows.append(row)
    title = (
        "Figure 9 — lookup time for the answering view set "
        f"({env.view_count} materialized views)"
    )
    write_results("fig9_lookup", ["query"] + STRATEGIES, rows, title)
