"""Ablation: selection objective — fewest views (MV) vs smallest
fragments (HV) vs the combined cost model (paper Section IV-B's
"a cost model that combines above two factors may achieve better
performance", sketched but not implemented there).

For each test query we measure lookup time and end-to-end answer time
under all three selectors, and record the chosen view count and total
fragment bytes — the two resources the objectives trade against each
other.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import TEST_QUERIES
from repro.bench.report import format_bytes, format_seconds
from repro.core.rewrite import rewrite
from repro.core.selection import (
    select_cost_based,
    select_heuristic,
    select_minimum,
)
from repro.xpath import parse_xpath

from conftest import write_results

QUERY_IDS = list(TEST_QUERIES)
SELECTORS = ["MV", "HV", "CB"]

_rows: dict[tuple[str, str], tuple[float, float, int, int]] = {}


def _select(system, selector, pattern):
    if selector == "CB":
        filter_result = system.vfilter.filter(pattern)
        candidates = [system.view(v) for v in filter_result.candidates]
        return select_cost_based(
            candidates, pattern, system.fragments.fragment_bytes
        )
    filter_result = system.vfilter.filter(pattern)
    if selector == "MV":
        candidates = [system.view(v) for v in filter_result.candidates]
        return select_minimum(
            candidates, pattern, system.fragments.fragment_bytes
        )
    return select_heuristic(
        filter_result, system.view, pattern, system.fragments.fragment_bytes
    )


def _answer(system, selector, pattern):
    selection = _select(system, selector, pattern)
    return rewrite(
        selection,
        pattern,
        system.fragments,
        system.document.schema,
        system.document.fst,
    )


@pytest.mark.parametrize("selector", SELECTORS)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_ablation_selection(benchmark, env, query_id, selector):
    expression, _ = TEST_QUERIES[query_id]
    pattern = parse_xpath(expression)
    truth = env.system.direct_codes(expression)

    result = _answer(env.system, selector, pattern)
    assert result.codes == truth, (query_id, selector)

    selection = _select(env.system, selector, pattern)
    total_bytes = sum(
        env.system.fragments.fragment_bytes(view_id)
        for view_id in selection.view_ids
    )

    started = time.perf_counter()
    _select(env.system, selector, pattern)
    lookup = time.perf_counter() - started

    benchmark(_answer, env.system, selector, pattern)
    _rows[(query_id, selector)] = (
        lookup, benchmark.stats["mean"], len(selection.views), total_bytes
    )


@pytest.fixture(scope="module", autouse=True)
def _ablation_report():
    yield
    if len(_rows) < len(QUERY_IDS) * len(SELECTORS):
        return
    rows = []
    for query_id in QUERY_IDS:
        for selector in SELECTORS:
            lookup, total, views, size = _rows[(query_id, selector)]
            rows.append([
                query_id,
                selector,
                views,
                format_bytes(size),
                format_seconds(lookup),
                format_seconds(total),
            ])
    write_results(
        "ablation_selection",
        ["query", "selector", "#views", "fragment bytes", "lookup", "answer"],
        rows,
        "Ablation — selection objective: fewest views (MV) vs smallest "
        "fragments (HV) vs cost model (CB)",
    )
