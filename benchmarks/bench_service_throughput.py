"""Service throughput: worker-pool scaling under skewed vs uniform load.

Drives the in-process serving stack (SnapshotEngine → QueryScheduler)
with the closed-loop load generator from ``repro.service.loadgen`` —
no HTTP in the measured path, so the numbers isolate the scheduler,
request coalescing and the epoch-snapshot answer pipeline.

The serving system runs **derivation-bound** (plan cache disabled):
answers re-run filtering + selection + rewriting every time.  Cached
hot-path latency is ``bench_hot_path.py``'s subject; this benchmark
asks the orthogonal question — how much concurrent serving multiplies
throughput when requests carry real CPU cost.  Python threads cannot
parallelise that CPU (GIL), so any scaling beyond 1× is earned by the
*service* layer itself:

* **coalescing** — concurrent arrivals for the same query fold into
  one flight whose single evaluation fans out to every waiter.  Long
  flights absorb the most arrivals, so coalescing preferentially
  cancels the *expensive* duplicates;
* **pipelining** — waiters park on an event instead of holding the
  request-response loop hostage.

The query pool is the system's costliest view-definition queries,
ordered by measured cost so that Zipf rank weight correlates with
query weight — dashboard-style traffic where the heavy aggregate
panels are also the most re-requested ones.

Grid: worker threads × {skewed Zipf(1.1), uniform} mix.  The
single-worker cell runs one closed-loop client (pure serial
request-response — what an unthreaded server would achieve); an
``N``-worker cell runs ``8×N`` clients so the admission queue stays
warm.

Run as a script (writes ``BENCH_service.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py

Knobs: ``REPRO_BENCH_SCALE`` (default 1.0), ``REPRO_BENCH_SVC_VIEWS``
(default 200), ``REPRO_BENCH_SVC_REQUESTS`` (default 2000 per cell),
``REPRO_BENCH_OUT`` (output path, default ``BENCH_service.json``),
``REPRO_BENCH_BEFORE`` (path to a previous run's JSON; when set, its
single-worker cells are embedded under ``before`` and per-mix cold
p50/p99 speedups are computed).  Under pytest a small configuration
runs with correctness-oriented assertions (machine-dependent scaling
numbers belong to the script run, which asserts the ≥3× acceptance
bound).

Timing hygiene: every measurement uses ``time.perf_counter`` (the
monotonic high-resolution clock; ``time.time`` is wall-clock and can
step), and each grid cell drives ``WARMUP_REQUESTS`` unrecorded
requests through the freshly built scheduler before the measured
closed loop, so thread-pool spin-up and allocator warm-up never land
in the first cell's percentiles.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.bench import build_environment
from repro.bench.report import run_metadata
from repro.core.system import MaterializedViewSystem
from repro.service import (
    InProcessClient,
    QueryScheduler,
    SnapshotEngine,
    build_query_mix,
    run_closed_loop,
    zipf_weights,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

ZIPF_EXPONENT = 1.1
WORKER_GRID = (1, 4, 8)
POOL_SIZE = 12
CLIENTS_PER_WORKER = 8
#: Unrecorded requests driven through each cell's scheduler before the
#: measured closed loop (thread-pool + allocator warm-up).
WARMUP_REQUESTS = 48


def build_serving_system(env) -> MaterializedViewSystem:
    """A derivation-bound twin of the environment's system: same
    document, same views, plan cache off."""
    serving = MaterializedViewSystem(env.document, plan_cache_size=0)
    serving.register_views(
        {view.view_id: view.pattern
         for view in env.system.materialized_views()}
    )
    return serving


def build_cost_ranked_pool(
    system: MaterializedViewSystem, size: int, probe: int = 40
) -> list[str]:
    """The ``size`` costliest queries (steady-state, coverage memo
    warm), most expensive first, so Zipf rank 1 lands on the heaviest
    query."""
    candidates = build_query_mix(system, limit=probe)
    ranked: list[tuple[float, str]] = []
    for expression in candidates:
        system.answer(expression)  # warm the coverage memo
        started = time.perf_counter()
        system.answer(expression)
        ranked.append((time.perf_counter() - started, expression))
    ranked.sort(reverse=True)
    return [expression for _, expression in ranked[:size]]


def _measure_cell(
    system, pool, workers: int, skewed: bool, requests: int, seed: int
) -> dict:
    weights = zipf_weights(len(pool), ZIPF_EXPONENT) if skewed else None
    concurrency = 1 if workers == 1 else workers * CLIENTS_PER_WORKER
    engine = SnapshotEngine(system)
    scheduler = QueryScheduler(
        engine, workers=workers,
        queue_limit=max(64, concurrency * 4),
        default_timeout=120.0,
    )
    try:
        warmup = run_closed_loop(
            lambda: InProcessClient(scheduler),
            pool,
            total_requests=WARMUP_REQUESTS,
            concurrency=concurrency,
            weights=weights,
            seed=seed + 1,
        )
        assert warmup.ok == warmup.requests, warmup.status_counts
        report = run_closed_loop(
            lambda: InProcessClient(scheduler),
            pool,
            total_requests=requests,
            concurrency=concurrency,
            weights=weights,
            seed=seed,
        )
        stats = scheduler.stats()
    finally:
        scheduler.close()
    assert report.ok == report.requests, report.status_counts
    cell = report.as_dict()
    cell["workers"] = workers
    cell["clients"] = concurrency
    cell["mix"] = "skewed" if skewed else "uniform"
    cell["coalesced"] = stats["coalesced"]
    return cell


def run_grid(scale: float, view_count: int, requests: int, seed: int = 42):
    setup_started = time.perf_counter()
    env = build_environment(scale=scale, view_count=view_count, seed=seed)
    system = build_serving_system(env)
    pool = build_cost_ranked_pool(system, POOL_SIZE)
    setup_seconds = time.perf_counter() - setup_started

    cells = []
    for skewed in (True, False):
        for workers in WORKER_GRID:
            cell = _measure_cell(
                system, pool, workers, skewed, requests, seed
            )
            cells.append(cell)
            print(f"  workers={cell['workers']} clients={cell['clients']} "
                  f"mix={cell['mix']}: {cell['throughput_qps']:.0f} q/s "
                  f"(p50 {cell['p50_ms']:.2f} ms, "
                  f"p99 {cell['p99_ms']:.2f} ms, "
                  f"coalesced {cell['coalesced']})")

    def qps(workers: int, mix: str) -> float:
        for cell in cells:
            if cell["workers"] == workers and cell["mix"] == mix:
                return cell["throughput_qps"]
        raise KeyError((workers, mix))

    top = max(WORKER_GRID)
    return {
        "config": {
            "scale": scale,
            "view_count": view_count,
            "pool_size": POOL_SIZE,
            "requests_per_cell": requests,
            "zipf_exponent": ZIPF_EXPONENT,
            "clients_per_worker": CLIENTS_PER_WORKER,
            "warmup_requests": WARMUP_REQUESTS,
            "plan_cache": "disabled (derivation-bound)",
            "seed": seed,
        },
        "setup_seconds": round(setup_seconds, 3),
        "cells": cells,
        "skewed_scaling_vs_single_worker": round(
            qps(top, "skewed") / qps(1, "skewed"), 2
        ),
        "uniform_scaling_vs_single_worker": round(
            qps(top, "uniform") / qps(1, "uniform"), 2
        ),
    }


def test_service_throughput_small():
    """Pytest entry: tiny grid, correctness-oriented — every request
    succeeds, coalescing engages under concurrency, and the skewed
    multi-worker cell is not catastrophically slower than serial."""
    report = run_grid(scale=0.3, view_count=40, requests=300)
    assert all(cell["ok"] == cell["requests"] for cell in report["cells"])
    multi = [cell for cell in report["cells"]
             if cell["workers"] > 1 and cell["mix"] == "skewed"]
    assert sum(cell["coalesced"] for cell in multi) > 0
    assert report["skewed_scaling_vs_single_worker"] >= 0.5


def _attach_before(report: dict, before_path: str) -> None:
    """Embed a previous run's single-worker cells and compute the
    per-mix cold-path p50/p99 speedups (before ÷ after).  The
    single-worker closed loop is pure serial request-response, so its
    percentiles are the cold derivation latency."""
    with open(before_path, "r", encoding="utf-8") as handle:
        before = json.load(handle)

    def single_worker(cells: list, mix: str) -> dict:
        for cell in cells:
            if cell["workers"] == 1 and cell["mix"] == mix:
                return cell
        raise KeyError(mix)

    comparison: dict = {"before_config": before.get("config", {})}
    for mix in ("uniform", "skewed"):
        old = single_worker(before["cells"], mix)
        new = single_worker(report["cells"], mix)
        comparison[mix] = {
            "before": {"p50_ms": old["p50_ms"], "p99_ms": old["p99_ms"]},
            "after": {"p50_ms": new["p50_ms"], "p99_ms": new["p99_ms"]},
            "p50_speedup": round(old["p50_ms"] / new["p50_ms"], 2),
            "p99_speedup": round(old["p99_ms"] / new["p99_ms"], 2),
        }
    report["cold_path_before_after"] = comparison


def main() -> int:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    view_count = int(os.environ.get("REPRO_BENCH_SVC_VIEWS", "200"))
    requests = int(os.environ.get("REPRO_BENCH_SVC_REQUESTS", "2000"))
    out_path = os.environ.get("REPRO_BENCH_OUT", RESULT_PATH)
    report = run_grid(scale=scale, view_count=view_count, requests=requests)
    before_path = os.environ.get("REPRO_BENCH_BEFORE")
    if before_path:
        _attach_before(report, before_path)
        for mix, data in report["cold_path_before_after"].items():
            if mix == "before_config":
                continue
            print(f"cold path ({mix}, 1 worker): "
                  f"p50 {data['before']['p50_ms']:.2f} → "
                  f"{data['after']['p50_ms']:.2f} ms "
                  f"({data['p50_speedup']}×), "
                  f"p99 {data['before']['p99_ms']:.2f} → "
                  f"{data['after']['p99_ms']:.2f} ms "
                  f"({data['p99_speedup']}×)")
    report["run"] = run_metadata()
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report["config"], indent=2))
    print(f"skewed scaling {report['skewed_scaling_vs_single_worker']}x, "
          f"uniform scaling {report['uniform_scaling_vs_single_worker']}x")
    print(f"wrote {out_path}")
    # Acceptance: the skewed 8-worker cell serves at least 3× the
    # single-worker closed-loop baseline.
    assert report["skewed_scaling_vs_single_worker"] >= 3.0, report[
        "skewed_scaling_vs_single_worker"
    ]
    return 0


if __name__ == "__main__":
    sys.exit(main())
