"""Figure 8: query processing time — BN, BF, MN, MV, HV on Q1..Q4.

Paper shape: BN (node index only) is slowest; BF (full index) is much
faster but its index is ~4× the basic one; MN (minimum view set, no
VFILTER) pays a large homomorphism-lookup cost; MV and HV answer from
small materialized fragments, with HV ≤ MV because the heuristic favors
views with smaller fragments.

Every strategy's answer is asserted equal to direct evaluation before
being timed, so the numbers compare *correct* implementations.
"""

from __future__ import annotations

import pytest

from repro.bench import TEST_QUERIES
from repro.bench.report import format_seconds

from conftest import write_results

QUERY_IDS = list(TEST_QUERIES)
STRATEGIES = ["BN", "BF", "MN", "MV", "HV"]

_measured: dict[tuple[str, str], float] = {}


def _run(system, strategy, expression):
    if strategy == "BN":
        return system.answer_bn(expression)
    if strategy == "BF":
        return system.answer_bf(expression)
    return system.answer(expression, strategy)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_fig8_query_processing(benchmark, env, query_id, strategy):
    expression, expected_views = TEST_QUERIES[query_id]
    truth = env.system.direct_codes(expression)
    outcome = _run(env.system, strategy, expression)
    assert outcome.codes == truth, (query_id, strategy)
    if strategy in ("MV", "HV"):
        assert len(outcome.view_ids) <= max(expected_views, 3)

    result = benchmark(_run, env.system, strategy, expression)
    assert result.codes == truth
    _measured[(query_id, strategy)] = benchmark.stats["mean"]


@pytest.fixture(scope="module", autouse=True)
def _fig8_report(env):
    """Write the Figure 8 series after the module's benchmarks ran."""
    yield
    if len(_measured) < len(QUERY_IDS) * len(STRATEGIES):
        return
    rows = []
    for query_id in QUERY_IDS:
        row = [query_id]
        for strategy in STRATEGIES:
            row.append(format_seconds(_measured[(query_id, strategy)]))
        rows.append(row)
    sizes = env.system.index_sizes()
    title = (
        "Figure 8 — query processing time "
        f"(doc nodes={env.document.tree.size()}, views={env.view_count}; "
        f"BN index {sizes['BN']} B, BF index {sizes['BF']} B)"
    )
    write_results("fig8_query_processing", ["query"] + STRATEGIES, rows, title)
