"""Maintenance regression gate: the delta path must actually be ON.

``benchmarks/perf_smoke.py`` guards the read-path feature flags; this
is its write-path sibling.  Every optimization the delta subsystem
provides fails *silently* — a disabled scoped invalidation degrades to
"drop every plan", a disabled patcher degrades to "rebuild every view",
a reset base index degrades to "re-derive from scratch" — and all of
them still return correct answers, so only an explicit gate notices.

Asserted here, on a small book-shaped document:

1. an in-schema insert takes the **delta** path (no full re-encode)
   and the path view is **patched**, not rebuilt;
2. invalidation is **scoped**: the edit counts one
   ``scoped_invalidations``, zero blanket ``invalidations``, and a
   warm plan over an *untouched* view survives the edit (stays a hit);
3. base derived indexes (``_node_index``) are **patched in place**,
   not nulled, and post-edit BN answers reflect the edit;
4. maintenance publishes **no epoch** — the registry sequence is
   unchanged, which is what lets retained plans survive;
5. with ``XMVR_CHECK=1`` the byte-identity contract ran over the
   patched fragments (implicitly: a violation would have raised).

Run in CI (service job) and locally::

    PYTHONPATH=src XMVR_CHECK=1 python benchmarks/maintenance_smoke.py
"""

from __future__ import annotations

import contextlib
import os

from repro.core.system import MaterializedViewSystem
from repro.delta import DocumentEditor
from repro.xmltree.builder import encode_tree
from repro.xmltree.tree import XMLNode, build_tree


@contextlib.contextmanager
def _checks_on():
    """Force the contract layer on for the smoke run only — scoped so
    a shared pytest process doesn't leak ``XMVR_CHECK=1`` into the
    timing benchmarks collected alongside this file."""
    previous = {
        key: os.environ.get(key) for key in ("XMVR_CHECK", "XMVR_CHECK_SAMPLE")
    }
    os.environ["XMVR_CHECK"] = "1"
    os.environ["XMVR_CHECK_SAMPLE"] = "1"
    try:
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _book_system() -> MaterializedViewSystem:
    document = encode_tree(
        build_tree(
            ("b", ["t", ("s", ["t", "p"]), ("s", ["t", "p", ("f", ["i"])])])
        )
    )
    system = MaterializedViewSystem(document)
    system.register_view("VP", "//s/p")
    system.register_view("VT", "//s/t")
    return system


def run_smoke() -> dict:
    with _checks_on():
        return _run_smoke()


def _run_smoke() -> dict:
    system = _book_system()
    editor = DocumentEditor(system)
    epoch_before = system._epoch.seq

    # Warm both plans; BN builds the _node_index derived state.
    vp_cold = system.answer("//s/p", "HV")
    vt_cold = system.answer("//s/t", "HV")
    bn_cold = system.answer_bn("//s/p")
    assert system._node_index is not None, "BN must have built the node index"

    # One schema-admitted insert: a new p under the first section.
    section_code = system.direct_codes("//s")[0]
    report = editor.insert_subtree(section_code, XMLNode("p", text="smoke"))

    # 1. delta path, path view patched.
    assert not report.full_reencode, "in-schema insert must not re-encode"
    modes = {view.view_id: view.mode for view in report.views}
    assert modes.get("VP") == "patched", f"VP should be patched, got {modes}"
    assert "VT" in report.skipped_views, "VT is untouched by a p-insert"

    # 2. scoped invalidation: one scoped event, zero blanket clears,
    #    and the untouched view's plan is still warm.
    cache = system.stats()["plan_cache"]
    assert cache["scoped_invalidations"] == 1, cache
    assert cache["invalidations"] == 0, "edit must not blanket-clear"
    assert cache["plans_dropped"] >= 1, "the VP plan embeds VP fragments"
    vt_warm = system.answer("//s/t", "HV")
    assert vt_warm.plan_cache_hit, "untouched view's plan must survive"
    assert vt_warm.codes == vt_cold.codes

    # 3. base index patched in place, answers correct post-edit.
    assert system._node_index is not None, "node index must be patched, not nulled"
    vp_post = system.answer("//s/p", "HV")
    bn_post = system.answer_bn("//s/p")
    truth = system.direct_codes("//s/p")
    assert vp_post.codes == truth and bn_post.codes == truth
    assert len(truth) == len(bn_cold.codes) + 1, "insert must add one answer"
    assert not vp_cold.codes == truth, "the edit must be visible"

    # 4. no epoch published: retained plans live in the same epoch.
    assert system._epoch.seq == epoch_before, (
        "maintenance must not publish an epoch"
    )

    # Delete the inserted node; counters accumulate per-op modes.
    victim = next(code for code in truth if code not in set(vp_cold.codes))
    delete_report = editor.delete_subtree(victim)
    assert not delete_report.full_reencode
    assert system.answer("//s/p", "HV").codes == vp_cold.codes

    maintenance = system.stats()["maintenance"]
    assert maintenance["repro_maintenance_ops_total"]["insert|delta"] == 1.0
    assert maintenance["repro_maintenance_ops_total"]["delete|delta"] == 1.0
    return {
        "insert": report.as_dict(),
        "delete": delete_report.as_dict(),
        "plan_cache": system.stats()["plan_cache"],
    }


def test_maintenance_smoke():
    run_smoke()


def main() -> int:
    run_smoke()
    print(
        "maintenance-smoke: OK (delta path on, scoped invalidation, "
        "indexes patched, no epoch published, byte-identity checked)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
