"""Mixed read/write workload benchmark for the delta subsystem.

Answers the maintenance questions the read-only benchmarks cannot:

* does the warm plan-cache hit rate *survive* writes?  Scoped
  invalidation (``PlanCache.invalidate_views``) drops only plans whose
  filter provenance intersects the affected views; the coarse
  alternative (clear everything per edit) would crater the hit rate at
  even 1% writes.  The grid runs 0% / 1% / 10% writes and records the
  hit rate per cell.
* how much cheaper is a patchable single-subtree edit than blanket
  re-materialization?  The micro phase times one schema-admitted insert
  under a path view (mode ``patched``) against evaluating + re-encoding
  every materialized view (what ``_rebuild_all`` does per view), at the
  largest grid scale.

Environments are built FRESH per cell, bypassing
``repro.bench.harness.build_environment``'s module cache: maintenance
mutates the document in place, so a cached environment would leak edits
across cells (and into other benchmarks sharing the process).

Usage::

    PYTHONPATH=src python benchmarks/bench_maintenance.py

Env knobs: ``REPRO_BENCH_MAINT_SCALES`` (comma-separated, default
``0.5,1.0``), ``REPRO_BENCH_MAINT_VIEWS`` (default 200),
``REPRO_BENCH_MAINT_OPS`` (default 600).

Writes ``BENCH_maintenance.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import random
import time

from repro.bench.harness import PROCESSING_CONFIG
from repro.bench.report import run_metadata
from repro.bench.workloads import SEED_VIEWS, TEST_QUERIES
from repro.core.system import MaterializedViewSystem
from repro.delta import DocumentEditor
from repro.matching.evaluate import evaluate
from repro.storage.serialize import encode_dewey, encode_fragment
from repro.workload.querygen import QueryGenConfig, QueryGenerator, generate_positive
from repro.workload.xmark import generate_xmark_document
from repro.xmltree.tree import XMLNode

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(REPO_ROOT, "BENCH_maintenance.json")

WRITE_PCTS = (0.0, 0.01, 0.10)
ZIPF_EXPONENT = 1.1

#: Path-only view for the micro phase: linear, no return-node children,
#: so a subtree edit under an answer takes the ``patched`` mode.
#: Categories have small subtrees, so the enclosing fragments the
#: patcher re-encodes stay small — the patch's cost is proportional to
#: the *edited fragments*, not the document, which is the whole point.
MICRO_VIEW = ("Pcat", "//category/name")
MICRO_ANCHOR = "//category"
MICRO_LABEL = "name"

#: Micro-phase view population: linear paths only (``num_nestedpath=0``)
#: — exactly the *patchable* class.  The grid keeps the realistic
#: branching-heavy ``PROCESSING_CONFIG`` population; the micro isolates
#: what patching buys where patching applies, against re-materializing
#: the same views.
PATH_CONFIG = QueryGenConfig(
    max_depth=4, prob_wild=0.2, prob_desc=0.2, num_pred=0, num_nestedpath=0
)


def build_fresh_environment(
    scale: float,
    view_count: int,
    seed: int,
    config: QueryGenConfig = PROCESSING_CONFIG,
    include_seeds: bool = True,
):
    """A system the cell is free to mutate — never the cached one."""
    document = generate_xmark_document(scale=scale, seed=seed)
    system = MaterializedViewSystem(document)
    if include_seeds:
        for view_id, expression in SEED_VIEWS.items():
            system.register_view(view_id, expression)
    generator = QueryGenerator(document.schema, config, seed=seed)
    patterns = generate_positive(generator, document.tree, view_count)
    system.register_views(
        {f"G{index}": pattern for index, pattern in enumerate(patterns)}
    )
    return document, system


def _zipf_weights(count: int) -> list[float]:
    return [1.0 / (rank ** ZIPF_EXPONENT) for rank in range(1, count + 1)]


def build_query_pool(system, distinct: int, seed: int) -> list[str]:
    pool = [expression for expression, _ in TEST_QUERIES.values()]
    rng = random.Random(seed)
    views = system.materialized_views()
    rng.shuffle(views)
    for view in views:
        if len(pool) >= distinct:
            break
        expression = view.to_xpath()
        if expression not in pool:
            pool.append(expression)
    return pool[:distinct]


def _pick_edit_site(rng: random.Random, tree) -> tuple[XMLNode, XMLNode]:
    """A (parent, child) pair from a random walk, biased deep so delete
    victims are small subtrees and the document size stays stable."""
    parent = tree.root
    node = rng.choice(parent.children)
    while node.children and rng.random() < 0.85:
        parent, node = node, rng.choice(node.children)
    return parent, node


def run_cell(
    scale: float,
    view_count: int,
    write_pct: float,
    ops: int,
    seed: int = 42,
) -> dict:
    """One grid cell: warm the plan cache over a zipf query pool, then
    run ``ops`` operations of which ``write_pct`` are edits."""
    setup_started = time.perf_counter()
    document, system = build_fresh_environment(scale, view_count, seed)
    setup_seconds = time.perf_counter() - setup_started
    editor = DocumentEditor(system)
    pool = build_query_pool(system, distinct=40, seed=seed)

    # Cold pass: populate the plan cache for every pool query.
    for expression in pool:
        system.answer(expression, "HV")

    rng = random.Random(seed + 1)
    weights = _zipf_weights(len(pool))
    before = system.stats()["plan_cache"]
    reads = writes = 0
    read_seconds = write_seconds = 0.0
    full_reencodes = 0
    insert_turn = True
    for _ in range(ops):
        if rng.random() < write_pct:
            parent, node = _pick_edit_site(rng, document.tree)
            started = time.perf_counter()
            if insert_turn:
                # A fresh leaf with a label the parent already has a
                # child of — admitted by the mined schema, so the edit
                # takes the delta path, not a full re-encode.
                report = editor.insert_subtree(parent.dewey, XMLNode(node.label))
            else:
                report = editor.delete_subtree(node.dewey)
            write_seconds += time.perf_counter() - started
            writes += 1
            insert_turn = not insert_turn
            full_reencodes += int(report.full_reencode)
        else:
            expression = rng.choices(pool, weights=weights, k=1)[0]
            started = time.perf_counter()
            system.answer(expression, "HV")
            read_seconds += time.perf_counter() - started
            reads += 1

    after = system.stats()["plan_cache"]
    hits = after["hits"] - before["hits"]
    hit_rate = hits / reads if reads else 0.0
    return {
        "scale": scale,
        "write_pct": write_pct,
        "ops": ops,
        "reads": reads,
        "writes": writes,
        "warm_hit_rate": round(hit_rate, 4),
        "mean_read_ms": round(read_seconds / reads * 1e3, 4) if reads else None,
        "mean_write_ms": round(write_seconds / writes * 1e3, 4) if writes else None,
        "full_reencodes": full_reencodes,
        "scoped_invalidations": after["scoped_invalidations"],
        "plans_dropped": after["plans_dropped"],
        "plans_retained": after["plans_retained"],
        "setup_seconds": round(setup_seconds, 3),
    }


def run_micro(scale: float, view_count: int, seed: int = 42) -> dict:
    """Patchable single-subtree insert vs blanket re-materialization,
    over a path-view population (the patchable class)."""
    document, system = build_fresh_environment(
        scale, view_count, seed, config=PATH_CONFIG, include_seeds=False
    )
    system.register_view(*MICRO_VIEW)
    editor = DocumentEditor(system)
    # Warm a plan so scoped invalidation has real work per edit.
    system.answer(MICRO_VIEW[1], "HV")

    anchor_codes = system.direct_codes(MICRO_ANCHOR)
    patch_samples: list[float] = []
    patched_views = 0
    for index in range(5):
        anchor = anchor_codes[index % len(anchor_codes)]
        report = editor.insert_subtree(anchor, XMLNode(MICRO_LABEL, text="bench"))
        assert not report.full_reencode, "micro insert must stay on the delta path"
        modes = {v.view_id: v.mode for v in report.views}
        assert modes.get(MICRO_VIEW[0]) == "patched", (
            f"path view should be patched, got {modes}"
        )
        assert all(v.mode == "patched" for v in report.views), (
            "a linear-path population must be maintained entirely by patches"
        )
        patched_views = max(patched_views, len(report.views))
        patch_samples.append(report.seconds)
    patch_seconds = min(patch_samples)

    # The blanket-fallback unit of work, per view: evaluate the pattern
    # over the whole tree and re-encode every fragment payload.
    started = time.perf_counter()
    rebuilt_views = 0
    for view in system.materialized_views():
        answers = evaluate(view.pattern, document.tree)
        for node in answers:
            if node.dewey is not None:
                encode_dewey(node.dewey) + encode_fragment(node)
        rebuilt_views += 1
    full_seconds = time.perf_counter() - started

    return {
        "scale": scale,
        "views_rematerialized": rebuilt_views,
        "views_patched_per_edit": patched_views,
        "patch_edit_ms": round(patch_seconds * 1e3, 4),
        "full_rematerialize_ms": round(full_seconds * 1e3, 4),
        "patch_speedup": round(full_seconds / patch_seconds, 1),
    }


def run_grid(scales: list[float], view_count: int, ops: int) -> dict:
    cells = [
        run_cell(scale, view_count, write_pct, ops)
        for scale in scales
        for write_pct in WRITE_PCTS
    ]
    micro = run_micro(max(scales), view_count)
    report = {
        "config": {
            "scales": scales,
            "view_count": view_count,
            "ops_per_cell": ops,
            "write_pcts": list(WRITE_PCTS),
            "zipf_exponent": ZIPF_EXPONENT,
        },
        "cells": cells,
        "micro": micro,
    }
    # Headline: hit-rate survival at 1% writes, per scale.
    survival = {}
    for scale in scales:
        by_pct = {c["write_pct"]: c for c in cells if c["scale"] == scale}
        baseline = by_pct[0.0]["warm_hit_rate"]
        survival[str(scale)] = {
            "read_only_hit_rate": baseline,
            "hit_rate_at_1pct_writes": by_pct[0.01]["warm_hit_rate"],
            "hit_rate_at_10pct_writes": by_pct[0.10]["warm_hit_rate"],
            "survival_at_1pct": round(by_pct[0.01]["warm_hit_rate"] / baseline, 4)
            if baseline
            else None,
        }
    report["survival"] = survival
    return report


def test_maintenance_small():
    """Pytest entry: tiny configuration, loose bounds off the record run.

    Contracts are pinned OFF for the timing section: with XMVR_CHECK=1
    every patch re-evaluates its view pattern for the byte-identity
    check, which is exactly the work the speedup claim excludes (the
    delta test suite covers correctness; this file measures cost).
    """
    previous = os.environ.get("XMVR_CHECK")
    os.environ["XMVR_CHECK"] = "0"
    try:
        report = run_grid(scales=[0.3], view_count=30, ops=200)
    finally:
        if previous is None:
            os.environ.pop("XMVR_CHECK", None)
        else:
            os.environ["XMVR_CHECK"] = previous
    for cell in report["cells"]:
        assert cell["full_reencodes"] == 0, "edits must stay on the delta path"
        if cell["write_pct"] > 0:
            assert cell["writes"] > 0 and cell["scoped_invalidations"] >= cell["writes"]
    survival = report["survival"]["0.3"]
    assert survival["survival_at_1pct"] >= 0.5
    assert report["micro"]["patch_speedup"] >= 3.0


def main() -> int:
    scales = [
        float(token)
        for token in os.environ.get("REPRO_BENCH_MAINT_SCALES", "0.5,1.0").split(",")
    ]
    view_count = int(os.environ.get("REPRO_BENCH_MAINT_VIEWS", "200"))
    ops = int(os.environ.get("REPRO_BENCH_MAINT_OPS", "600"))
    report = run_grid(scales=scales, view_count=view_count, ops=ops)
    report["run"] = run_metadata()
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {RESULT_PATH}")
    # Acceptance (ISSUE): warm-hit rate at 1% writes keeps >= 50% of the
    # read-only rate, and a patchable edit beats re-materialization 10x.
    for scale, row in report["survival"].items():
        assert row["survival_at_1pct"] >= 0.5, (
            f"scale {scale}: hit rate cratered at 1% writes: {row}"
        )
    assert report["micro"]["patch_speedup"] >= 10.0, report["micro"]
    print("acceptance: OK (hit rate survives 1% writes; patch >= 10x faster)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
