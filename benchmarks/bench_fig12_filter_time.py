"""Figure 12: filtering time of Q1..Q4 against V_1..V_8 automatons.

Paper shape: filtering sits in the tens-to-hundreds of microseconds; a
shallow query's time is nearly constant in the view count (few states
reached), and even the steepest query grows far slower than the number
of views (the paper reports ×3.2 time for ×8 views).
"""

from __future__ import annotations

import pytest

from repro.bench import TEST_QUERIES
from repro.bench.report import format_seconds
from repro.core import VFilter
from repro.xpath import parse_xpath

from conftest import BENCH_SETS, write_results

QUERY_IDS = list(TEST_QUERIES)

_measured: dict[tuple[str, int], float] = {}
_filters: dict[int, VFilter] = {}


@pytest.fixture(scope="module")
def automatons(view_sets):
    for count, views in view_sets.items():
        vfilter = VFilter()
        vfilter.add_views(views)
        _filters[count] = vfilter
    return _filters


@pytest.mark.parametrize("count", BENCH_SETS)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_fig12_filter_time(benchmark, automatons, query_id, count):
    pattern = parse_xpath(TEST_QUERIES[query_id][0])
    vfilter = automatons[count]
    benchmark(vfilter.filter, pattern)
    _measured[(query_id, count)] = benchmark.stats["mean"]


@pytest.fixture(scope="module", autouse=True)
def _fig12_report():
    yield
    if len(_measured) < len(QUERY_IDS) * len(BENCH_SETS):
        return
    rows = []
    for query_id in QUERY_IDS:
        row = [query_id]
        for count in BENCH_SETS:
            row.append(format_seconds(_measured[(query_id, count)]))
        first = _measured[(query_id, BENCH_SETS[0])]
        last = _measured[(query_id, BENCH_SETS[-1])]
        row.append(f"×{last / first:.2f}")
        rows.append(row)
    headers = ["query"] + [str(c) for c in BENCH_SETS] + ["growth"]
    title = (
        "Figure 12 — VFILTER filtering time vs number of views "
        f"(view growth ×{BENCH_SETS[-1] / BENCH_SETS[0]:.0f})"
    )
    write_results("fig12_filter_time", headers, rows, title)
