"""Figure 11: VFILTER database size scaling S_i/S_1 on V_1..V_8.

The automaton is persisted into the embedded KV store (the paper uses
Berkeley DB) and the stored byte size recorded.  Paper shape: growth is
much smoother than linear because additional views share path prefixes
— the paper reports ``S_8/S_1 ≈ 3.09`` for 8× the views.
"""

from __future__ import annotations

import pytest

from repro.core import VFilter
from repro.storage import KVStore

from conftest import BENCH_SETS, write_results

_sizes: dict[int, tuple[int, int, int]] = {}


@pytest.mark.parametrize("count", BENCH_SETS)
def test_fig11_vfilter_size(benchmark, view_sets, count):
    views = view_sets[count]

    def build_and_store():
        vfilter = VFilter()
        vfilter.add_views(views)
        store = KVStore()
        written = vfilter.save(store, include_definitions=False)
        return vfilter, written

    vfilter, written = benchmark(build_and_store)
    _sizes[count] = (written, vfilter.nfa.state_count, vfilter.nfa.transition_count)


@pytest.fixture(scope="module", autouse=True)
def _fig11_report(view_sets):
    yield
    if len(_sizes) < len(BENCH_SETS):
        return
    base = _sizes[BENCH_SETS[0]][0]
    rows = []
    for count in BENCH_SETS:
        written, states, transitions = _sizes[count]
        rows.append([
            count,
            written,
            f"{written / base:.2f}",
            f"{count / BENCH_SETS[0]:.1f}",
            states,
            transitions,
        ])
    title = ("Figure 11 — VFILTER stored size scaling, automaton records "
             "only (S_i/S_1 vs linear)")
    write_results(
        "fig11_size",
        ["views", "bytes", "S_i/S_1", "linear", "states", "transitions"],
        rows,
        title,
    )
    # The headline claim: growth far smoother than linear.
    s_last = _sizes[BENCH_SETS[-1]][0] / base
    linear = BENCH_SETS[-1] / BENCH_SETS[0]
    assert s_last < linear * 0.8
