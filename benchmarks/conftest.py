"""Shared fixtures for the paper-reproduction benchmarks.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE``  — XMark document scale (default 4.0, ≈24k
  element nodes).  The paper used a 56.2 MB document; push this up to
  approach that regime.
* ``REPRO_BENCH_VIEWS``  — materialized views for the Figure 8/9
  experiments (default 600; paper: 1000).
* ``REPRO_BENCH_SETS``   — comma-separated view-set sizes for the
  VFILTER experiments (default ``1000,...,8000`` as in the paper).
* ``REPRO_BENCH_UTILITY_QUERIES`` — probe queries for the Figure 10
  utility measurement (default 25; paper: 1000).

Every figure benchmark also writes its series table to
``benchmarks/results/<figure>.txt`` so results survive pytest's output
capture.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import build_environment, build_view_patterns
from repro.bench.report import format_table

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "4.0"))
BENCH_VIEWS = int(os.environ.get("REPRO_BENCH_VIEWS", "600"))
BENCH_SETS = [
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_SETS", "1000,2000,3000,4000,5000,6000,7000,8000"
    ).split(",")
]
UTILITY_QUERIES = int(os.environ.get("REPRO_BENCH_UTILITY_QUERIES", "25"))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def env():
    """The Figure 8/9 environment: document + materialized views."""
    return build_environment(scale=BENCH_SCALE, view_count=BENCH_VIEWS, seed=42)


@pytest.fixture(scope="session")
def view_sets():
    """Nested view sets V_1 ⊂ … ⊂ V_8 for the VFILTER experiments."""
    largest = build_view_patterns(max(BENCH_SETS), scale=0.25, seed=7)
    return {count: largest[:count] for count in BENCH_SETS}


def write_results(name: str, headers, rows, title: str) -> str:
    """Render, persist and return a figure's series table."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    table = format_table(headers, rows, title)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(table + "\n")
    print("\n" + table)
    return table
