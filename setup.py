"""Thin shim so legacy editable installs work in offline environments
that lack the ``wheel`` package (``pip install -e . --no-use-pep517``).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
