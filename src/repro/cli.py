"""Command-line interface: ``python -m repro <command>``.

Small operational surface over the library, useful for poking at the
system without writing code:

* ``generate``  — write an XMark-like document to a file.
* ``answer``    — load a document, register views, answer a query with
  a chosen strategy (and optionally cross-check against direct
  evaluation).
* ``filter``    — show VFILTER candidates and ``LIST(P_i)`` for a query
  against a list of view definitions.
* ``explain``   — print leaf covers and obligations for views vs a query.
* ``lint``      — run the project's static-analysis pass (xmvrlint).
* ``serve``     — run the concurrent HTTP/JSON query service
  (``--smoke N`` starts it on an ephemeral port, drives N requests
  through the HTTP load client, validates the ``/metrics`` exposition
  against the engine's own ``stats()``, and exits nonzero on any 5xx).
* ``slowlog``   — fetch and pretty-print a running server's slow-query
  log (``GET /debug/slow``), span trees included.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from typing import Any

from . import __version__
from .core.leaf_cover import leaf_cover_labels, obligations_of
from .core.system import MaterializedViewSystem
from .core.vfilter import VFilter
from .core.view import View
from .errors import ReproError
from .workload.xmark import generate_xmark
from .xmltree.builder import encode_tree
from .xmltree.dewey import format_code
from .xmltree.parser import parse_xml_file
from .xmltree.serializer import serialize
from .xpath.parser import parse_xpath

__all__ = ["main"]


def _load_views(arguments: argparse.Namespace) -> dict[str, str]:
    """Views from ``--view id=expr`` options and/or a ``--views`` file
    with ``id <whitespace> expression`` lines (# comments allowed)."""
    views: dict[str, str] = {}
    for item in arguments.view or []:
        if "=" not in item:
            raise SystemExit(f"--view expects id=expression, got {item!r}")
        view_id, _, expression = item.partition("=")
        views[view_id.strip()] = expression.strip()
    if arguments.views:
        with open(arguments.views, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split(None, 1)
                if len(parts) != 2:
                    raise SystemExit(f"bad view line: {line!r}")
                views[parts[0]] = parts[1]
    if not views:
        raise SystemExit("no views given; use --view ID=EXPR or --views FILE")
    return views


def _build_system(arguments: argparse.Namespace) -> MaterializedViewSystem:
    if arguments.document:
        tree = parse_xml_file(arguments.document)
    else:
        tree = generate_xmark(scale=arguments.scale, seed=arguments.seed)
    document = encode_tree(tree)
    system = MaterializedViewSystem(document)
    views = _load_views(arguments)
    workers = getattr(arguments, "workers", None)
    fitted = set(system.register_views(views, workers=workers))
    for view_id in views:
        if view_id not in fitted:
            print(f"note: view {view_id} exceeds the fragment cap; excluded",
                  file=sys.stderr)
    return system


def _cmd_serve(arguments: argparse.Namespace) -> int:
    from .service import (
        HTTPClient,
        QueryScheduler,
        QueryServiceServer,
        SnapshotEngine,
        build_query_mix,
        run_closed_loop,
        zipf_weights,
    )

    if arguments.document:
        tree = parse_xml_file(arguments.document)
    else:
        tree = generate_xmark(scale=arguments.scale, seed=arguments.seed)
    system = MaterializedViewSystem(encode_tree(tree))
    try:
        views = _load_views(arguments)
    except SystemExit:
        # Serving with zero views is legitimate: clients register
        # over POST /register.  Smoke mode needs an answerable mix,
        # so it falls back to a small stock XMark view set.
        views = {}
        if arguments.smoke:
            views = {
                "name": "//item/name",
                "person": "//person/name",
                "paid": "//item[payment]/description",
            }
    if views:
        system.register_views(views)

    engine = SnapshotEngine(system)
    scheduler = QueryScheduler(
        engine,
        workers=arguments.threads,
        queue_limit=arguments.queue_limit,
        default_timeout=arguments.timeout_ms / 1e3,
    )
    port = 0 if arguments.smoke else arguments.port
    server = QueryServiceServer(
        engine, scheduler, host=arguments.host, port=port,
        verbose=arguments.verbose,
    )
    host, bound_port = server.address

    if arguments.smoke:
        server.start()
        try:
            queries = build_query_mix(system)
            # Split the budget around a maintenance phase: edits land
            # mid-run, with live reads before and after them.
            first_half = max(1, arguments.smoke // 2)
            report = run_closed_loop(
                lambda: HTTPClient(host, bound_port),
                queries,
                total_requests=first_half,
                concurrency=min(8, arguments.threads * 2),
                weights=zipf_weights(len(queries)),
                seed=arguments.seed,
            )
            edit_error = _drive_smoke_edits(host, bound_port)
            second = run_closed_loop(
                lambda: HTTPClient(host, bound_port),
                queries,
                total_requests=max(1, arguments.smoke - first_half),
                concurrency=min(8, arguments.threads * 2),
                weights=zipf_weights(len(queries)),
                seed=arguments.seed + 1,
            )
            report.requests += second.requests
            report.elapsed_seconds += second.elapsed_seconds
            for status, count in second.status_counts.items():
                report.status_counts[status] = (
                    report.status_counts.get(status, 0) + count
                )
            report.latencies_ms.extend(second.latencies_ms)
            # Scrape while the server is still up: the exposition must
            # parse, count the traffic we just drove, and agree with
            # the engine's own stats() — same cells, two readouts.
            telemetry_error = _check_telemetry_endpoints(
                host, bound_port, system
            )
            if telemetry_error is None:
                telemetry_error = _check_maintenance_metrics(
                    host, bound_port, system
                )
        finally:
            server.shutdown()
        print(f"smoke: {report.requests} requests, "
              f"{report.ok} ok, {report.server_errors} server errors, "
              f"{report.throughput:.0f} q/s, "
              f"p50 {report.percentile(0.5):.2f} ms, "
              f"p99 {report.percentile(0.99):.2f} ms")
        if arguments.profile:
            _print_profile(system)
        if edit_error is not None:
            print(f"smoke: maintenance FAILED: {edit_error}",
                  file=sys.stderr)
            return 2
        if telemetry_error is not None:
            print(f"smoke: telemetry FAILED: {telemetry_error}",
                  file=sys.stderr)
            return 2
        print("smoke: telemetry OK (/metrics parses, counters agree "
              "with stats, /debug/slow populated, maintenance counters "
              "consistent)")
        if report.server_errors or report.ok != report.requests:
            print("smoke: FAILED", file=sys.stderr)
            return 2
        print("smoke: OK (clean shutdown)")
        return 0

    print(f"serving on http://{host}:{bound_port} "
          f"({arguments.threads} workers, queue {arguments.queue_limit}, "
          f"{system.view_count} views)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _http_get(
    host: str, port: int, path: str, timeout: float = 10.0
) -> tuple[int, bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _http_post(
    host: str, port: int, path: str, body: dict[str, Any],
    timeout: float = 30.0,
) -> tuple[int, bytes]:
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST", path, json.dumps(body),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _drive_smoke_edits(host: str, port: int) -> str | None:
    """Exercise ``POST /edit`` against the live server: delete one
    ``//item/name`` answer, re-insert a replacement under the same
    item, and confirm the served answer count is conserved.  Returns an
    error description, or None when the write path checks out."""
    status, payload = _http_post(
        host, port, "/query", {"query": "//item/name"}
    )
    if status != 200:
        return f"pre-edit POST /query returned {status}"
    codes = json.loads(payload).get("codes", [])
    if not codes:
        return "pre-edit //item/name returned no answers to edit"
    victim = codes[0]
    status, payload = _http_post(
        host, port, "/edit", {"op": "delete", "node": victim}
    )
    if status != 200:
        return f"POST /edit delete returned {status}: {payload[:200]!r}"
    report = json.loads(payload)
    if report.get("operation") != "delete" or report.get("full_reencode"):
        return f"unexpected delete report: {report}"
    parent = victim.rsplit(".", 1)[0]
    status, payload = _http_post(
        host, port, "/edit",
        {
            "op": "insert",
            "parent": parent,
            "subtree": {"label": "name", "text": "smoke-edit"},
        },
    )
    if status != 200:
        return f"POST /edit insert returned {status}: {payload[:200]!r}"
    report = json.loads(payload)
    if report.get("operation") != "insert" or report.get("full_reencode"):
        return f"unexpected insert report: {report}"
    status, payload = _http_post(
        host, port, "/query", {"query": "//item/name"}
    )
    if status != 200:
        return f"post-edit POST /query returned {status}"
    after = json.loads(payload).get("codes", [])
    if len(after) != len(codes):
        return (
            f"answer count not conserved across delete+insert: "
            f"{len(codes)} before, {len(after)} after"
        )
    return None


def _check_maintenance_metrics(
    host: str, port: int, system: MaterializedViewSystem
) -> str | None:
    """The maintenance counters must be nonzero after the smoke edits
    and agree with ``stats()`` — same cells, two readouts."""
    from .obs import parse_exposition

    status, payload = _http_get(host, port, "/metrics")
    if status != 200:
        return f"GET /metrics returned {status}"
    families = parse_exposition(payload.decode("utf-8"))
    ops = families.get("repro_maintenance_total")
    if ops is None:
        return "/metrics lacks repro_maintenance_total"
    for op in ("insert", "delete"):
        exposed = ops.value(op=op)
        if not exposed:
            return f"repro_maintenance_total{{op={op!r}}} is zero " \
                   f"after the smoke edits"
    maintenance = system.stats()["maintenance"]
    assert isinstance(maintenance, dict)
    for op, expected in maintenance["repro_maintenance_total"].items():
        exposed = ops.value(op=op) or 0.0
        if exposed != expected:
            return (
                f"repro_maintenance_total{{op={op!r}}}: /metrics "
                f"{exposed} disagrees with stats() {expected}"
            )
    modes = families.get("repro_maintenance_ops_total")
    if modes is None:
        return "/metrics lacks repro_maintenance_ops_total"
    if not (modes.value(op="insert", mode="delta") and
            modes.value(op="delete", mode="delta")):
        return "smoke edits did not take the delta maintenance path"
    return None


def _check_telemetry_endpoints(
    host: str, port: int, system: MaterializedViewSystem
) -> str | None:
    """Validate ``/metrics`` and ``/debug/slow`` against a live system;
    returns an error description, or None when everything checks out."""
    from .obs import parse_exposition

    status, payload = _http_get(host, port, "/metrics")
    if status != 200:
        return f"GET /metrics returned {status}"
    try:
        families = parse_exposition(payload.decode("utf-8"))
    except ValueError as error:
        return f"/metrics exposition is malformed: {error}"
    answers = families.get("repro_answers_total")
    if answers is None:
        return "/metrics lacks repro_answers_total"
    served = sum(answers.samples.values())
    if served <= 0:
        return "repro_answers_total is zero after the smoke run"
    stage_family = families.get("repro_stage_seconds")
    if stage_family is None:
        return "/metrics lacks repro_stage_seconds"
    stage_seconds = system.stats()["stage_seconds"]
    assert isinstance(stage_seconds, dict)
    for stage, expected in stage_seconds.items():
        exposed = stage_family.value(
            name="repro_stage_seconds_sum", stage=stage
        )
        if exposed is None:
            exposed = 0.0
        # Same histogram cells read twice; only traffic between the
        # scrape and the stats() call can make them differ, and the
        # closed loop has drained by now.
        if abs(exposed - expected) > max(1e-6, 0.05 * expected):
            return (
                f"stage {stage!r}: /metrics sum {exposed:.6f}s "
                f"disagrees with stats() {expected:.6f}s"
            )
    status, payload = _http_get(host, port, "/debug/slow")
    if status != 200:
        return f"GET /debug/slow returned {status}"
    body = json.loads(payload)
    records = body.get("slow_queries")
    if not isinstance(records, list) or not records:
        return "/debug/slow recorded no queries during the smoke run"
    first = records[0]
    for key in ("trace_id", "query", "total_seconds", "stage_seconds"):
        if key not in first:
            return f"/debug/slow records lack {key!r}"
    return None


def _print_span(span: dict[str, Any], indent: int) -> None:
    duration_ms = span.get("duration_seconds", 0.0) * 1e3
    attributes = span.get("attributes", {})
    rendered = ", ".join(
        f"{key}={value}" for key, value in sorted(attributes.items())
    )
    suffix = f"  [{rendered}]" if rendered else ""
    print(f"{'  ' * indent}- {span.get('name')} "
          f"{duration_ms:.3f} ms{suffix}")
    for child in span.get("children", []):
        _print_span(child, indent + 1)


def _cmd_slowlog(arguments: argparse.Namespace) -> int:
    path = "/debug/slow"
    if arguments.limit:
        path += f"?limit={arguments.limit}"
    try:
        status, payload = _http_get(arguments.host, arguments.port, path)
    except OSError as error:
        print(f"error: cannot reach {arguments.host}:{arguments.port}: "
              f"{error}", file=sys.stderr)
        return 1
    if status != 200:
        print(f"error: GET {path} returned {status}", file=sys.stderr)
        return 1
    body = json.loads(payload)
    if arguments.json:
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0
    records = body.get("slow_queries", [])
    print(f"slow-query log: {len(records)} resident "
          f"(capacity {body.get('capacity')}, "
          f"{body.get('recorded')} recorded)")
    for record in records:
        stages = ", ".join(
            f"{stage}={seconds * 1e3:.2f}ms"
            for stage, seconds in sorted(
                record.get("stage_seconds", {}).items()
            )
            if seconds > 0.0
        )
        print(f"\n{record['trace_id']}  {record['query']}  "
              f"[{record['strategy']}]  {record['status']}  "
              f"{record['total_seconds'] * 1e3:.2f} ms  "
              f"epoch {record['epoch']}  "
              f"{'plan-cache hit' if record['plan_cache_hit'] else 'cold'}")
        if stages:
            print(f"  stages: {stages}")
        for span in record.get("spans", []):
            _print_span(span, 1)
    return 0


#: Printing order for ``--profile``: the cold-path pipeline stages
#: first (parse → vfilter → cover → selection → refine → join →
#: extract), then the coarse lookup/rewrite roll-ups.
_PROFILE_STAGES = (
    "parse", "vfilter", "cover", "selection",
    "refine", "join", "extract", "lookup", "rewrite",
)


def _print_profile(system: MaterializedViewSystem) -> None:
    """Per-stage cumulative wall-clock times from the system stats."""
    stage_seconds = system.stats()["stage_seconds"]
    assert isinstance(stage_seconds, dict)
    print("profile  : cumulative stage times (ms)")
    for stage in _PROFILE_STAGES:
        seconds = stage_seconds.get(stage)
        if seconds is None:
            continue
        print(f"  {stage:<9} {seconds * 1e3:10.2f}")


def _render_stat(value: Any) -> str:
    return f"{value:.4f}" if isinstance(value, float) else str(value)


def _cmd_generate(arguments: argparse.Namespace) -> int:
    tree = generate_xmark(scale=arguments.scale, seed=arguments.seed)
    payload = serialize(tree, indent=1 if arguments.pretty else None)
    with open(arguments.output, "w", encoding="utf-8") as handle:
        handle.write(payload)
    print(f"wrote {tree.size()} elements to {arguments.output}")
    return 0


def _cmd_answer(arguments: argparse.Namespace) -> int:
    system = _build_system(arguments)
    started = time.perf_counter()
    outcome = system.answer(arguments.query, arguments.strategy)
    elapsed = time.perf_counter() - started
    warm_elapsed: float | None = None
    if arguments.repeat > 1:
        warm_started = time.perf_counter()
        for _ in range(arguments.repeat - 1):
            outcome = system.answer(arguments.query, arguments.strategy)
        warm_elapsed = (
            (time.perf_counter() - warm_started) / (arguments.repeat - 1)
        )
    print(f"strategy : {outcome.strategy}")
    print(f"views    : {outcome.view_ids}")
    print(f"answers  : {len(outcome.codes)} "
          f"({elapsed * 1e3:.2f} ms total, "
          f"{outcome.lookup_seconds * 1e3:.2f} ms lookup)")
    if warm_elapsed is not None:
        hit = "hit" if outcome.plan_cache_hit else "miss"
        print(f"warm     : {warm_elapsed * 1e3:.2f} ms/answer over "
              f"{arguments.repeat - 1} repeats (plan cache {hit})")
    for code in outcome.codes[: arguments.limit]:
        print(f"  {format_code(code)}")
    if len(outcome.codes) > arguments.limit:
        print(f"  ... {len(outcome.codes) - arguments.limit} more")
    if arguments.stats:
        print("stats    :")
        for section, values in system.stats().items():
            if isinstance(values, dict):
                parts = []
                for key, value in values.items():
                    if isinstance(value, dict):
                        # Nested sections (e.g. maintenance metric
                        # families, labels → values) flatten one level.
                        inner = ", ".join(
                            f"{k}={_render_stat(v)}"
                            for k, v in value.items()
                        )
                        parts.append(f"{key}[{inner}]")
                    else:
                        parts.append(f"{key}={_render_stat(value)}")
                print(f"  {section}: " + ", ".join(parts))
            else:
                print(f"  {section}: {values}")
    if arguments.profile:
        _print_profile(system)
    if arguments.check:
        truth = system.direct_codes(arguments.query)
        status = "OK" if truth == outcome.codes else "MISMATCH"
        print(f"direct-evaluation check: {status}")
        return 0 if status == "OK" else 2
    return 0


def _cmd_filter(arguments: argparse.Namespace) -> int:
    vfilter = VFilter()
    for view_id, expression in _load_views(arguments).items():
        vfilter.add_view(View.from_xpath(view_id, expression))
    query = parse_xpath(arguments.query)
    result = vfilter.filter(query)
    print(f"candidates ({len(result.candidates)}): {result.candidates}")
    for path, entries in result.lists.items():
        print(f"LIST({path.to_xpath()}) = {entries}")
    return 0


def _cmd_lint(arguments: argparse.Namespace) -> int:
    from .analysis.lintcli import run_lint

    return run_lint(arguments)


def _cmd_explain(arguments: argparse.Namespace) -> int:
    query = parse_xpath(arguments.query)
    if arguments.document or arguments.full:
        # Full diagnostics need materialized fragments.
        from .core.explain import explain_query

        system = _build_system(arguments)
        explanation = explain_query(system, query)
        print(explanation.render())
        return 0 if explanation.answerable else 3
    print(f"query: {query.to_xpath(mark_answer=True)}")
    print("obligations:",
          sorted(str(obligation) for obligation in obligations_of(query)))
    for view_id, expression in _load_views(arguments).items():
        view = View.from_xpath(view_id, expression)
        covered = sorted(leaf_cover_labels(view, query))
        print(f"  LC({view_id}: {expression}) = {covered}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiple materialized view selection for XPath "
                    "query rewriting (ICDE 2008 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="write an XMark-like document")
    generate.add_argument("output")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--pretty", action="store_true")
    generate.set_defaults(handler=_cmd_generate)

    def add_common(sub: argparse.ArgumentParser, with_document: bool) -> None:
        sub.add_argument("query", help="XPath query in XP{/, //, *, []}")
        sub.add_argument("--view", action="append", metavar="ID=EXPR")
        sub.add_argument("--views", metavar="FILE",
                         help="file of 'id expression' lines")
        if with_document:
            sub.add_argument("--document", metavar="XML",
                             help="XML file (default: generated XMark)")
            sub.add_argument("--scale", type=float, default=1.0)
            sub.add_argument("--seed", type=int, default=42)
            sub.add_argument("--workers", type=int, default=None,
                             help="processes for parallel view "
                                  "registration (0 = serial)")

    answer = commands.add_parser("answer", help="answer a query from views")
    add_common(answer, with_document=True)
    answer.add_argument("--strategy", choices=("HV", "MV", "MN", "CB"),
                        default="HV")
    answer.add_argument("--limit", type=int, default=10,
                        help="answers to print (default 10)")
    answer.add_argument("--check", action="store_true",
                        help="cross-check against direct evaluation")
    answer.add_argument("--repeat", type=int, default=1,
                        help="answer the query N times to exercise the "
                             "plan cache (default 1)")
    answer.add_argument("--stats", action="store_true",
                        help="print plan-cache/memo/stage counters")
    answer.add_argument("--profile", action="store_true",
                        help="print cumulative per-stage times (parse, "
                             "vfilter, cover, selection, refine, join, "
                             "extract)")
    answer.set_defaults(handler=_cmd_answer)

    filter_ = commands.add_parser("filter", help="show VFILTER candidates")
    add_common(filter_, with_document=False)
    filter_.set_defaults(handler=_cmd_filter)

    explain = commands.add_parser("explain", help="show leaf covers")
    add_common(explain, with_document=True)
    explain.add_argument(
        "--full", action="store_true",
        help="materialize the views and show full selection diagnostics",
    )
    explain.set_defaults(handler=_cmd_explain)

    serve = commands.add_parser(
        "serve", help="run the concurrent HTTP/JSON query service"
    )
    serve.add_argument("--view", action="append", metavar="ID=EXPR")
    serve.add_argument("--views", metavar="FILE",
                       help="file of 'id expression' lines")
    serve.add_argument("--document", metavar="XML",
                       help="XML file (default: generated XMark)")
    serve.add_argument("--scale", type=float, default=0.5)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--threads", type=int, default=4,
                       help="scheduler worker threads (default 4)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="admission queue depth (default 64)")
    serve.add_argument("--timeout-ms", type=float, default=10_000.0,
                       help="default per-request deadline (default 10s)")
    serve.add_argument("--smoke", type=int, default=0, metavar="N",
                       help="serve on an ephemeral port, drive N HTTP "
                            "requests, exit nonzero on any 5xx")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.add_argument("--profile", action="store_true",
                       help="with --smoke: print cumulative per-stage "
                            "times after the run")
    serve.set_defaults(handler=_cmd_serve)

    slowlog = commands.add_parser(
        "slowlog",
        help="fetch a running server's slow-query log (/debug/slow)",
    )
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=8080)
    slowlog.add_argument("--limit", type=int, default=0,
                         help="show only the N slowest (default: all)")
    slowlog.add_argument("--json", action="store_true",
                         help="raw JSON instead of the rendered tree")
    slowlog.set_defaults(handler=_cmd_slowlog)

    lint = commands.add_parser(
        "lint", help="run xmvrlint over the source tree"
    )
    from .analysis.lintcli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    arguments = parser.parse_args(argv)
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
