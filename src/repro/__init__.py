"""``repro`` — Multiple Materialized View Selection for XPath Query
Rewriting (ICDE 2008), reproduced as a complete Python library.

Quickstart::

    from repro import MaterializedViewSystem, encode_tree, parse_xml

    doc = encode_tree(parse_xml(xml_text))
    system = MaterializedViewSystem(doc)
    system.register_view("V1", "s[t]/p")
    system.register_view("V4", "s[p]/f")
    outcome = system.answer("s[f//i][t]/p")   # heuristic HV strategy
    print(outcome.view_ids, outcome.codes)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
reproduction of the paper's evaluation.
"""

from .core import (
    AnswerOutcome,
    MaterializedViewSystem,
    Selection,
    VFilter,
    View,
    coverage_units,
    covers_query,
    leaf_cover_labels,
    obligations_of,
    select_heuristic,
    select_minimum,
)
from .delta import DocumentEditor, MaintenanceReport
from .errors import (
    EncodingError,
    PatternError,
    ReproError,
    RewritingError,
    SchemaError,
    StorageCorruptionError,
    StorageError,
    ViewNotAnswerableError,
    XMLParseError,
    XPathSyntaxError,
)
from .xmltree import (
    DocumentSchema,
    EncodedDocument,
    FiniteStateTransducer,
    XMLNode,
    XMLTree,
    build_tree,
    encode_tree,
    parse_xml,
    parse_xml_file,
    serialize,
)
from .xpath import (
    Axis,
    PathPattern,
    TreePattern,
    decompose,
    normalize,
    parse_xpath,
)

__version__ = "1.0.0"

__all__ = [
    "AnswerOutcome",
    "Axis",
    "DocumentEditor",
    "DocumentSchema",
    "EncodedDocument",
    "EncodingError",
    "MaintenanceReport",
    "FiniteStateTransducer",
    "MaterializedViewSystem",
    "PathPattern",
    "PatternError",
    "ReproError",
    "RewritingError",
    "SchemaError",
    "Selection",
    "StorageCorruptionError",
    "StorageError",
    "TreePattern",
    "VFilter",
    "View",
    "ViewNotAnswerableError",
    "XMLNode",
    "XMLParseError",
    "XMLTree",
    "XPathSyntaxError",
    "build_tree",
    "coverage_units",
    "covers_query",
    "decompose",
    "encode_tree",
    "leaf_cover_labels",
    "normalize",
    "obligations_of",
    "parse_xml",
    "parse_xml_file",
    "parse_xpath",
    "select_heuristic",
    "select_minimum",
    "serialize",
    "__version__",
]
