"""Exception hierarchy for the ``repro`` library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing parse errors from storage or rewriting failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLParseError(ReproError):
    """Raised when an XML document cannot be parsed.

    Attributes
    ----------
    position:
        Byte offset in the input at which the error was detected, or
        ``None`` when not applicable.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class XPathSyntaxError(ReproError):
    """Raised when an XPath expression is not in ``XP{/, //, *, []}``."""

    def __init__(self, message: str, expression: str | None = None):
        if expression is not None:
            message = f"{message} in expression {expression!r}"
        super().__init__(message)
        self.expression = expression


class PatternError(ReproError):
    """Raised for malformed tree patterns (e.g. missing answer node)."""


class EncodingError(ReproError):
    """Raised when an extended Dewey code cannot be derived or decoded."""


class SchemaError(ReproError):
    """Raised when a label is missing from the document schema."""


class StorageError(ReproError):
    """Raised by the key-value store and fragment store."""


class StorageCorruptionError(StorageError):
    """Raised when a stored record fails its integrity check."""


class ViewNotAnswerableError(ReproError):
    """Raised when a query cannot be answered from the registered views.

    Carries the set of query leaves that no view covers, which is the
    actionable piece of information for a view-advisor workflow.
    """

    def __init__(
        self, message: str, uncovered: frozenset[object] | None = None
    ):
        super().__init__(message)
        self.uncovered: frozenset[object] = (
            uncovered if uncovered is not None else frozenset()
        )


class RewritingError(ReproError):
    """Raised when rewriting fails despite a positive answerability check.

    This error indicates a library bug (answerability is supposed to be
    sound); it exists so such bugs surface loudly instead of returning
    wrong answers.
    """
