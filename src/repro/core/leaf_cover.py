"""Leaf cover and query answerability (paper Section IV-A).

``LF(Q) = LEAF(Q) ∪ {Δ}`` is the *obligation set* of a query: every
leaf's root-to-leaf predicate must be verified, and the answer itself
(``Δ``) must be extractable from some view.  Attribute constraints add
one obligation per constraint-bearing node (paper Section V,
"Handling comparison predicates").

For a view ``V`` and query ``Q``, coverage is computed per *anchor*: a
query node ``x`` that ``RET(V)`` can map to under some root-preserving
homomorphism ``h : V → Q`` (:func:`repro.matching.feasible_anchors`).
The unit ``(V, x)`` covers:

* ``Δ`` — when ``x`` is an ancestor-or-self of ``RET(Q)``: the query's
  answers then live inside ``V``'s fragments rooted at instances of
  ``x``;
* every obligation at a node that is a descendant-or-self of ``x`` —
  those predicates are *checked* on the materialized fragments by the
  compensating query;
* every obligation *implied* by the view's own definition through a
  **pinned** spine node: walking up from ``RET(V)`` through ``/``-edges
  only, the view node ``v_k`` at offset ``k`` is instantiated at exactly
  the fragment root's ``k``-th ancestor, which the join equates with the
  query node ``u_k`` (``x``'s ``k``-th ancestor, a ``/``-chain forced by
  ``h``).  An obligation below ``u_k`` is implied when the query chain
  ``u_k → n`` has an anchored homomorphism into ``V``'s subtree at
  ``v_k``; an attribute obligation at ``u_k`` itself when its
  constraints all appear on ``v_k``.  (See DESIGN.md §4 for why pinning
  is required for soundness.)

**Criterion** (paper): a view set answers ``Q`` iff the union of its
units' coverage equals the obligation set and some unit provides ``Δ``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from ..matching.homomorphism import (
    branch_maps_into,
    constraints_subsume,
    feasible_anchors,
    feasible_pairs,
)
from ..xpath.ast import Axis
from ..xpath.pattern import PatternNode, TreePattern
from .view import View

__all__ = [
    "DELTA",
    "Obligation",
    "CoverageUnit",
    "CoverageMemo",
    "obligations_of",
    "coverage_units",
    "view_coverage",
    "leaf_cover_labels",
    "covers_query",
]

#: Pretty symbol for the answer obligation, as printed in the paper.
DELTA = "Δ"


@dataclass(frozen=True, slots=True)
class Obligation:
    """One thing a view set must account for.

    ``kind`` is ``"delta"``, ``"leaf"`` or ``"attrs"``; ``node_id`` is
    the ``id()`` of the query pattern node (0 for ``delta``);
    ``label`` is presentation-only.
    """

    kind: str
    node_id: int
    label: str

    def __str__(self) -> str:
        if self.kind == "delta":
            return DELTA
        if self.kind == "attrs":
            return f"@{self.label}"
        return self.label


@dataclass(frozen=True, slots=True)
class CoverageUnit:
    """One usable (view, anchor) pair with its coverage.

    ``anchor`` is the query node ``h(RET(view))``; ``covered`` the
    obligations this unit accounts for; ``provides_delta`` whether the
    query answer is extractable from this unit's fragments.
    """

    view: View
    anchor: PatternNode
    covered: frozenset[Obligation]
    provides_delta: bool


def obligations_of(query: TreePattern) -> frozenset[Obligation]:
    """Return ``LF(Q)`` extended with attribute obligations."""
    items: list[Obligation] = [Obligation("delta", 0, DELTA)]
    for node in query.iter_nodes():
        if node.is_leaf():
            items.append(Obligation("leaf", id(node), node.label))
        if node.constraints:
            items.append(Obligation("attrs", id(node), node.label))
    return frozenset(items)


def _pinned_chain(view: View) -> list[PatternNode]:
    """View spine nodes reaching ``RET(V)`` through ``/``-edges only:
    ``[v_0 = RET(V), v_1, ..., v_K]`` (offset = index)."""
    chain = [view.pattern.ret]
    node = view.pattern.ret
    while node.axis is Axis.CHILD and node.parent is not None:
        node = node.parent
        chain.append(node)
    return chain


def _query_chain_up(anchor: PatternNode, offset: int) -> PatternNode | None:
    """``anchor``'s ancestor at exactly ``offset`` ``/``-steps, or None."""
    node = anchor
    for _ in range(offset):
        if node.axis is not Axis.CHILD or node.parent is None:
            return None
        node = node.parent
    return node


def coverage_for_anchor(
    view: View, query: TreePattern, anchor: PatternNode
) -> CoverageUnit:
    """Compute the coverage of one ``(view, anchor)`` unit."""
    covered: set[Obligation] = set()
    provides_delta = anchor.is_ancestor_or_self_of(query.ret)
    if provides_delta:
        covered.add(Obligation("delta", 0, DELTA))

    obligations = obligations_of(query)
    by_node: dict[int, list[Obligation]] = {}
    for obligation in obligations:
        if obligation.kind != "delta":
            by_node.setdefault(obligation.node_id, []).append(obligation)

    node_index = {id(node): node for node in query.iter_nodes()}

    # Fragment-checkable obligations: nodes under (or at) the anchor.
    for node_id, node_obligations in by_node.items():
        node = node_index[node_id]
        if anchor.is_ancestor_or_self_of(node):
            covered.update(node_obligations)

    # Pinned implication through the view's /-suffix spine.  At each
    # pinned offset the query node u_k is join-fixed to the fragment
    # root's k-th ancestor; a *whole* query branch hanging off u_k that
    # embeds into the view's subtree at v_k is guaranteed by the view's
    # definition — the entire branch at once, so obligations sharing an
    # intermediate node always get a single consistent witness.
    pinned = _pinned_chain(view)
    descent: PatternNode | None = None  # child of u_k on the path to x
    for offset, view_node in enumerate(pinned):
        query_node = _query_chain_up(anchor, offset)
        if query_node is None:
            break
        # Attribute obligation at the pinned query node itself.
        for obligation in by_node.get(id(query_node), []):
            if obligation.kind == "attrs" and constraints_subsume(
                query_node, view_node
            ):
                covered.add(obligation)
        # Whole branches hanging off u_k (except the one descending to
        # the anchor — its contents are handled at lower offsets or by
        # the fragment check).
        for branch in query_node.children:
            if branch is descent:
                continue
            if branch_maps_into(branch, view_node):
                for node_id, node_obligations in by_node.items():
                    node = node_index[node_id]
                    if branch.is_ancestor_or_self_of(node):
                        covered.update(node_obligations)
        descent = query_node

    return CoverageUnit(view, anchor, frozenset(covered), provides_delta)


def coverage_units(view: View, query: TreePattern) -> list[CoverageUnit]:
    """All usable units of ``view`` for ``query`` (one per anchor).

    Empty when no homomorphism ``view → query`` exists — the view
    cannot participate in answering ``query`` at all.

    Mutual-containment shortcut: when additionally ``V ⊑ Q`` with
    answer correspondence (a homomorphism ``Q → V`` mapping ``RET(Q)``
    onto ``RET(V)``), the two answer sets are provably equal, so the
    unit anchored at ``RET(Q)`` covers *every* obligation — even
    predicates the pinning rule alone could not certify.  This makes
    every view answer itself (and any equivalent spelling of itself).
    """
    anchors = feasible_anchors(view.pattern, query)
    if not anchors:
        return []
    mutually_contained = any(
        target is view.pattern.ret
        for target in feasible_pairs(query, view.pattern).get(
            id(query.ret), []
        )
    )
    units = []
    for anchor in anchors:
        if mutually_contained and anchor is query.ret:
            units.append(
                CoverageUnit(view, anchor, obligations_of(query), True)
            )
            continue
        unit = coverage_for_anchor(view, query, anchor)
        if unit.covered:
            units.append(unit)
    return units


def view_coverage(view: View, query: TreePattern) -> frozenset[Obligation]:
    """``LC(V, Q)`` — union of this view's unit coverages."""
    covered: set[Obligation] = set()
    for unit in coverage_units(view, query):
        covered.update(unit.covered)
    return frozenset(covered)


def leaf_cover_labels(view: View, query: TreePattern) -> set[str]:
    """``LC(V, Q)`` in the paper's presentation, e.g. ``{'Δ', 't', 'p'}``."""
    return {str(obligation) for obligation in view_coverage(view, query)}


def covers_query(
    units: list[CoverageUnit], query: TreePattern
) -> bool:
    """The paper's criterion: ``∪ LC = LF(Q)`` with a Δ provider."""
    needed = obligations_of(query)
    covered: set[Obligation] = set()
    has_delta = False
    for unit in units:
        covered.update(unit.covered)
        has_delta = has_delta or unit.provides_delta
    return has_delta and needed <= covered


class _QueryMemo:
    """Per-query-key slice of a :class:`CoverageMemo`."""

    __slots__ = ("pattern", "units", "compensations")

    def __init__(self, pattern: TreePattern) -> None:
        self.pattern = pattern  #: state: hard
        #: view_id -> coverage_units(view, pattern)
        #: state: soft(derived-from=pattern; rebuild=units)
        self.units: dict[str, list[CoverageUnit]] = {}
        #: (view_id, id(anchor)) -> (compensating pattern, case-1 skip)
        #: state: soft(derived-from=pattern; rebuild=record_compensation)
        self.compensations: dict[tuple[str, int], tuple[TreePattern, bool]] = {}


class CoverageMemo:
    """Shared homomorphism/coverage memo keyed by ``(view_id, query_key)``.

    MN, MV, CB and the HV list walk each call :func:`coverage_units`
    independently for the same ``(view, query)`` pairs — and the result
    depends *only* on the two patterns.  The memo computes each pair
    once per system and serves every later request (across strategies
    and across ``answer()`` calls) from the cache.

    **Identity discipline.**  Cached units reference query pattern
    nodes by object identity, so each query key is *interned* to one
    pattern object (:meth:`intern`), and every pipeline stage — the
    selectors, the refine stage, the join — must operate on that object.
    Units, compensating-pattern plans and the interned pattern share one
    LRU slot per query key, so eviction can never split them.

    **Lifetime.**  The memo is *epoch-surviving*: it lives on the
    system, not on a :class:`~repro.core.system.RegistryEpoch`, so a
    ``register_view`` epoch swap carries every existing ``(view,
    query)`` entry over untouched — coverage depends only on the two
    patterns, and a new view simply misses.  Document maintenance
    evicts the touched views' entries (:meth:`evict_views`): their
    re-materialization is the one pathway by which a view id's stored
    state changes, and dropping those few entries keeps the memo's
    validity independent of the "view ids are never redefined"
    invariant rather than resting on it.  Untouched views keep their
    entries across maintenance too.

    **Thread safety.**  The memo is shared by every epoch (see
    ``core.system``), so concurrent service workers hit it from many
    threads.  An internal re-entrant lock guards the LRU and the
    per-slot dicts; :func:`coverage_units` itself runs *outside* the
    lock, so two threads may race to compute the same pair — both
    results are equivalent (built from the same interned pattern's
    nodes) and the second store is an idempotent overwrite.
    """

    def __init__(self, max_queries: int = 512) -> None:
        self.max_queries = max_queries  #: state: hard
        #: guarded-by: _lock
        #: state: soft(derived-from=MaterializedViewSystem.document?; rebuild=intern)
        self._queries: "OrderedDict[str, _QueryMemo]" = OrderedDict()
        self._lock = threading.RLock()
        #: guarded-by: _lock (writes)
        #: state: counter
        self.computed = 0
        #: guarded-by: _lock (writes)
        #: state: counter
        self.served = 0
        #: guarded-by: _lock (writes)
        #: state: counter
        self.evicted_views = 0

    # ------------------------------------------------------------------
    def intern(self, query_key: str, pattern: TreePattern) -> TreePattern:
        """Return the canonical pattern object for ``query_key``,
        adopting ``pattern`` when the key is new."""
        with self._lock:
            slot = self._queries.get(query_key)
            if slot is None:
                slot = _QueryMemo(pattern)
                self._queries[query_key] = slot
                while len(self._queries) > self.max_queries:
                    self._queries.popitem(last=False)
            self._queries.move_to_end(query_key)
            return slot.pattern

    def units(self, view: View, query_key: str, pattern: TreePattern) -> list[CoverageUnit]:
        """Memoized :func:`coverage_units` for an interned query."""
        with self._lock:
            slot = self._queries.get(query_key)
            if slot is not None:
                units = slot.units.get(view.view_id)
                if units is not None:
                    self.served += 1
                    return units
                pattern = slot.pattern
        if slot is None:
            # Evicted between intern and use: recompute without caching.
            with self._lock:
                self.computed += 1
            return coverage_units(view, pattern)
        units = coverage_units(view, pattern)
        with self._lock:
            self.computed += 1
            slot.units[view.view_id] = units
        return units

    def compensation(
        self, query_key: str, unit: CoverageUnit
    ) -> "tuple[TreePattern, bool] | None":
        """Cached (compensating pattern, case-1 skip) for a unit, or
        None when not yet recorded.  Only meaningful for units whose
        anchor belongs to the interned pattern of ``query_key``."""
        with self._lock:
            slot = self._queries.get(query_key)
            if slot is None:
                return None
            return slot.compensations.get((unit.view.view_id, id(unit.anchor)))

    def record_compensation(
        self,
        query_key: str,
        unit: CoverageUnit,
        pattern: TreePattern,
        skipped: bool,
    ) -> None:
        with self._lock:
            slot = self._queries.get(query_key)
            if slot is not None:
                key = (unit.view.view_id, id(unit.anchor))
                slot.compensations[key] = (pattern, skipped)

    def evict_views(self, view_ids: "Iterable[str]") -> int:
        """Drop every cached unit list and compensating-pattern plan
        belonging to the given views (all query slots); returns how many
        entries were removed.  Called by document maintenance for the
        views it re-materializes; interned patterns and other views'
        entries are untouched, so warm queries stay warm."""
        gone = set(view_ids)
        if not gone:
            return 0
        removed = 0
        with self._lock:
            for slot in self._queries.values():
                for view_id in gone:
                    if slot.units.pop(view_id, None) is not None:
                        removed += 1
                stale = [
                    key for key in slot.compensations if key[0] in gone
                ]
                for key in stale:
                    del slot.compensations[key]
                removed += len(stale)
            self.evicted_views += removed
        return removed

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "coverage_computed": self.computed,
                "coverage_served": self.served,
                "coverage_evicted": self.evicted_views,
                "queries": len(self._queries),
            }

    def clear(self) -> None:
        with self._lock:
            self._queries.clear()
