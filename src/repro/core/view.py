"""View definitions: an identifier plus a tree pattern.

A *view* in the paper is an XPath expression whose answer-node subtrees
are pre-computed and stored ("materialized fragments").  This module
holds the lightweight definition object shared by VFILTER, selection and
rewriting; materialization itself lives in
:mod:`repro.core.system` / :mod:`repro.storage.fragments`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xpath.decompose import decompose
from ..xpath.normalize import normalize
from ..xpath.parser import parse_xpath
from ..xpath.pattern import PathPattern, TreePattern

__all__ = ["View"]


@dataclass(slots=True)
class View:
    """A named XPath view.

    ``paths`` caches the normalized decomposition ``D(V)`` — computed
    once at registration, reused by VFILTER construction and filtering.
    """

    view_id: str
    pattern: TreePattern
    paths: list[PathPattern] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.paths:
            self.paths = [normalize(path) for path in decompose(self.pattern)]

    @classmethod
    def from_xpath(cls, view_id: str, expression: str) -> "View":
        """Build a view from an XPath string."""
        return cls(view_id, parse_xpath(expression))

    @property
    def path_count(self) -> int:
        """``|D(V)|`` — the filtering threshold of Algorithm 1."""
        return len(self.paths)

    def constraint_signature(self) -> frozenset:
        """Every attribute constraint appearing anywhere in the pattern.

        A homomorphism must map each constrained view node onto a query
        node carrying the same constraint, so this set being a subset of
        the query's is a *necessary* condition — the pruning signal the
        paper's future work proposes to add to VFILTER.
        """
        return frozenset(
            constraint
            for node in self.pattern.iter_nodes()
            for constraint in node.constraints
        )

    def to_xpath(self) -> str:
        return self.pattern.to_xpath()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"View({self.view_id!r}, {self.to_xpath()!r})"
