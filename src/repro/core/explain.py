"""Structured explanation of how a query would be answered.

:func:`explain_query` runs the filtering/selection pipeline without
rewriting and reports every intermediate artifact — what a DBA tool (or
the ``repro explain`` CLI) needs to answer "why was this view (not)
used?" and "why is this query unanswerable?":

* the query's decomposed paths and obligation set,
* VFILTER candidates and the per-path ``LIST(P_i)``,
* per-candidate leaf covers, anchors and fragment statistics,
* the selection each strategy would make (or the uncovered obligations
  when unanswerable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ViewNotAnswerableError
from ..xpath.pattern import TreePattern
from .leaf_cover import coverage_units, obligations_of
from .selection import select_heuristic, select_minimum
from .system import MaterializedViewSystem

__all__ = ["QueryExplanation", "ViewExplanation", "explain_query"]


@dataclass(slots=True)
class ViewExplanation:
    """One candidate view's role for the query."""

    view_id: str
    xpath: str
    leaf_cover: list[str]
    anchors: list[str]
    provides_delta: bool
    fragment_count: int
    fragment_bytes: int


@dataclass(slots=True)
class QueryExplanation:
    """Everything the lookup phase knows about a query."""

    query: str
    paths: list[str]
    obligations: list[str]
    candidates: list[ViewExplanation] = field(default_factory=list)
    filtered_view_count: int = 0
    selections: dict[str, list[str]] = field(default_factory=dict)
    uncovered: list[str] = field(default_factory=list)

    @property
    def answerable(self) -> bool:
        return bool(self.selections)

    def render(self) -> str:
        """Human-readable multi-line rendering (used by the CLI)."""
        lines = [f"query       : {self.query}"]
        lines.append(f"paths D(Q)  : {self.paths}")
        lines.append(f"obligations : {self.obligations}")
        lines.append(
            f"candidates  : {len(self.candidates)} "
            f"(filtered out {self.filtered_view_count})"
        )
        for view in self.candidates:
            delta = " Δ" if view.provides_delta else ""
            lines.append(
                f"  {view.view_id}: {view.xpath}  "
                f"LC={view.leaf_cover}{delta}  "
                f"[{view.fragment_count} fragments, {view.fragment_bytes} B]"
            )
        if self.selections:
            for strategy, view_ids in self.selections.items():
                lines.append(f"selection {strategy}: {view_ids}")
        else:
            lines.append(f"UNANSWERABLE — uncovered: {self.uncovered}")
        return "\n".join(lines)


def explain_query(
    system: MaterializedViewSystem, query: TreePattern
) -> QueryExplanation:
    """Run filtering + selection diagnostics for ``query``."""
    filter_result = system.vfilter.filter(query)
    explanation = QueryExplanation(
        query=query.to_xpath(mark_answer=True),
        paths=[path.to_xpath() for path in filter_result.query_paths],
        obligations=sorted(
            str(obligation) for obligation in obligations_of(query)
        ),
        filtered_view_count=system.view_count - len(filter_result.candidates),
    )

    for view_id in filter_result.candidates:
        view = system.view(view_id)
        units = coverage_units(view, query)
        covered = sorted(
            {str(obligation) for unit in units for obligation in unit.covered}
        )
        anchors = [unit.anchor.label for unit in units]
        explanation.candidates.append(
            ViewExplanation(
                view_id=view_id,
                xpath=view.to_xpath(),
                leaf_cover=covered,
                anchors=anchors,
                provides_delta=any(unit.provides_delta for unit in units),
                fragment_count=system.fragments.fragment_count(view_id),
                fragment_bytes=system.fragments.fragment_bytes(view_id),
            )
        )

    candidates = [system.view(view_id) for view_id in filter_result.candidates]
    try:
        minimum = select_minimum(
            candidates, query, system.fragments.fragment_bytes
        )
        explanation.selections["MV"] = minimum.view_ids
    except ViewNotAnswerableError as error:
        explanation.uncovered = sorted(str(o) for o in error.uncovered)
        return explanation
    heuristic = select_heuristic(
        filter_result,
        system.view,
        query,
        system.fragments.fragment_bytes,
    )
    explanation.selections["HV"] = heuristic.view_ids
    return explanation
