"""Multiple-view selection (paper Section IV-B, Algorithm 2).

Three strategies, matching the paper's experimental legend:

* **MN** — exhaustive minimum over *all* registered views, no VFILTER:
  one homomorphism/coverage computation per view, then exact set cover.
  This is the paper's strawman whose lookup cost grows with the view
  count (Figure 9).
* **MV** — the same exact search, restricted to VFILTER's candidates.
* **HV** — the greedy heuristic of Algorithm 2, driven by the
  ``LIST(P_i)`` sorted lists VFILTER maintains: repeatedly pick an
  uncovered leaf and take the candidate view with the longest containing
  path (longest ⇒ deepest ⇒ smaller materialized fragments), then
  remove redundant views.  Returns a *minimal* (not minimum) set.

The exact search is implemented as set cover over coverage
*signatures*: views with identical obligation coverage collapse into one
class, so the search space is bounded by ``2^|LF(Q)|`` classes rather
than ``2^|V|`` views — the worst case remains exponential in the query
size, as the paper notes, but never in the view count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable

from ..errors import ViewNotAnswerableError
from ..xpath.decompose import decompose
from ..xpath.pattern import PathPattern, PatternNode, TreePattern
from .leaf_cover import (
    CoverageUnit,
    Obligation,
    coverage_units,
    obligations_of,
)
from .vfilter import FilterResult
from .view import View

__all__ = ["Selection", "select_cost_based", "select_heuristic", "select_minimum"]

#: Optional callback reporting a view's materialized size in bytes;
#: used as a tie-breaker (smaller fragments first).
SizeOf = Callable[[str], int]

#: Optional coverage-unit supplier (the system threads a
#: :class:`~repro.core.leaf_cover.CoverageMemo` through here so MN, MV,
#: HV and CB share one homomorphism computation per (view, query) pair).
UnitsFn = Callable[[View], list[CoverageUnit]]


def _units_fn_for(query: TreePattern, units_fn: UnitsFn | None) -> UnitsFn:
    if units_fn is not None:
        return units_fn
    return lambda view: coverage_units(view, query)


@dataclass(slots=True)
class Selection:
    """A chosen view set with the per-anchor units rewriting will use."""

    views: list[View]
    units: list[CoverageUnit] = field(default_factory=list)

    @property
    def view_ids(self) -> list[str]:
        return [view.view_id for view in self.views]

    def delta_units(self) -> list[CoverageUnit]:
        return [unit for unit in self.units if unit.provides_delta]


@dataclass(slots=True)
class _ViewInfo:
    view: View
    units: list[CoverageUnit]
    coverage: frozenset[Obligation]
    has_delta: bool
    size: int


def _gather(
    views: list[View],
    query: TreePattern,
    size_of: SizeOf | None,
    units_fn: UnitsFn | None = None,
) -> list[_ViewInfo]:
    units_of = _units_fn_for(query, units_fn)
    infos: list[_ViewInfo] = []
    for view in views:
        units = units_of(view)
        if not units:
            continue
        coverage: set[Obligation] = set()
        has_delta = False
        for unit in units:
            coverage.update(unit.covered)
            has_delta = has_delta or unit.provides_delta
        infos.append(
            _ViewInfo(
                view,
                units,
                frozenset(coverage),
                has_delta,
                size_of(view.view_id) if size_of else 0,
            )
        )
    return infos


def _finish(infos: list[_ViewInfo]) -> Selection:
    views = [info.view for info in infos]
    units = [unit for info in infos for unit in info.units]
    return Selection(views, units)


def select_minimum(
    views: list[View],
    query: TreePattern,
    size_of: SizeOf | None = None,
    units_fn: UnitsFn | None = None,
) -> Selection:
    """Exact minimum-cardinality answering view set (MN / MV).

    Raises :class:`~repro.errors.ViewNotAnswerableError` when no subset
    answers the query; the exception carries the uncovered obligations.
    """
    needed = obligations_of(query)
    infos = _gather(views, query, size_of, units_fn)

    # Collapse identical coverage signatures, keeping the smallest view
    # (by materialized bytes, then registration order) per class.
    classes: dict[tuple[frozenset[Obligation], bool], _ViewInfo] = {}
    for info in infos:
        key = (info.coverage, info.has_delta)
        incumbent = classes.get(key)
        if incumbent is None or info.size < incumbent.size:
            classes[key] = info
    candidates = list(classes.values())

    union: set[Obligation] = set()
    for info in candidates:
        union.update(info.coverage)
    if not needed <= union or not any(info.has_delta for info in candidates):
        raise ViewNotAnswerableError(
            "no view subset answers the query",
            uncovered=frozenset(needed - union),
        )

    for size in range(1, len(candidates) + 1):
        best: list[_ViewInfo] | None = None
        best_bytes = 0
        for combo in combinations(candidates, size):
            if not any(info.has_delta for info in combo):
                continue
            covered: set[Obligation] = set()
            for info in combo:
                covered.update(info.coverage)
            if needed <= covered:
                total = sum(info.size for info in combo)
                if best is None or total < best_bytes:
                    best = list(combo)
                    best_bytes = total
        if best is not None:
            return _finish(best)
    raise ViewNotAnswerableError("no view subset answers the query")


def _leaf_path(leaf: PatternNode) -> PathPattern:
    """The root-to-leaf path pattern containing ``leaf`` (raw form,
    matching the keys of ``FilterResult.lists``)."""
    steps = tuple(node.step() for node in leaf.root_path())
    return PathPattern(steps)


def select_heuristic(
    filter_result: FilterResult,
    view_lookup: Callable[[str], View],
    query: TreePattern,
    size_of: SizeOf | None = None,
    units_fn: UnitsFn | None = None,
) -> Selection:
    """Algorithm 2: greedy minimal selection from ``LIST(P_i)``.

    ``filter_result`` comes from :meth:`VFilter.filter`;
    ``view_lookup`` resolves candidate ids to :class:`View` objects.
    """
    needed = obligations_of(query)
    units_of = _units_fn_for(query, units_fn)
    node_index = {id(node): node for node in query.iter_nodes()}

    # Map every non-delta obligation to the query path that reaches it
    # (for an internal attrs obligation: the path through its subtree's
    # first leaf, which its own steps prefix).
    def path_for(obligation: Obligation) -> PathPattern:
        node = node_index[obligation.node_id]
        probe = node
        while probe.children:
            probe = probe.children[0]
        return _leaf_path(probe)

    selected: dict[str, _ViewInfo] = {}
    covered: set[Obligation] = set()
    pending = [ob for ob in needed if ob.kind != "delta"]
    # Deterministic order: by path then label (the paper picks randomly).
    pending.sort(key=lambda ob: (path_for(ob).to_xpath(), ob.label, ob.kind))

    def try_views(
        entries: list[tuple[str, int]], target: Obligation | None
    ) -> bool:
        """Walk a LIST(P_i); select the first view covering ``target``
        (or providing Δ when ``target`` is None)."""
        for view_id, _length in entries:
            if view_id in selected:
                continue
            view = view_lookup(view_id)
            units = units_of(view)
            if not units:
                continue
            coverage: set[Obligation] = set()
            has_delta = False
            for unit in units:
                coverage.update(unit.covered)
                has_delta = has_delta or unit.provides_delta
            hit = has_delta if target is None else target in coverage
            if hit:
                selected[view_id] = _ViewInfo(
                    view,
                    units,
                    frozenset(coverage),
                    has_delta,
                    size_of(view_id) if size_of else 0,
                )
                covered.update(coverage)
                return True
        return False

    while True:
        uncovered = [ob for ob in pending if ob not in covered]
        if not uncovered:
            break
        target = uncovered[0]
        entries = filter_result.lists.get(path_for(target), [])
        if not try_views(entries, target):
            # Attribute obligations (our Section-V extension) may be
            # covered by a view reached through a *different* query
            # path; fall back to every candidate list before giving up.
            fallback: list[tuple[str, int]] = []
            seen_ids: set[str] = set()
            for other_entries in filter_result.lists.values():
                for view_id, length in other_entries:
                    if view_id not in seen_ids:
                        seen_ids.add(view_id)
                        fallback.append((view_id, length))
            fallback.sort(key=lambda item: (-item[1], item[0]))
            if not try_views(fallback, target):
                raise ViewNotAnswerableError(
                    f"no candidate view covers obligation {target}",
                    uncovered=frozenset(uncovered),
                )

    # Ensure a Δ provider, preferring the answer node's own path list.
    if not any(info.has_delta for info in selected.values()):
        answer_path = _leaf_path_for_answer(query)
        entries = filter_result.lists.get(answer_path, [])
        if not try_views(entries, None):
            # Fall back to any candidate list.
            if not any(
                try_views(entries, None)
                for entries in filter_result.lists.values()
            ):
                raise ViewNotAnswerableError(
                    "no candidate view can provide the query answer (Δ)"
                )

    # Lines 20-21: drop redundant views (latest-added first).
    for view_id in list(reversed(list(selected))):
        remaining = [info for vid, info in selected.items() if vid != view_id]
        still_covered: set[Obligation] = set()
        for info in remaining:
            still_covered.update(info.coverage)
        if needed <= still_covered and any(info.has_delta for info in remaining):
            del selected[view_id]

    return _finish(list(selected.values()))


def _leaf_path_for_answer(query: TreePattern) -> PathPattern:
    """The normalized path through the answer node's first leaf."""
    probe = query.ret
    while probe.children:
        probe = probe.children[0]
    return _leaf_path(probe)


def select_cost_based(
    views: list[View],
    query: TreePattern,
    size_of: SizeOf,
    view_overhead_bytes: int = 4096,
    units_fn: UnitsFn | None = None,
) -> Selection:
    """Cost-model selection: weighted greedy set cover.

    The paper observes that the minimum-cardinality criterion (MV) and
    the smallest-fragments heuristic (HV) optimize different costs and
    suggests — without implementing — a model combining both.  This
    selector does: each view's cost is its materialized fragment bytes
    plus a fixed per-view overhead (standing for the join/bookkeeping
    cost another participant adds), and views are picked greedily by
    cost per newly covered obligation.  Ablated against MV and HV in
    ``benchmarks/bench_ablation_selection.py``.
    """
    needed = obligations_of(query)
    infos = _gather(views, query, size_of, units_fn)
    if not infos:
        raise ViewNotAnswerableError("no usable view for the query")

    chosen: list[_ViewInfo] = []
    covered: set[Obligation] = set()
    remaining = list(infos)
    while not needed <= covered:
        best: _ViewInfo | None = None
        best_score = 0.0
        for info in remaining:
            gain = len((needed & info.coverage) - covered)
            if gain == 0:
                continue
            score = (info.size + view_overhead_bytes) / gain
            if best is None or score < best_score:
                best = info
                best_score = score
        if best is None:
            raise ViewNotAnswerableError(
                "no view subset answers the query",
                uncovered=frozenset(needed - covered),
            )
        chosen.append(best)
        covered.update(best.coverage)
        remaining.remove(best)

    if not any(info.has_delta for info in chosen):
        delta_options = [info for info in remaining if info.has_delta]
        if not delta_options:
            raise ViewNotAnswerableError(
                "no candidate view can provide the query answer (Δ)"
            )
        chosen.append(min(delta_options, key=lambda info: info.size))

    # Redundancy removal, most expensive first.
    for info in sorted(chosen, key=lambda info: -info.size):
        rest = [other for other in chosen if other is not info]
        still: set[Obligation] = set()
        for other in rest:
            still.update(other.coverage)
        if needed <= still and any(other.has_delta for other in rest):
            chosen = rest
    return _finish(chosen)
