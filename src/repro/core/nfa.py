"""The NFA underlying VFILTER (paper Section III-B, Figure 5).

States are integers; transitions come in three kinds, matching the
paper's alphabet semantics ("``*`` matches any label but not the query
axis; ``#`` can only match ``#``"):

* ``EXACT(l)`` — consumes exactly the label token ``l`` (never the query
  wildcard ``*`` and never ``#``): a view label is *less* general than a
  query wildcard, so it must not match one.
* ``STAR`` — consumes any token except ``#``: the view's ``*`` subsumes
  every query label and the query's own ``*``.
* ``ANY`` — consumes every token including ``#``: used on the loop
  states that realize ``//``-edges and as the accepting self-loop (a
  view path contains every query path extending one of its matches).

Construction per normalized view path pattern:

* step ``/l``  : ``q --EXACT(l)--> q'``
* step ``/*``  : ``q --STAR--> q'``
* step ``//l`` : ``q --EXACT(l)--> q'`` *and* ``q --ANY--> L(q)
  --ANY--> L(q) --EXACT(l)--> q'`` where ``L(q)`` is the loop state of
  ``q`` (one per source state, shared by all its ``//``-steps).  The
  direct edge realizes the zero-intermediate case (``a//b ⊒ a/b``), the
  loop any number of interposed query steps.
* step ``//*`` : same shape with ``STAR`` exits.

Descendant-step exits are tracked separately from child-step exits
(``desc_exact``/``desc_star`` vs ``exact``/``star``): a ``//l`` step and
a ``/l`` step from the same state must *not* share a target, otherwise
a query reaching the shared state through the loop would wrongly
continue along the ``/l`` pattern's suffix (``//l/x ⋢ /l/x``).

Common prefixes share states, which is what keeps VFILTER's size
sub-linear in the number of views (Figure 11).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PathPattern
from ..xpath.transform import DESCENDANT_TOKEN

__all__ = ["PathNFA", "CompiledNFA", "AcceptEntry"]

#: Default cap on eagerly built DFA rows at epoch-publish time; states
#: beyond it are expanded lazily on first visit.
DEFAULT_COMPILE_BUDGET = 2048


@dataclass(frozen=True, slots=True)
class AcceptEntry:
    """What an accepting state means: one view path pattern.

    ``length`` is the number of labels of the view path — the ``l`` of
    the paper's ``LIST(P_i)`` pairs.
    """

    view_id: str
    path_index: int
    length: int


@dataclass(slots=True)
class _State:
    exact: dict[str, int] = field(default_factory=dict)
    star: int | None = None
    desc_exact: dict[str, int] = field(default_factory=dict)
    desc_star: int | None = None
    any_to: list[int] = field(default_factory=list)
    #: ANY-advance target for gap units (wildcard runs with a //-edge):
    #: consumes one token of any kind and moves forward (not a loop).
    chain: int | None = None
    accepts: list[AcceptEntry] = field(default_factory=list)
    is_loop: bool = False


class PathNFA:
    """Prefix-sharing NFA over normalized view path patterns."""

    def __init__(self) -> None:
        self._states: list[_State] = [_State()]  #: state: hard
        #: source state -> its loop state
        self._loops: dict[int, int] = {}  #: state: hard
        self._transition_count = 0  #: state: counter
        #: state: soft(derived-from=_states, _loops; rebuild=compile)
        self._compiled: CompiledNFA | None = None
        #: How many ``read`` calls took the compiled / simulated path —
        #: racy best-effort counters (stats only, never control flow).
        self.reads_compiled = 0  #: state: counter
        self.reads_simulated = 0  #: state: counter

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_state(self) -> int:
        self._states.append(_State())
        return len(self._states) - 1

    def _loop_of(self, state_id: int) -> int:
        """Return (creating if needed) the loop state of ``state_id``."""
        loop = self._loops.get(state_id)
        if loop is None:
            loop = self._new_state()
            self._states[loop].is_loop = True
            self._states[loop].any_to.append(loop)
            self._states[state_id].any_to.append(loop)
            self._loops[state_id] = loop
            self._transition_count += 2
        return loop

    def _advance_child(self, state_id: int, label: str) -> int:
        """Child-axis exit for ``label`` (created or shared)."""
        state = self._states[state_id]
        if label == WILDCARD:
            if state.star is None:
                state.star = self._new_state()
                self._transition_count += 1
            return state.star
        target = state.exact.get(label)
        if target is None:
            target = self._new_state()
            state.exact[label] = target
            self._transition_count += 1
        return target

    def _advance_descendant(self, state_id: int, label: str) -> int:
        """Descendant-axis exit: direct edge + loop edge, one target."""
        loop_id = self._loop_of(state_id)
        state = self._states[state_id]
        loop = self._states[loop_id]
        if label == WILDCARD:
            if loop.star is None:
                loop.star = self._new_state()
                self._transition_count += 1
            target = loop.star
            if state.desc_star is None:
                state.desc_star = target
                self._transition_count += 1
            return target
        target = loop.exact.get(label)
        if target is None:
            target = self._new_state()
            loop.exact[label] = target
            self._transition_count += 1
        if label not in state.desc_exact:
            state.desc_exact[label] = target
            self._transition_count += 1
        return target

    def _advance_any(self, state_id: int) -> int:
        """ANY-advance exit (created or shared): one token of any kind."""
        state = self._states[state_id]
        if state.chain is None:
            state.chain = self._new_state()
            self._transition_count += 1
        return state.chain

    #: state: mutator
    def insert(self, path: PathPattern, entry: AcceptEntry) -> None:
        """Insert one normalized view path pattern.

        Wildcard runs touching a ``//``-edge are inserted as *gap
        units*: an all-wildcard run of ``n`` steps whose region (its own
        edges plus the edge into the terminating label) contains a
        ``//`` constrains only the *depth gap* — "the terminating label
        sits ≥ n+1 levels below the anchor".  A per-step translation of
        the normalized form under-accepts (the paper's front-pushed
        ``/``-edges reject query ``//``-edges that containment allows),
        so the unit becomes: ``n`` ANY-advances, then the ``//l``-style
        fragment.  Counting a ``#`` token as an advance can only
        over-accept (one more false positive), never under-accept: a
        containment witness always supplies ≥ n+1 real steps.
        """
        self._compiled = None  # any structural change voids the DFA
        steps = path.steps
        current = 0
        index = 0
        while index < len(steps):
            step = steps[index]
            if step.label != WILDCARD:
                if step.axis is Axis.DESCENDANT:
                    current = self._advance_descendant(current, step.label)
                else:
                    current = self._advance_child(current, step.label)
                index += 1
                continue
            # Maximal wildcard run [index, end).
            end = index
            while end < len(steps) and steps[end].label == WILDCARD:
                end += 1
            run = steps[index:end]
            region = list(run)
            terminal = steps[end] if end < len(steps) else None
            if terminal is not None:
                region.append(terminal)
            # A trailing run is always a gap unit: k trailing wildcards
            # assert only "a descendant ≥ k levels below" (l/* ≡ l//*).
            if terminal is not None and not any(
                s.axis is Axis.DESCENDANT for s in region
            ):
                # Exact-depth run: plain STAR advances.
                for _ in run:
                    current = self._advance_child(current, WILDCARD)
                index = end
                continue
            # Gap unit: n ANY-advances, then the terminal as a
            # descendant-style fragment (direct + loop).
            if terminal is not None:
                for _ in run:
                    current = self._advance_any(current)
                current = self._advance_descendant(current, terminal.label)
                index = end + 1
            else:
                for _ in run[:-1]:
                    current = self._advance_any(current)
                current = self._advance_descendant(current, WILDCARD)
                index = end
        accepting = self._states[current]
        if not accepting.accepts and current not in accepting.any_to:
            # First acceptance here: the prefix-extension self-loop.
            accepting.any_to.append(current)
            self._transition_count += 1
        accepting.accepts.append(entry)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _step(self, current: set[int], token: str) -> set[int]:
        following: set[int] = set()
        is_hash = token == DESCENDANT_TOKEN
        for state_id in current:
            state = self._states[state_id]
            following.update(state.any_to)
            if state.chain is not None:
                following.add(state.chain)
            if is_hash:
                continue
            if state.star is not None:
                following.add(state.star)
            if state.desc_star is not None:
                following.add(state.desc_star)
            target = state.exact.get(token)
            if target is not None:
                following.add(target)
            target = state.desc_exact.get(token)
            if target is not None:
                following.add(target)
        return following

    def read(self, tokens: tuple[str, ...]) -> list[AcceptEntry]:
        """Run ``δ(q0, tokens)`` and return the accept entries reached.

        Uses the compiled transition table when :meth:`compile` has run
        (one dict probe per token) and falls back to set simulation
        otherwise.
        """
        compiled = self._compiled
        if compiled is not None:
            self.reads_compiled += 1
            return compiled.read(tokens)
        self.reads_simulated += 1
        current: set[int] = {0}
        for token in tokens:
            current = self._step(current, token)
            if not current:
                return []
        entries: list[AcceptEntry] = []
        for state_id in current:
            entries.extend(self._states[state_id].accepts)
        return entries

    def compile(self, budget: int = DEFAULT_COMPILE_BUDGET) -> "CompiledNFA":
        """Build (or return) the lazy-DFA transition table.

        Idempotent until the next :meth:`insert`, which voids the cached
        automaton.  ``budget`` caps the number of DFA rows expanded
        eagerly; further states are built on first visit.
        """
        compiled = self._compiled
        if compiled is None:
            compiled = CompiledNFA(self._states)
            compiled.warm(budget)
            self._compiled = compiled
        return compiled

    @property
    def compiled(self) -> "CompiledNFA | None":
        return self._compiled

    def reachable_states(self, tokens: tuple[str, ...]) -> set[int]:
        """Return the raw state set ``δ(q0, tokens)`` (diagnostics and
        the paper-walkthrough example)."""
        current: set[int] = {0}
        for token in tokens:
            current = self._step(current, token)
        return current

    # ------------------------------------------------------------------
    # introspection / sizing
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._states)

    @property
    def transition_count(self) -> int:
        return self._transition_count

    def accepting_states(self) -> dict[int, list[AcceptEntry]]:
        return {
            state_id: state.accepts
            for state_id, state in enumerate(self._states)
            if state.accepts
        }

    def stored_bytes(self) -> int:
        """Serialized size estimate — the Figure 11 metric."""
        total = 0
        for state in self._states:
            total += 8  # state header
            for label in state.exact:
                total += len(label.encode()) + 5
            for label in state.desc_exact:
                total += len(label.encode()) + 5
            if state.star is not None:
                total += 5
            if state.desc_star is not None:
                total += 5
            total += 5 * len(state.any_to)
            if state.chain is not None:
                total += 5
            for entry in state.accepts:
                total += len(entry.view_id.encode()) + 10
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PathNFA states={self.state_count} "
            f"transitions={self.transition_count}>"
        )


class CompiledNFA:
    """Lazy subset-construction DFA over a frozen :class:`PathNFA`.

    Set simulation costs one pass over the *state set* per token; the
    compiled form costs one dict probe per token.  Each DFA state is an
    interned frozenset of NFA state ids carrying a precomputed row:

    * ``labels`` — explicit targets for every label appearing in some
      member state's ``exact``/``desc_exact`` dict (the only labels
      whose successor differs from the default);
    * ``other`` — the target for every *other* non-``#`` token.  The
      query wildcard ``*`` lands here too: view ``exact`` dicts never
      key ``*`` (wildcard steps go to ``star``), so ``*`` follows
      exactly the ``any_to``/``chain``/``star``/``desc_star`` edges an
      unknown label follows;
    * ``hash`` — the target for the ``#`` token, which per the paper's
      alphabet only follows ``any_to``/``chain`` edges.

    Rows are built on first visit (and eagerly up to a budget by
    :meth:`warm`), so the table stays proportional to the state sets
    queries actually reach — never the exponential full powerset.

    Thread safety: the underlying NFA is frozen once published in an
    epoch, and all table mutation happens under ``_lock``.  The read
    path is lock-free — it only indexes lists the GIL keeps consistent
    and retries through the lock when it lands on an unbuilt row.
    """

    #: DFA id of the dead state (empty NFA set); all its exits loop.
    DEAD = 0

    __slots__ = (
        "_nfa_states",
        "_sets",
        "_labels",
        "_other",
        "_hash",
        "_accepts",
        "_intern",
        "_lock",
        "_start",
        "_rows_built",
    )

    def __init__(self, nfa_states: list[_State]) -> None:
        self._nfa_states = nfa_states  #: state: hard
        #: guarded-by: _lock (writes)
        #: state: soft(derived-from=_nfa_states; rebuild=_build_row)
        self._sets: list[frozenset[int]] = []
        #: per-DFA-state label row; ``None`` until the row is built.
        #: guarded-by: _lock (writes)
        #: state: soft(derived-from=_nfa_states; rebuild=_build_row)
        self._labels: list[dict[str, int] | None] = []
        #: guarded-by: _lock (writes)
        #: state: soft(derived-from=_nfa_states; rebuild=_build_row)
        self._other: list[int] = []
        #: guarded-by: _lock (writes)
        #: state: soft(derived-from=_nfa_states; rebuild=_build_row)
        self._hash: list[int] = []
        #: guarded-by: _lock (writes)
        #: state: soft(derived-from=_nfa_states; rebuild=_build_row)
        self._accepts: list[tuple[AcceptEntry, ...]] = []
        #: guarded-by: _lock (writes)
        #: state: soft(derived-from=_nfa_states; rebuild=_build_row)
        self._intern: dict[frozenset[int], int] = {}
        self._lock = threading.Lock()
        #: guarded-by: _lock (writes)
        #: state: counter
        self._rows_built = 0
        dead = self._intern_set(frozenset())
        assert dead == self.DEAD
        self._labels[dead] = {}
        self._other[dead] = dead
        self._hash[dead] = dead
        self._rows_built += 1
        self._start = self._intern_set(frozenset({0}))  #: state: hard

    # ------------------------------------------------------------------
    # construction (all mutation under ``_lock`` after ``__init__``)
    # ------------------------------------------------------------------
    def _intern_set(self, states: frozenset[int]) -> int:
        dfa_id = self._intern.get(states)
        if dfa_id is not None:
            return dfa_id
        dfa_id = len(self._sets)
        self._sets.append(states)
        self._labels.append(None)
        self._other.append(-1)
        self._hash.append(-1)
        self._accepts.append(
            tuple(
                entry
                for state_id in sorted(states)
                for entry in self._nfa_states[state_id].accepts
            )
        )
        self._intern[states] = dfa_id
        return dfa_id

    def _build_row(self, dfa_id: int) -> dict[str, int]:
        """Compute the full transition row of ``dfa_id`` (lock held)."""
        built = self._labels[dfa_id]
        if built is not None:  # lost the race: another thread built it
            return built
        states = self._nfa_states
        hash_set: set[int] = set()
        relevant: set[str] = set()
        for state_id in self._sets[dfa_id]:
            state = states[state_id]
            hash_set.update(state.any_to)
            if state.chain is not None:
                hash_set.add(state.chain)
            relevant.update(state.exact)
            relevant.update(state.desc_exact)
        other_set = set(hash_set)
        for state_id in self._sets[dfa_id]:
            state = states[state_id]
            if state.star is not None:
                other_set.add(state.star)
            if state.desc_star is not None:
                other_set.add(state.desc_star)
        row: dict[str, int] = {}
        for label in relevant:
            target_set = set(other_set)
            for state_id in self._sets[dfa_id]:
                state = states[state_id]
                target = state.exact.get(label)
                if target is not None:
                    target_set.add(target)
                target = state.desc_exact.get(label)
                if target is not None:
                    target_set.add(target)
            row[label] = self._intern_set(frozenset(target_set))
        other_id = self._intern_set(frozenset(other_set))
        hash_id = self._intern_set(frozenset(hash_set))
        # Publish ``other``/``hash`` before the row dict: readers treat a
        # non-``None`` row as "fully built".
        self._other[dfa_id] = other_id
        self._hash[dfa_id] = hash_id
        self._labels[dfa_id] = row
        self._rows_built += 1
        return row

    def warm(self, budget: int = DEFAULT_COMPILE_BUDGET) -> int:
        """Eagerly expand up to ``budget`` DFA rows breadth-first from
        the start state; return how many rows exist afterwards."""
        with self._lock:
            queue = [self._start]
            seen = {self.DEAD, self._start}
            while queue and self._rows_built < budget:
                dfa_id = queue.pop(0)
                row = self._labels[dfa_id]
                if row is None:
                    row = self._build_row(dfa_id)
                successors = list(row.values())
                successors.append(self._other[dfa_id])
                successors.append(self._hash[dfa_id])
                for target in successors:
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
            return self._rows_built

    # ------------------------------------------------------------------
    # execution (lock-free fast path)
    # ------------------------------------------------------------------
    def read(self, tokens: tuple[str, ...]) -> list[AcceptEntry]:
        """Run the token path through the table: one probe per token."""
        labels = self._labels
        current = self._start
        for token in tokens:
            if current == self.DEAD:
                return []
            row = labels[current]
            if row is None:
                with self._lock:
                    row = self._build_row(current)
            target = row.get(token)
            if target is None:
                if token == DESCENDANT_TOKEN:
                    target = self._hash[current]
                else:
                    target = self._other[current]
            current = target
        return list(self._accepts[current])

    # ------------------------------------------------------------------
    # introspection / sizing
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._sets)

    @property
    def rows_built(self) -> int:
        return self._rows_built

    def table_entries(self) -> int:
        """Total transition-table entries across built rows."""
        total = 0
        for row in self._labels:
            if row is not None:
                total += len(row) + 2  # labels + other + hash
        return total

    def stored_bytes(self) -> int:
        """Rough in-memory footprint of the compiled table."""
        total = 0
        for dfa_id, row in enumerate(self._labels):
            total += 8 + 4 * len(self._sets[dfa_id])
            if row is not None:
                total += 10  # other + hash slots
                for label in row:
                    total += len(label.encode()) + 5
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CompiledNFA states={self.state_count} "
            f"rows={self._rows_built}>"
        )
