"""The NFA underlying VFILTER (paper Section III-B, Figure 5).

States are integers; transitions come in three kinds, matching the
paper's alphabet semantics ("``*`` matches any label but not the query
axis; ``#`` can only match ``#``"):

* ``EXACT(l)`` — consumes exactly the label token ``l`` (never the query
  wildcard ``*`` and never ``#``): a view label is *less* general than a
  query wildcard, so it must not match one.
* ``STAR`` — consumes any token except ``#``: the view's ``*`` subsumes
  every query label and the query's own ``*``.
* ``ANY`` — consumes every token including ``#``: used on the loop
  states that realize ``//``-edges and as the accepting self-loop (a
  view path contains every query path extending one of its matches).

Construction per normalized view path pattern:

* step ``/l``  : ``q --EXACT(l)--> q'``
* step ``/*``  : ``q --STAR--> q'``
* step ``//l`` : ``q --EXACT(l)--> q'`` *and* ``q --ANY--> L(q)
  --ANY--> L(q) --EXACT(l)--> q'`` where ``L(q)`` is the loop state of
  ``q`` (one per source state, shared by all its ``//``-steps).  The
  direct edge realizes the zero-intermediate case (``a//b ⊒ a/b``), the
  loop any number of interposed query steps.
* step ``//*`` : same shape with ``STAR`` exits.

Descendant-step exits are tracked separately from child-step exits
(``desc_exact``/``desc_star`` vs ``exact``/``star``): a ``//l`` step and
a ``/l`` step from the same state must *not* share a target, otherwise
a query reaching the shared state through the loop would wrongly
continue along the ``/l`` pattern's suffix (``//l/x ⋢ /l/x``).

Common prefixes share states, which is what keeps VFILTER's size
sub-linear in the number of views (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PathPattern
from ..xpath.transform import DESCENDANT_TOKEN

__all__ = ["PathNFA", "AcceptEntry"]


@dataclass(frozen=True, slots=True)
class AcceptEntry:
    """What an accepting state means: one view path pattern.

    ``length`` is the number of labels of the view path — the ``l`` of
    the paper's ``LIST(P_i)`` pairs.
    """

    view_id: str
    path_index: int
    length: int


@dataclass(slots=True)
class _State:
    exact: dict[str, int] = field(default_factory=dict)
    star: int | None = None
    desc_exact: dict[str, int] = field(default_factory=dict)
    desc_star: int | None = None
    any_to: list[int] = field(default_factory=list)
    #: ANY-advance target for gap units (wildcard runs with a //-edge):
    #: consumes one token of any kind and moves forward (not a loop).
    chain: int | None = None
    accepts: list[AcceptEntry] = field(default_factory=list)
    is_loop: bool = False


class PathNFA:
    """Prefix-sharing NFA over normalized view path patterns."""

    def __init__(self) -> None:
        self._states: list[_State] = [_State()]
        self._loops: dict[int, int] = {}  # source state -> its loop state
        self._transition_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_state(self) -> int:
        self._states.append(_State())
        return len(self._states) - 1

    def _loop_of(self, state_id: int) -> int:
        """Return (creating if needed) the loop state of ``state_id``."""
        loop = self._loops.get(state_id)
        if loop is None:
            loop = self._new_state()
            self._states[loop].is_loop = True
            self._states[loop].any_to.append(loop)
            self._states[state_id].any_to.append(loop)
            self._loops[state_id] = loop
            self._transition_count += 2
        return loop

    def _advance_child(self, state_id: int, label: str) -> int:
        """Child-axis exit for ``label`` (created or shared)."""
        state = self._states[state_id]
        if label == WILDCARD:
            if state.star is None:
                state.star = self._new_state()
                self._transition_count += 1
            return state.star
        target = state.exact.get(label)
        if target is None:
            target = self._new_state()
            state.exact[label] = target
            self._transition_count += 1
        return target

    def _advance_descendant(self, state_id: int, label: str) -> int:
        """Descendant-axis exit: direct edge + loop edge, one target."""
        loop_id = self._loop_of(state_id)
        state = self._states[state_id]
        loop = self._states[loop_id]
        if label == WILDCARD:
            if loop.star is None:
                loop.star = self._new_state()
                self._transition_count += 1
            target = loop.star
            if state.desc_star is None:
                state.desc_star = target
                self._transition_count += 1
            return target
        target = loop.exact.get(label)
        if target is None:
            target = self._new_state()
            loop.exact[label] = target
            self._transition_count += 1
        if label not in state.desc_exact:
            state.desc_exact[label] = target
            self._transition_count += 1
        return target

    def _advance_any(self, state_id: int) -> int:
        """ANY-advance exit (created or shared): one token of any kind."""
        state = self._states[state_id]
        if state.chain is None:
            state.chain = self._new_state()
            self._transition_count += 1
        return state.chain

    def insert(self, path: PathPattern, entry: AcceptEntry) -> None:
        """Insert one normalized view path pattern.

        Wildcard runs touching a ``//``-edge are inserted as *gap
        units*: an all-wildcard run of ``n`` steps whose region (its own
        edges plus the edge into the terminating label) contains a
        ``//`` constrains only the *depth gap* — "the terminating label
        sits ≥ n+1 levels below the anchor".  A per-step translation of
        the normalized form under-accepts (the paper's front-pushed
        ``/``-edges reject query ``//``-edges that containment allows),
        so the unit becomes: ``n`` ANY-advances, then the ``//l``-style
        fragment.  Counting a ``#`` token as an advance can only
        over-accept (one more false positive), never under-accept: a
        containment witness always supplies ≥ n+1 real steps.
        """
        steps = path.steps
        current = 0
        index = 0
        while index < len(steps):
            step = steps[index]
            if step.label != WILDCARD:
                if step.axis is Axis.DESCENDANT:
                    current = self._advance_descendant(current, step.label)
                else:
                    current = self._advance_child(current, step.label)
                index += 1
                continue
            # Maximal wildcard run [index, end).
            end = index
            while end < len(steps) and steps[end].label == WILDCARD:
                end += 1
            run = steps[index:end]
            region = list(run)
            terminal = steps[end] if end < len(steps) else None
            if terminal is not None:
                region.append(terminal)
            # A trailing run is always a gap unit: k trailing wildcards
            # assert only "a descendant ≥ k levels below" (l/* ≡ l//*).
            if terminal is not None and not any(
                s.axis is Axis.DESCENDANT for s in region
            ):
                # Exact-depth run: plain STAR advances.
                for _ in run:
                    current = self._advance_child(current, WILDCARD)
                index = end
                continue
            # Gap unit: n ANY-advances, then the terminal as a
            # descendant-style fragment (direct + loop).
            if terminal is not None:
                for _ in run:
                    current = self._advance_any(current)
                current = self._advance_descendant(current, terminal.label)
                index = end + 1
            else:
                for _ in run[:-1]:
                    current = self._advance_any(current)
                current = self._advance_descendant(current, WILDCARD)
                index = end
        accepting = self._states[current]
        if not accepting.accepts and current not in accepting.any_to:
            # First acceptance here: the prefix-extension self-loop.
            accepting.any_to.append(current)
            self._transition_count += 1
        accepting.accepts.append(entry)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _step(self, current: set[int], token: str) -> set[int]:
        following: set[int] = set()
        is_hash = token == DESCENDANT_TOKEN
        for state_id in current:
            state = self._states[state_id]
            following.update(state.any_to)
            if state.chain is not None:
                following.add(state.chain)
            if is_hash:
                continue
            if state.star is not None:
                following.add(state.star)
            if state.desc_star is not None:
                following.add(state.desc_star)
            target = state.exact.get(token)
            if target is not None:
                following.add(target)
            target = state.desc_exact.get(token)
            if target is not None:
                following.add(target)
        return following

    def read(self, tokens: tuple[str, ...]) -> list[AcceptEntry]:
        """Run ``δ(q0, tokens)`` and return the accept entries reached."""
        current: set[int] = {0}
        for token in tokens:
            current = self._step(current, token)
            if not current:
                return []
        entries: list[AcceptEntry] = []
        for state_id in current:
            entries.extend(self._states[state_id].accepts)
        return entries

    def reachable_states(self, tokens: tuple[str, ...]) -> set[int]:
        """Return the raw state set ``δ(q0, tokens)`` (diagnostics and
        the paper-walkthrough example)."""
        current: set[int] = {0}
        for token in tokens:
            current = self._step(current, token)
        return current

    # ------------------------------------------------------------------
    # introspection / sizing
    # ------------------------------------------------------------------
    @property
    def state_count(self) -> int:
        return len(self._states)

    @property
    def transition_count(self) -> int:
        return self._transition_count

    def accepting_states(self) -> dict[int, list[AcceptEntry]]:
        return {
            state_id: state.accepts
            for state_id, state in enumerate(self._states)
            if state.accepts
        }

    def stored_bytes(self) -> int:
        """Serialized size estimate — the Figure 11 metric."""
        total = 0
        for state in self._states:
            total += 8  # state header
            for label in state.exact:
                total += len(label.encode()) + 5
            for label in state.desc_exact:
                total += len(label.encode()) + 5
            if state.star is not None:
                total += 5
            if state.desc_star is not None:
                total += 5
            total += 5 * len(state.any_to)
            if state.chain is not None:
                total += 5
            for entry in state.accepts:
                total += len(entry.view_id.encode()) + 10
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PathNFA states={self.state_count} "
            f"transitions={self.transition_count}>"
        )
