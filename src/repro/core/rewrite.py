"""Equivalent multiple-view rewriting (paper Section V, end to end).

Pipeline for an answerable query with a selected unit set:

1. **Refine** every unit's materialized fragments with its compensating
   pattern (:mod:`repro.core.refine` — "pushing selection").
2. **Join** the refined fragment roots holistically on their extended
   Dewey codes (:mod:`repro.core.twig_join`); the extraction unit is a
   Δ-provider, preferred by smallest fragment volume.
3. **Extract** the answers by evaluating the Δ-unit's compensating
   pattern (answer node marked) inside each surviving fragment.

Answers are reported as extended Dewey codes.  Fragments are stored
without per-node codes, but the extended Dewey assignment is
deterministic given the schema and sibling order — both preserved by
fragment serialization — so :func:`reencode_fragment` reconstructs every
descendant's code from the fragment root's code alone.  The end-to-end
result is *provably* the same node set as evaluating the query on the
base document, and the test suite checks exactly that equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RewritingError
from ..obs import SYSTEM_CLOCK, Clock, current_trace
from ..matching.evaluate import evaluate_relative
from ..storage.fragments import Fragment, FragmentStore
from ..xmltree.dewey import (
    DeweyCode,
    assign_child_component,
    pack_code,
    pack_component,
)
from ..xmltree.fst import FiniteStateTransducer
from ..xmltree.schema import DocumentSchema
from ..xmltree.tree import XMLNode
from ..xpath.pattern import TreePattern
from .leaf_cover import CoverageMemo
from .refine import RefinedUnit, compensation_plan, refine_unit
from .selection import Selection
from .twig_join import join_units

__all__ = ["RewriteResult", "reencode_fragment", "rewrite"]


@dataclass(slots=True)
class RewriteResult:
    """Outcome of a multiple-view rewriting.

    ``codes`` is the answer set (extended Dewey codes, sorted);
    ``answers`` maps each code to the answer node *inside its fragment*
    (a subtree copy, usable without base-data access).  The remaining
    fields expose what happened for inspection and benchmarks.
    """

    codes: list[DeweyCode]
    answers: dict[DeweyCode, XMLNode] = field(default_factory=dict)
    refined: list[RefinedUnit] = field(default_factory=list)
    extraction_view: str = ""
    joined_roots: int = 0


def reencode_fragment(
    root: XMLNode, root_code: DeweyCode, schema: DocumentSchema
) -> None:
    """Stamp extended Dewey codes onto a deserialized fragment.

    Because extended Dewey assignment is deterministic (smallest
    admissible component per sibling, in sibling order) and fragments
    preserve sibling order, the reconstructed codes equal the original
    document's codes.
    """
    root.dewey = root_code
    root.dewey_packed = pack_code(root_code)
    stack = [root]
    while stack:
        parent = stack.pop()
        previous: int | None = None
        for child in parent.children:
            component = assign_child_component(
                schema, parent.label, child.label, previous
            )
            previous = component
            assert parent.dewey is not None
            assert parent.dewey_packed is not None
            child.dewey = parent.dewey + (component,)
            child.dewey_packed = parent.dewey_packed + pack_component(component)
            stack.append(child)


def rewrite(
    selection: Selection,
    query: TreePattern,
    fragment_store: FragmentStore,
    schema: DocumentSchema,
    fst: FiniteStateTransducer,
    memo: CoverageMemo | None = None,
    query_key: str | None = None,
    stage_acc: dict[str, float] | None = None,
    clock: Clock | None = None,
) -> RewriteResult:
    """Run the full refine → join → extract pipeline.

    When ``memo`` and ``query_key`` are given (the system's hot path),
    each unit's compensating pattern and case-1 skip decision are
    served from / recorded in the memo instead of being re-derived —
    only valid when ``query`` is the memo's interned pattern for
    ``query_key`` and the units reference its nodes.

    ``stage_acc``, when given, receives cumulative wall-clock seconds
    under the keys ``refine`` / ``join`` / ``extract`` (the ``answer
    --profile`` plumbing), measured on ``clock`` (the system's
    injected time source; defaults to the real clock for direct
    library use); the empty-answer short-circuit skips the bookkeeping.
    """
    monotonic = (clock if clock is not None else SYSTEM_CLOCK).monotonic
    trace = current_trace()
    fragments_cache: dict[str, list[Fragment]] = {}

    def fragments_of(view_id: str) -> list[Fragment]:
        cached = fragments_cache.get(view_id)
        if cached is None:
            cached = fragment_store.fragments(view_id)
            fragments_cache[view_id] = cached
        return cached

    def plan_for(unit) -> tuple[TreePattern, bool]:
        if memo is None or query_key is None:
            return compensation_plan(unit, query)
        plan = memo.compensation(query_key, unit)
        if plan is None:
            plan = compensation_plan(unit, query)
            memo.record_compensation(query_key, unit, *plan)
        return plan

    refine_started = monotonic() if stage_acc is not None else 0.0
    with trace.span("refine", units=len(selection.units)):
        refined_units: list[RefinedUnit] = []
        for unit in selection.units:
            refined = refine_unit(
                unit, query, fragments_of(unit.view.view_id),
                plan=plan_for(unit),
            )
            if not refined.fragments:
                # Some required piece has no instances: the answer is
                # empty.
                return RewriteResult([], refined=refined_units + [refined])
            refined_units.append(refined)
    if stage_acc is not None:
        stage_acc["refine"] += monotonic() - refine_started

    delta_candidates = [
        refined for refined in refined_units if refined.unit.provides_delta
    ]
    if not delta_candidates:
        raise RewritingError(
            "selection has no Δ-providing unit; answerability check "
            "should have failed earlier"
        )
    extraction = min(
        delta_candidates,
        key=lambda refined: (
            fragment_store.fragment_bytes(refined.unit.view.view_id),
            refined.unit.view.view_id,
        ),
    )

    join_started = monotonic() if stage_acc is not None else 0.0
    with trace.span("twig_join") as join_span:
        surviving = join_units(refined_units, query, fst, extraction)
        join_span.attributes["surviving_roots"] = len(surviving)
        join_span.attributes["extraction_view"] = (
            extraction.unit.view.view_id
        )
    if stage_acc is not None:
        stage_acc["join"] += monotonic() - join_started
        extract_started = monotonic()

    by_packed = {
        fragment.packed: fragment for fragment in extraction.fragments
    }
    # Document-order sort on packed keys (flat byte comparison); the
    # packed form is unique per code, so the tuple is never compared.
    ordered: set[tuple[bytes, DeweyCode]] = set()
    answers: dict[DeweyCode, XMLNode] = {}
    with trace.span("extract") as extract_span:
        for packed_root in surviving:
            fragment = by_packed[packed_root]
            root = fragment.root
            if root.dewey != fragment.code:
                reencode_fragment(root, fragment.code, schema)
            for answer in evaluate_relative(
                extraction.pattern, root, fragment.subtree_index()
            ):
                assert answer.dewey is not None
                assert answer.dewey_packed is not None
                ordered.add((answer.dewey_packed, answer.dewey))
                answers[answer.dewey] = answer
        extract_span.attributes["answers"] = len(answers)
    if stage_acc is not None:
        stage_acc["extract"] += monotonic() - extract_started
    return RewriteResult(
        [code for _packed, code in sorted(ordered)],
        answers=answers,
        refined=refined_units,
        extraction_view=extraction.unit.view.view_id,
        joined_roots=len(surviving),
    )
