"""The full answering system (paper Figure 1).

:class:`MaterializedViewSystem` ties every component together over one
encoded document:

* **register views** — evaluate each view on the base data once and
  materialize its answer-node subtrees (with extended Dewey codes) into
  the fragment store, subject to the 128 KiB per-view cap; insert its
  decomposed path patterns into VFILTER.  Bulk registration
  (:meth:`register_views`) evaluates views in a process pool when one
  is available (:mod:`repro.core.parallel`).
* **answer queries** — filter (VFILTER), select (MN / MV / HV), rewrite
  (refine → holistic join → extract) using only materialized fragments
  and encodings; or fall back to the BN / BF base-data baselines.

The answering path is served through a :class:`~repro.core.plancache.PlanCache`
(warm repeats of a query skip filtering, homomorphism enumeration and
set cover entirely) and a shared :class:`~repro.core.leaf_cover.CoverageMemo`
(MN/MV/HV/CB and the rewrite stage share one coverage computation per
``(view, query)`` pair).  ``stats()`` exposes hit/miss counters and
per-stage timings.

**Epoch snapshots.**  The registry state a query depends on — view
catalog, materialized pool, VFILTER, plan cache — lives in one
immutable :class:`RegistryEpoch` published through ``self._epoch``.
Readers pin the epoch once at ``answer()`` entry and never look at
mutable registry state again, so concurrent registrations can never
tear a half-updated view pool through an in-flight query:
``register_view`` / ``reopen`` / eviction build the *next* epoch beside
the current one (copy-on-write; VFILTER grows by an immutable layer,
see :class:`~repro.core.vfilter.LayeredVFilter`) and publish it with a
single reference swap.  Every answer is therefore byte-identical to a
serial execution against the consistent registry state of its pinned
epoch.  In-place document maintenance is the one exception — it cannot
be snapshotted and requires external exclusion (the service layer's
engine drains readers first; single-threaded library use needs
nothing).

This is the object the examples and benchmarks drive.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable

from . import contracts
from ..errors import ViewNotAnswerableError
from ..obs import Telemetry, current_trace
from ..matching.evaluate import evaluate
from ..storage.fragments import DEFAULT_FRAGMENT_CAP, FragmentStore
from ..storage.index import DeweyStreamIndex, FullPathIndex, NodeIndex
from ..storage.kvstore import KVStore
from ..xmltree.builder import EncodedDocument
from ..xmltree.dewey import DeweyCode
from ..xmltree.tree import XMLNode
from ..xpath.parser import parse_xpath
from ..xpath.pattern import TreePattern
from .contained import ContainedResult, maximal_contained_rewriting
from .leaf_cover import CoverageMemo, CoverageUnit
from .parallel import MIN_PARALLEL_VIEWS, default_workers, evaluate_views_parallel
from .plancache import (
    DEFAULT_PLAN_CACHE_SIZE,
    PlanCache,
    PlanCacheStats,
    PlanEntry,
)
from .rewrite import RewriteResult, rewrite
from .selection import (
    Selection,
    UnitsFn,
    select_cost_based,
    select_heuristic,
    select_minimum,
)
from .vfilter import FilterResult, LayeredVFilter
from .view import View

__all__ = ["AnswerOutcome", "MaterializedViewSystem", "RegistryEpoch"]

#: Selection strategies accepted by :meth:`MaterializedViewSystem.answer`.
_STRATEGIES = ("HV", "MV", "MN", "CB")

#: Every stage key ``stats()["stage_seconds"]`` reports (coarse answer
#: phases first, then the fine-grained cold-path breakdown).
_STAGE_NAMES = (
    "parse", "lookup", "rewrite",
    "vfilter", "cover", "selection", "refine", "join", "extract",
)

#: Collapse the layered VFILTER back into one monolithic automaton once
#: this many single-view delta layers have accumulated (bounds per-query
#: filter overhead at ~K cheap layer probes while keeping bulk
#: registration linear instead of quadratic).
_REBUILD_DELTAS = 24


@dataclass(frozen=True, slots=True)
class RegistryEpoch:
    """One immutable published state of the view registry.

    Everything a reader needs hangs off the epoch: the view catalog
    (``views`` — built copy-on-write, never mutated after publication),
    the answerable pool in registration order, the layered VFILTER and
    the epoch's own plan cache.  A query pins one epoch at entry and is
    thereby isolated from every later registration; cached plans can
    never leak across registry states because each epoch gets a fresh
    cache (``seq`` increases monotonically with each publication).
    """

    seq: int
    views: dict[str, View]
    materialized: tuple[View, ...]
    vfilter: LayeredVFilter
    plan_cache: PlanCache


def _sorted_codes(answers: Iterable[XMLNode]) -> list[DeweyCode]:
    """Answer extraction shared by the baselines and ground truth:
    the Dewey codes of every encoded answer node, in document order.
    Sorts on the packed byte key (flat comparison; unique per code, so
    the tuple itself is never compared)."""
    keyed = sorted(
        (node.dewey_packed, node.dewey)
        for node in answers
        if node.dewey is not None and node.dewey_packed is not None
    )
    return [code for _packed, code in keyed]


@dataclass(slots=True)
class AnswerOutcome:
    """Everything about one answered query.

    ``codes`` is the answer set; ``lookup_seconds`` covers filtering +
    selection (the paper's Figure 9 metric), ``total_seconds`` the whole
    pipeline (Figure 8).  ``selection`` / ``rewrite_result`` expose the
    intermediate artifacts.  ``plan_cache_hit`` marks answers served
    from a cached plan; ``stage_seconds`` breaks the call down into
    ``parse`` / ``lookup`` / ``rewrite``.  ``epoch_seq`` is the
    sequence number of the registry epoch the answer was derived
    against (the service layer's linearization point).
    """

    codes: list[DeweyCode]
    strategy: str
    selection: Selection | None = None
    rewrite_result: RewriteResult | None = None
    filter_result: FilterResult | None = None
    lookup_seconds: float = 0.0
    total_seconds: float = 0.0
    candidates: list[str] = field(default_factory=list)
    plan_cache_hit: bool = False
    stage_seconds: dict[str, float] = field(default_factory=dict)
    epoch_seq: int = -1

    @property
    def view_ids(self) -> list[str]:
        return self.selection.view_ids if self.selection else []


class MaterializedViewSystem:
    """Answer XPath queries from multiple materialized views."""

    def __init__(
        self,
        document: EncodedDocument,
        fragment_cap: int = DEFAULT_FRAGMENT_CAP,
        store: KVStore | None = None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        cache_results: bool = True,
        telemetry: Telemetry | None = None,
    ):
        #: state: hard
        self.document = document
        #: state: soft(derived-from=document?; rebuild=_admit_view)
        self.fragments = FragmentStore(store, cap_bytes=fragment_cap)
        self._plan_cache_size = plan_cache_size  #: state: hard
        self._cache_results = cache_results  #: state: hard
        #: state: soft(derived-from=document?; rebuild=intern)
        self._memo = CoverageMemo()
        #: The telemetry bundle every component of this system reports
        #: into; the service layer reuses it so scheduler counters and
        #: derivation histograms share one registry (and one clock).
        #: state: counter
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.create()
        )
        self._clock = self.telemetry.clock  #: state: hard
        #: guarded-by: _index_lock (writes)
        #: state: soft(derived-from=document; rebuild=_ensure_node_index)
        self._node_index: NodeIndex | None = None
        #: guarded-by: _index_lock (writes)
        #: state: soft(derived-from=document; rebuild=_ensure_path_index)
        self._path_index: FullPathIndex | None = None
        #: guarded-by: _index_lock (writes)
        #: state: soft(derived-from=document; rebuild=_ensure_stream_index)
        self._stream_index: DeweyStreamIndex | None = None
        #: Serialises every registry mutation (registration, eviction,
        #: maintenance).  Readers never take it: they pin ``_epoch``.
        #: Materialisation does store I/O under it by design — the
        #: mutation path is the slow path.
        #: lock: blocking-allowed
        self._mutate_lock = threading.RLock()
        #: Guards the scalar counters and the epoch/stats-base pairing.
        self._stats_lock = threading.Lock()
        #: Guards lazy construction of the BN/BF baseline indexes.
        self._index_lock = threading.Lock()
        #: Cumulative plan-cache counters of every retired epoch.
        #: guarded-by: _stats_lock
        #: state: counter
        self._plan_stats_base = PlanCacheStats()
        #: guarded-by: _mutate_lock (writes, pin-once)
        #: state: soft(derived-from=document?; rebuild=_publish)
        self._epoch = RegistryEpoch(
            seq=0,
            views={},
            materialized=(),
            vfilter=LayeredVFilter.build([]),
            plan_cache=PlanCache(plan_cache_size),
        )
        # Operational counters live in the telemetry registry — the
        # `/metrics` endpoint and stats() read the same cells, so the
        # two can never disagree.  Each metric carries its own leaf
        # lock; none is ever taken while holding another metric's.
        registry = self.telemetry.registry
        #: state: counter
        self._stage_hist = registry.histogram(
            "repro_stage_seconds",
            "Seconds spent in each answering pipeline stage.",
            ("stage",),
        )
        #: state: counter
        self._answer_hist = registry.histogram(
            "repro_answer_seconds",
            "End-to-end answer() latency (post-parse), by cache outcome.",
            ("cache",),
        )
        #: state: counter
        self._answers_total = registry.counter(
            "repro_answers_total",
            "answer() calls, by strategy and plan-cache outcome "
            "(unanswerable queries are counted too).",
            ("strategy", "cache"),
        )
        #: state: counter
        self._registrations_total = registry.counter(
            "repro_views_registered_total",
            "View registrations, by evaluation mode.",
            ("mode",),
        )
        #: state: counter
        self._epoch_swaps_total = registry.counter(
            "repro_epoch_swaps_total",
            "Registry epoch publications (registration, eviction, reopen).",
        )
        registry.gauge(
            "repro_epoch_seq",
            "Sequence number of the published registry epoch.",
            fn=lambda: float(self._epoch.seq),
        )
        registry.gauge(
            "repro_views_materialized",
            "Views currently in the answerable pool.",
            fn=lambda: float(len(self._epoch.materialized)),
        )
        registry.gauge(
            "repro_plan_cache_hits",
            "Cumulative plan-cache hits across epochs.",
            fn=lambda: float(self._plan_counters()[1]["hits"]),
        )
        registry.gauge(
            "repro_plan_cache_misses",
            "Cumulative plan-cache misses across epochs.",
            fn=lambda: float(self._plan_counters()[1]["misses"]),
        )
        registry.gauge(
            "repro_plan_cache_entries",
            "Cached plans in the live epoch.",
            fn=lambda: float(self._plan_counters()[1]["entries"]),
        )
        registry.gauge(
            "repro_nfa_reads_compiled",
            "VFILTER token-stream reads served by compiled DFA tables "
            "(live epoch's layers).",
            fn=lambda: float(
                self._epoch.vfilter.compiled_stats()["reads_compiled"]
            ),
        )
        registry.gauge(
            "repro_nfa_reads_simulated",
            "VFILTER token-stream reads that fell back to NFA set "
            "simulation (live epoch's layers).",
            fn=lambda: float(
                self._epoch.vfilter.compiled_stats()["reads_simulated"]
            ),
        )

    # ------------------------------------------------------------------
    # epoch plumbing
    # ------------------------------------------------------------------
    def current_epoch(self) -> RegistryEpoch:
        """The currently published registry epoch (pin it to answer a
        batch of queries against one consistent state)."""
        return self._epoch

    @property
    def vfilter(self) -> LayeredVFilter:
        """The current epoch's filter (read-only snapshot)."""
        return self._epoch.vfilter

    @property
    def _views(self) -> dict[str, View]:
        """The current epoch's view catalog.  Treat as immutable: it is
        shared with published epochs and replaced, never mutated."""
        return self._epoch.views

    @property
    def _materialized(self) -> list[View]:
        """The current epoch's answerable pool (a fresh list)."""
        return list(self._epoch.materialized)

    @property
    def _plan_cache(self) -> PlanCache:
        return self._epoch.plan_cache

    def _publish(
        self,
        views: dict[str, View],
        materialized: tuple[View, ...],
        vfilter: LayeredVFilter,
    ) -> None:
        """Swap in the next epoch (callers hold ``_mutate_lock``).

        The retiring epoch's plan-cache counters are folded into the
        cumulative base under the stats lock together with the epoch
        swap itself, so :meth:`stats` never double- or under-counts a
        cache that is mid-retirement.  Readers that pinned the retiring
        epoch keep using it untouched — publication never blocks them.

        The incoming filter's transition tables are compiled here, at
        publish time, so cold queries against the new epoch take the
        one-probe-per-token path instead of NFA set simulation.  Layers
        shared with the retiring epoch keep their existing tables
        (compilation is an idempotent per-layer cache).
        """
        with current_trace().span("epoch_publish") as span:
            vfilter.precompile()
            retiring = self._epoch
            with self._stats_lock:
                self._plan_stats_base.absorb(
                    PlanCacheStats(**retiring.plan_cache.stats_dict())
                )
                self._epoch = RegistryEpoch(
                    seq=retiring.seq + 1,
                    views=views,
                    materialized=materialized,
                    vfilter=vfilter,
                    plan_cache=PlanCache(self._plan_cache_size),
                )
            span.attributes["seq"] = retiring.seq + 1
        self._epoch_swaps_total.inc()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    #: state: mutator
    def register_view(self, view_id: str, expression: str | TreePattern) -> bool:
        """Materialize a view; returns False when the 128 KiB cap was hit
        (the view is then excluded from answering, as in the paper)."""
        if isinstance(expression, TreePattern):
            view = View(view_id, expression)
        else:
            view = View.from_xpath(view_id, expression)
        with self._mutate_lock:
            if view.view_id in self._views:
                raise ValueError(f"duplicate view id {view_id!r}")
            answers = evaluate(view.pattern, self.document.tree)
            entries = [
                (node.dewey, node)
                for node in answers
                if node.dewey is not None
            ]
            fits = self.fragments.materialize(view_id, entries)
            # Counted only after _admit_view has invalidated + published
            # (its raise paths must not sit inside the mutation window).
            admitted = self._admit_view(view, fits)
            self._registrations_total.inc(1.0, "serial")
            return admitted

    def _admit_view(self, view: View, fits: bool) -> bool:
        """Shared tail of serial and parallel registration: drop stale
        plans, then stage and publish the next epoch with the view
        cataloged, its definition persisted and VFILTER extended.

        Invalidation runs *first*: the plan cache only refills through
        ``answer()``, so one drop covers every mutation of this call,
        and an exception from persistence or VFILTER extension cannot
        leave cached plans derived from the pre-registration state
        (xmvrlint L7).  In-flight readers pinned to the previous epoch
        are untouched — they never see the half-built successor.
        """
        with self._mutate_lock:
            self._invalidate_plans()
            epoch = self._epoch
            views = dict(epoch.views)
            views[view.view_id] = view
            self._persist_definition(view)
            materialized = epoch.materialized
            vfilter = epoch.vfilter
            if fits:
                materialized = materialized + (view,)
                vfilter = vfilter.with_view(view)
                if vfilter.delta_count >= _REBUILD_DELTAS:
                    vfilter = vfilter.collapsed()
            self._publish(views, materialized, vfilter)
            return fits

    #: state: mutator
    def register_views(
        self,
        expressions: dict[str, str | TreePattern],
        workers: int | None = None,
    ) -> list[str]:
        """Register many views; returns the ids that materialized fully.

        With ``workers >= 2`` (default: the machine's CPU count, capped
        by ``REPRO_REGISTER_WORKERS``) and enough views to amortize pool
        startup, view patterns are evaluated against the base tree in a
        process pool; the serial path is used otherwise, or when the
        pool cannot be created (sandboxes without fork support).  Both
        paths produce byte-identical fragment stores.
        """
        items = list(expressions.items())
        if workers is None:
            workers = default_workers()
        with self._mutate_lock:
            if workers >= 2 and len(items) >= MIN_PARALLEL_VIEWS:
                prepared = self._prepare_views(items)
                payload = [
                    (view.view_id, view.to_xpath()) for view in prepared
                ]
                try:
                    encoded = evaluate_views_parallel(
                        self.document,
                        payload,
                        self.fragments.cap_bytes,
                        workers,
                    )
                except Exception:
                    # Pool unavailable or died mid-evaluation.  The pool
                    # work is pure — nothing has been admitted yet — so
                    # the serial path below starts from a clean slate.
                    # (The admission loop is deliberately *outside* this
                    # try: a failure there leaves views registered, and
                    # retrying serially would double-register them.)
                    encoded = None
                if encoded is not None:
                    return self._admit_encoded(prepared, encoded)
            return [
                view_id
                for view_id, expression in items
                if self.register_view(view_id, expression)
            ]

    def _prepare_views(
        self, items: list[tuple[str, str | TreePattern]]
    ) -> list[View]:
        """Parse the batch and reject duplicate ids before any work."""
        prepared: list[View] = []
        for view_id, expression in items:
            if isinstance(expression, TreePattern):
                view = View(view_id, expression)
            else:
                view = View.from_xpath(view_id, expression)
            if view.view_id in self._views:
                raise ValueError(f"duplicate view id {view_id!r}")
            prepared.append(view)
        return prepared

    def _admit_encoded(
        self, prepared: list[View], encoded: dict[str, list[bytes] | None]
    ) -> list[str]:
        # Invalidate up front: one drop covers the whole batch (the
        # cache refills only via answer()), and a failure mid-batch
        # cannot leave plans derived from the pre-registration state
        # (xmvrlint L1/L7).  Each admission publishes its own epoch, so
        # a mid-batch failure leaves every fully admitted view visible
        # and nothing half-registered.
        with self._mutate_lock:
            self._invalidate_plans()
            registered: list[str] = []
            for view in prepared:
                fits = self.fragments.materialize_encoded(
                    view.view_id, encoded[view.view_id]
                )
                if self._admit_view(view, fits):
                    registered.append(view.view_id)
            self._registrations_total.inc(float(len(prepared)), "parallel")
            return registered

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    _DEFINITION_PREFIX = b"d:"

    def _persist_definition(self, view: View) -> None:
        from ..storage.serialize import encode_text

        key = self._DEFINITION_PREFIX + view.view_id.encode()
        self.fragments.store.put(key, encode_text(view.to_xpath()))

    @classmethod
    def reopen(
        cls,
        document: EncodedDocument,
        store: KVStore,
        fragment_cap: int = DEFAULT_FRAGMENT_CAP,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        cache_results: bool = True,
    ) -> "MaterializedViewSystem":
        """Rebuild a system from a store written in an earlier session.

        Fragments are *not* re-materialized: view definitions and
        manifests are read back, VFILTER is reconstructed from the
        definitions, and capped views stay excluded — the same state as
        after the original ``register_view`` calls, minus the base-data
        evaluation cost.  Plan cache and memo start empty (they are
        in-memory artifacts of one session).  The rebuilt registry is
        staged off to the side and published as one epoch, so a reader
        handed the system object mid-reopen would see either the empty
        initial epoch or the complete catalog, never a prefix.
        """
        from ..storage.serialize import decode_text

        system = cls(
            document,
            fragment_cap=fragment_cap,
            store=store,
            plan_cache_size=plan_cache_size,
            cache_results=cache_results,
        )
        definitions: dict[str, str] = {}
        for key, value in store.scan_prefix(cls._DEFINITION_PREFIX):
            view_id = key[len(cls._DEFINITION_PREFIX):].decode()
            expression, _ = decode_text(value, 0)
            definitions[view_id] = expression
        views: dict[str, View] = {}
        materialized: list[View] = []
        for view_id in sorted(definitions):
            view = View.from_xpath(view_id, definitions[view_id])
            views[view_id] = view
            if system.fragments.is_materialized(view_id):
                materialized.append(view)
        with system._mutate_lock:
            # Invalidate-first like every other mutator (a no-op on the
            # fresh system, but it keeps the uniform L7 discipline: an
            # exception out of the filter build cannot strand plans).
            system._invalidate_plans()
            system._publish(
                views, tuple(materialized), LayeredVFilter.build(materialized)
            )
        return system

    @property
    def view_count(self) -> int:
        return len(self._epoch.materialized)

    def view(self, view_id: str) -> View:
        return self._epoch.views[view_id]

    def materialized_views(self) -> list[View]:
        return list(self._epoch.materialized)

    def _evict_materialized(self, view_ids: Iterable[str]) -> None:
        """Remove views from the answerable pool (they stay cataloged)
        and publish an epoch with a rebuilt monolithic VFILTER.  Used
        by document maintenance when a refreshed view outgrows the
        fragment cap or fails to re-materialize.
        """
        with self._mutate_lock:
            self._invalidate_plans()
            epoch = self._epoch
            gone = set(view_ids)
            materialized = tuple(
                view
                for view in epoch.materialized
                if view.view_id not in gone
            )
            vfilter = LayeredVFilter.build(
                list(materialized), epoch.vfilter.attribute_pruning
            )
            self._publish(epoch.views, materialized, vfilter)

    # ------------------------------------------------------------------
    # plan cache plumbing
    # ------------------------------------------------------------------
    def _invalidate_plans(
        self, affected: Iterable[str] | None = None
    ) -> tuple[int, int]:
        """Drop cached plans after a view-pool or document mutation.

        Called by :meth:`register_view` / :meth:`register_views` (no
        argument — blanket clear, and the publish that follows retires
        the cleared cache wholesale) and by
        :class:`~repro.delta.maintenance.DocumentEditor` on edits, which
        passes the affected view ids so only the plans depending on one
        of them — plus plans with no recorded filter provenance — are
        dropped (:meth:`PlanCache.invalidate_views`); everything else
        stays warm across the edit.  Returns ``(dropped, retained)``.

        The coverage memo carries over epoch swaps: coverage is a pure
        function of the view and query patterns, so registration never
        evicts it; maintenance separately evicts the entries of the
        views it touches
        (:meth:`~repro.core.leaf_cover.CoverageMemo.evict_views`).
        """
        epoch = self._epoch
        if affected is None:
            return epoch.plan_cache.clear(), 0
        return epoch.plan_cache.invalidate_views(affected)

    def _plan_counters(self) -> tuple[RegistryEpoch, dict[str, int]]:
        """Pin one epoch and assemble its cumulative plan-cache
        counters *atomically*: the epoch reference, the retired-epoch
        base and the live cache's counters + entry count are all
        captured inside one ``_stats_lock`` hold (the live cache is
        read via :meth:`PlanCache.snapshot`, one lock hold on its
        side), so no concurrent epoch swap can pair counters from one
        epoch with the seq or entry count of another."""
        with self._stats_lock:
            epoch = self._epoch
            plan: dict[str, int] = self._plan_stats_base.as_dict()
            live, entries = epoch.plan_cache.snapshot()
        for key, value in live.items():
            plan[key] += value
        plan["entries"] = entries
        plan["maxsize"] = epoch.plan_cache.maxsize
        return epoch, plan

    def stats(self) -> dict[str, object]:
        """Operational counters for the answering hot path.

        Returns a *deep snapshot* assembled from the telemetry
        registry (the same cells ``/metrics`` exposes — there is no
        parallel bookkeeping to drift): every nested dict is freshly
        built, so a caller (the service ``/stats`` endpoint, a test)
        can hold or mutate the result while serving continues.
        Plan-cache counters are cumulative across epochs — the retired
        epochs' folded base plus the live cache — and are captured
        atomically with the reported ``epoch`` seq.
        """
        epoch, plan = self._plan_counters()
        answers_snap = self._answers_total.snapshot()
        answers = int(sum(s.value for s in answers_snap.samples))
        warm_hits = int(sum(
            s.value
            for s in answers_snap.samples
            if ("cache", "warm") in s.labels
        ))
        stage = {name: 0.0 for name in _STAGE_NAMES}
        for key, total in self._stage_hist.sums().items():
            stage[key[0]] = total
        return {
            "views": {
                "registered": len(epoch.views),
                "materialized": len(epoch.materialized),
                "registered_parallel": int(
                    self._registrations_total.value("parallel")
                ),
                "registered_serial": int(
                    self._registrations_total.value("serial")
                ),
            },
            "plan_cache": plan,
            "vfilter": epoch.vfilter.compiled_stats(),
            "coverage_memo": self._memo.stats(),
            "answers": answers,
            "warm_hits": warm_hits,
            "epoch": epoch.seq,
            "stage_seconds": stage,
            "maintenance": self._maintenance_stats(),
        }

    def _maintenance_stats(self) -> dict[str, dict[str, float]]:
        """Maintenance counter/histogram cells from the registry, keyed
        by metric name then joined label values (empty before the first
        edit — the editor creates the cells lazily)."""
        section: dict[str, dict[str, float]] = {}
        for snap in self.telemetry.registry.collect():
            if not snap.name.startswith("repro_maintenance"):
                continue
            cells: dict[str, float] = {}
            if snap.kind == "counter":
                for sample in snap.samples:
                    label = "|".join(value for _, value in sample.labels)
                    cells[label or "total"] = sample.value
            elif snap.kind == "histogram":
                for sample in snap.samples:
                    if not sample.name.endswith("_sum"):
                        continue
                    label = "|".join(value for _, value in sample.labels)
                    cells[label or "total"] = sample.value
            else:
                continue
            section[snap.name] = cells
        return section

    # ------------------------------------------------------------------
    # answering with views
    # ------------------------------------------------------------------
    def answer(
        self,
        query: str | TreePattern,
        strategy: str = "HV",
        *,
        epoch: RegistryEpoch | None = None,
    ) -> AnswerOutcome:
        """Answer ``query`` from materialized views.

        ``strategy`` is ``"HV"`` (heuristic + VFILTER), ``"MV"``
        (minimum + VFILTER), ``"MN"`` (minimum, no VFILTER) or ``"CB"``
        (cost model + VFILTER, the extension the paper sketches).  Raises
        :class:`~repro.errors.ViewNotAnswerableError` when the
        materialized views cannot answer the query.

        Repeated queries (same canonical pattern, same strategy) are
        served from the plan cache until the next view registration or
        maintenance update.

        The registry ``epoch`` is pinned once at entry (or passed in by
        a caller that wants several queries against one consistent
        state); everything downstream — filter, catalog lookups, plan
        cache — reads only the pinned epoch, so a concurrent
        registration can never tear this answer.
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; use {_STRATEGIES}")
        trace = current_trace()
        with trace.span("answer", strategy=strategy) as root:
            entered = self._clock.monotonic()
            with trace.span("parse"):
                pattern = (
                    parse_xpath(query) if isinstance(query, str) else query
                )
                query_key = pattern.canonical_string()
            started = self._clock.monotonic()
            if epoch is None:
                epoch = self._epoch
            self._stage_hist.observe(started - entered, "parse")
            root.attributes["query"] = query_key
            root.attributes["epoch"] = epoch.seq

            entry = (
                epoch.plan_cache.get(query_key, strategy)
                if epoch.plan_cache.enabled
                else None
            )
            root.attributes["cache"] = "warm" if entry is not None else "cold"
            if entry is not None:
                return self._answer_warm(
                    entry, strategy, query_key, entered, started, epoch
                )
            return self._answer_cold(
                pattern, strategy, query_key, entered, started, epoch
            )

    def _derive_selection(
        self,
        pattern: TreePattern,
        strategy: str,
        units_fn: UnitsFn | None = None,
        epoch: RegistryEpoch | None = None,
        stage_acc: dict[str, float] | None = None,
    ) -> tuple[FilterResult | None, Selection]:
        """Filter + select for one query: the plan-derivation core.

        With ``units_fn=None`` every coverage computation runs fresh
        (no :class:`CoverageMemo`), which is what the contract layer
        needs to cross-check cached plans against first principles —
        it passes the epoch the cached plan was derived against, so the
        cross-check is immune to registrations that landed since.

        ``stage_acc`` receives cumulative ``vfilter`` / ``selection``
        seconds; coverage time accumulated by ``units_fn`` into
        ``stage_acc["cover"]`` during selection is subtracted back out
        of ``selection``, so the two stages never double-count.
        """
        if epoch is None:
            epoch = self._epoch

        def timed_selection(run: "Callable[[], Selection]") -> Selection:
            with current_trace().span("selection", strategy=strategy):
                if stage_acc is None:
                    return run()
                cover_before = stage_acc.get("cover", 0.0)
                started = self._clock.monotonic()
                selection = run()
                elapsed = self._clock.monotonic() - started
                cover_delta = stage_acc.get("cover", 0.0) - cover_before
                stage_acc["selection"] += elapsed - cover_delta
                return selection

        if strategy == "MN":
            return None, timed_selection(lambda: select_minimum(
                list(epoch.materialized),
                pattern,
                self.fragments.fragment_bytes,
                units_fn=units_fn,
            ))
        filter_started = (
            self._clock.monotonic() if stage_acc is not None else 0.0
        )
        with current_trace().span("vfilter") as span:
            filter_result = epoch.vfilter.filter(pattern)
            span.attributes["candidates"] = len(filter_result.candidates)
        if stage_acc is not None:
            stage_acc["vfilter"] += self._clock.monotonic() - filter_started
        if strategy in ("MV", "CB"):
            candidates = [
                epoch.views[view_id] for view_id in filter_result.candidates
            ]
            selector = select_minimum if strategy == "MV" else select_cost_based
            selection = timed_selection(lambda: selector(
                candidates,
                pattern,
                self.fragments.fragment_bytes,
                units_fn=units_fn,
            ))
        else:
            selection = timed_selection(lambda: select_heuristic(
                filter_result,
                epoch.views.__getitem__,
                pattern,
                self.fragments.fragment_bytes,
                units_fn=units_fn,
            ))
        return filter_result, selection

    def _answer_cold(
        self,
        pattern: TreePattern,
        strategy: str,
        query_key: str,
        entered: float,
        started: float,
        epoch: RegistryEpoch,
    ) -> AnswerOutcome:
        pattern = self._memo.intern(query_key, pattern)
        stage_acc = {
            "vfilter": 0.0, "cover": 0.0, "selection": 0.0,
            "refine": 0.0, "join": 0.0, "extract": 0.0,
        }

        def units_fn(view: View) -> list[CoverageUnit]:
            cover_started = self._clock.monotonic()
            units = self._memo.units(view, query_key, pattern)
            stage_acc["cover"] += self._clock.monotonic() - cover_started
            return units

        try:
            filter_result, selection = self._derive_selection(
                pattern, strategy, units_fn=units_fn, epoch=epoch,
                stage_acc=stage_acc,
            )
        except ViewNotAnswerableError as error:
            epoch.plan_cache.put(
                query_key,
                strategy,
                PlanEntry(pattern, None, None, error=error),
            )
            self._answers_total.inc(1.0, strategy, "cold")
            for stage, seconds in stage_acc.items():
                self._stage_hist.observe(seconds, stage)
            raise
        if contracts.enabled():
            context = f"answer({query_key!r}, {strategy})"
            contracts.check_selection_covers(selection, pattern, context)
            if filter_result is not None:
                contracts.check_vfilter_sound(
                    pattern, filter_result, list(epoch.materialized), context
                )
        lookup_done = self._clock.monotonic()

        with current_trace().span("rewrite") as span:
            result = rewrite(
                selection,
                pattern,
                self.fragments,
                self.document.schema,
                self.document.fst,
                memo=self._memo,
                query_key=query_key,
                stage_acc=stage_acc,
                clock=self._clock,
            )
            span.attributes["views"] = list(selection.view_ids)
            span.attributes["answers"] = len(result.codes)
        finished = self._clock.monotonic()

        if contracts.enabled():
            contracts.check_document_order(
                result.codes, f"answer({query_key!r}, {strategy})"
            )

        entry = PlanEntry(pattern, filter_result, selection)
        if self._cache_results:
            entry.result = result
        epoch.plan_cache.put(query_key, strategy, entry)

        self._answers_total.inc(1.0, strategy, "cold")
        self._answer_hist.observe(finished - started, "cold")
        self._stage_hist.observe(lookup_done - started, "lookup")
        self._stage_hist.observe(finished - lookup_done, "rewrite")
        for stage, seconds in stage_acc.items():
            self._stage_hist.observe(seconds, stage)
        return AnswerOutcome(
            codes=list(result.codes),
            strategy=strategy,
            selection=selection,
            rewrite_result=result,
            filter_result=filter_result,
            lookup_seconds=lookup_done - started,
            total_seconds=finished - started,
            candidates=filter_result.candidates if filter_result else [],
            plan_cache_hit=False,
            stage_seconds={
                "parse": started - entered,
                "lookup": lookup_done - started,
                "rewrite": finished - lookup_done,
                **stage_acc,
            },
            epoch_seq=epoch.seq,
        )

    def _answer_warm(
        self,
        entry: PlanEntry,
        strategy: str,
        query_key: str,
        entered: float,
        started: float,
        epoch: RegistryEpoch,
    ) -> AnswerOutcome:
        self._answers_total.inc(1.0, strategy, "warm")
        if contracts.enabled():
            warm_index = int(sum(
                s.value
                for s in self._answers_total.snapshot().samples
                if ("cache", "warm") in s.labels
            )) - 1
        else:
            warm_index = -1
        if warm_index >= 0 and (
            warm_index % contracts.sample_every() == 0
        ):
            # Before trusting the cached plan (including a cached
            # failure), re-derive it from first principles on a sampled
            # fraction of warm hits — against the same pinned epoch, so
            # concurrent registrations cannot fake a stale-plan report.
            contracts.check_plan_consistency(
                self, entry, strategy,
                f"answer({query_key!r}, {strategy}) [warm]",
                epoch=epoch,
            )
        if entry.error is not None:
            raise entry.replay_error()
        assert entry.selection is not None
        lookup_done = self._clock.monotonic()

        result = entry.result
        if result is None:
            with current_trace().span("rewrite"):
                result = rewrite(
                    entry.selection,
                    entry.pattern,
                    self.fragments,
                    self.document.schema,
                    self.document.fst,
                    memo=self._memo,
                    query_key=query_key,
                    clock=self._clock,
                )
            if self._cache_results:
                entry.result = result
        if contracts.enabled():
            contracts.check_document_order(
                result.codes, f"answer({query_key!r}, {strategy}) [warm]"
            )
        finished = self._clock.monotonic()

        self._answer_hist.observe(finished - started, "warm")
        self._stage_hist.observe(lookup_done - started, "lookup")
        self._stage_hist.observe(finished - lookup_done, "rewrite")
        return AnswerOutcome(
            codes=list(result.codes),
            strategy=strategy,
            selection=entry.selection,
            rewrite_result=result,
            filter_result=entry.filter_result,
            lookup_seconds=lookup_done - started,
            total_seconds=finished - started,
            candidates=(
                entry.filter_result.candidates if entry.filter_result else []
            ),
            plan_cache_hit=True,
            stage_seconds={
                "parse": started - entered,
                "lookup": lookup_done - started,
                "rewrite": finished - lookup_done,
            },
            epoch_seq=epoch.seq,
        )

    def try_answer(
        self, query: str | TreePattern, strategy: str = "HV"
    ) -> AnswerOutcome | None:
        """Like :meth:`answer` but returns ``None`` when unanswerable."""
        try:
            return self.answer(query, strategy)
        except ViewNotAnswerableError:
            return None

    # ------------------------------------------------------------------
    # base-data baselines
    # ------------------------------------------------------------------
    def _ensure_node_index(self) -> NodeIndex:
        """Build the BN index once; double-checked under a lock so two
        concurrent baseline calls never build (or half-publish) it
        twice."""
        index = self._node_index
        if index is None:
            with self._index_lock:
                index = self._node_index
                if index is None:
                    index = NodeIndex(self.document.tree)
                    self._node_index = index
        return index

    def _ensure_path_index(self) -> FullPathIndex:
        index = self._path_index
        if index is None:
            with self._index_lock:
                index = self._path_index
                if index is None:
                    index = FullPathIndex(self.document.tree)
                    self._path_index = index
        return index

    def _ensure_stream_index(self) -> DeweyStreamIndex:
        """Packed per-label Dewey streams for the TJ baseline (built
        once, invalidated by document maintenance)."""
        index = self._stream_index
        if index is None:
            with self._index_lock:
                index = self._stream_index
                if index is None:
                    index = DeweyStreamIndex(self.document.tree)
                    self._stream_index = index
        return index

    def answer_bn(self, query: str | TreePattern) -> AnswerOutcome:
        """BN: evaluate on base data with the basic node index."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        index = self._ensure_node_index()
        started = self._clock.monotonic()
        answers = index.evaluate(pattern)
        finished = self._clock.monotonic()
        return AnswerOutcome(
            _sorted_codes(answers), "BN", total_seconds=finished - started
        )

    def answer_bf(self, query: str | TreePattern) -> AnswerOutcome:
        """BF: evaluate on base data with the full path index."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        index = self._ensure_path_index()
        started = self._clock.monotonic()
        answers = index.evaluate(pattern)
        finished = self._clock.monotonic()
        return AnswerOutcome(
            _sorted_codes(answers), "BF", total_seconds=finished - started
        )

    def answer_contained(self, query: str | TreePattern) -> ContainedResult:
        """Maximal contained rewriting (paper future work).

        Returns every *certain* answer obtainable from the materialized
        views — a subset of the true answer set, exact when some view
        answers the query equivalently.  Never raises
        :class:`~repro.errors.ViewNotAnswerableError`; an empty result
        simply means no view contributes.
        """
        pattern = parse_xpath(query) if isinstance(query, str) else query
        return maximal_contained_rewriting(
            list(self._epoch.materialized),
            pattern,
            self.fragments,
            self.document.schema,
            self.document.fst,
        )

    def answer_tj(self, query: str | TreePattern) -> AnswerOutcome:
        """TJ: TJFast-style evaluation from leaf streams + encodings.

        Reads only the Dewey-code streams of the query's leaf labels —
        the base-data counterpart of the multi-view join (paper [22]).
        """
        from ..matching.tjfast import tjfast_evaluate

        pattern = parse_xpath(query) if isinstance(query, str) else query
        index = self._ensure_stream_index()
        started = self._clock.monotonic()
        codes = sorted(tjfast_evaluate(pattern, self.document, index))
        finished = self._clock.monotonic()
        return AnswerOutcome(codes, "TJ", total_seconds=finished - started)

    def direct_codes(self, query: str | TreePattern) -> list[DeweyCode]:
        """Ground truth: direct evaluation, full scan."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        answers = evaluate(pattern, self.document.tree)
        return _sorted_codes(answers)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def index_sizes(self) -> dict[str, int]:
        """Byte estimates of the BN / BF indexes (built on demand)."""
        return {
            "BN": self._ensure_node_index().stored_bytes,
            "BF": self._ensure_path_index().stored_bytes,
        }
