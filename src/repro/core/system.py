"""The full answering system (paper Figure 1).

:class:`MaterializedViewSystem` ties every component together over one
encoded document:

* **register views** — evaluate each view on the base data once and
  materialize its answer-node subtrees (with extended Dewey codes) into
  the fragment store, subject to the 128 KiB per-view cap; insert its
  decomposed path patterns into VFILTER.
* **answer queries** — filter (VFILTER), select (MN / MV / HV), rewrite
  (refine → holistic join → extract) using only materialized fragments
  and encodings; or fall back to the BN / BF base-data baselines.

This is the object the examples and benchmarks drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ViewNotAnswerableError
from ..matching.evaluate import evaluate
from ..storage.fragments import DEFAULT_FRAGMENT_CAP, FragmentStore
from ..storage.index import FullPathIndex, NodeIndex
from ..storage.kvstore import KVStore
from ..xmltree.builder import EncodedDocument
from ..xmltree.dewey import DeweyCode
from ..xpath.parser import parse_xpath
from ..xpath.pattern import TreePattern
from .contained import ContainedResult, maximal_contained_rewriting
from .rewrite import RewriteResult, rewrite
from .selection import (
    Selection,
    select_cost_based,
    select_heuristic,
    select_minimum,
)
from .vfilter import FilterResult, VFilter
from .view import View

__all__ = ["AnswerOutcome", "MaterializedViewSystem"]

#: Selection strategies accepted by :meth:`MaterializedViewSystem.answer`.
_STRATEGIES = ("HV", "MV", "MN", "CB")


@dataclass(slots=True)
class AnswerOutcome:
    """Everything about one answered query.

    ``codes`` is the answer set; ``lookup_seconds`` covers filtering +
    selection (the paper's Figure 9 metric), ``total_seconds`` the whole
    pipeline (Figure 8).  ``selection`` / ``rewrite_result`` expose the
    intermediate artifacts.
    """

    codes: list[DeweyCode]
    strategy: str
    selection: Selection | None = None
    rewrite_result: RewriteResult | None = None
    filter_result: FilterResult | None = None
    lookup_seconds: float = 0.0
    total_seconds: float = 0.0
    candidates: list[str] = field(default_factory=list)

    @property
    def view_ids(self) -> list[str]:
        return self.selection.view_ids if self.selection else []


class MaterializedViewSystem:
    """Answer XPath queries from multiple materialized views."""

    def __init__(
        self,
        document: EncodedDocument,
        fragment_cap: int = DEFAULT_FRAGMENT_CAP,
        store: KVStore | None = None,
    ):
        self.document = document
        self.vfilter = VFilter()
        self.fragments = FragmentStore(store, cap_bytes=fragment_cap)
        self._views: dict[str, View] = {}
        self._materialized: list[View] = []
        self._node_index: NodeIndex | None = None
        self._path_index: FullPathIndex | None = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_view(self, view_id: str, expression: str | TreePattern) -> bool:
        """Materialize a view; returns False when the 128 KiB cap was hit
        (the view is then excluded from answering, as in the paper)."""
        if isinstance(expression, TreePattern):
            view = View(view_id, expression)
        else:
            view = View.from_xpath(view_id, expression)
        if view.view_id in self._views:
            raise ValueError(f"duplicate view id {view_id!r}")
        answers = evaluate(view.pattern, self.document.tree)
        entries = [
            (node.dewey, node) for node in answers if node.dewey is not None
        ]
        fits = self.fragments.materialize(view_id, entries)
        self._views[view_id] = view
        self._persist_definition(view)
        if fits:
            self._materialized.append(view)
            self.vfilter.add_view(view)
        return fits

    def register_views(self, expressions: dict[str, str]) -> list[str]:
        """Register many views; returns the ids that materialized fully."""
        return [
            view_id
            for view_id, expression in expressions.items()
            if self.register_view(view_id, expression)
        ]

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    _DEFINITION_PREFIX = b"d:"

    def _persist_definition(self, view: View) -> None:
        from ..storage.serialize import encode_text

        key = self._DEFINITION_PREFIX + view.view_id.encode()
        self.fragments.store.put(key, encode_text(view.to_xpath()))

    @classmethod
    def reopen(
        cls,
        document: EncodedDocument,
        store: KVStore,
        fragment_cap: int = DEFAULT_FRAGMENT_CAP,
    ) -> "MaterializedViewSystem":
        """Rebuild a system from a store written in an earlier session.

        Fragments are *not* re-materialized: view definitions and
        manifests are read back, VFILTER is reconstructed from the
        definitions, and capped views stay excluded — the same state as
        after the original ``register_view`` calls, minus the base-data
        evaluation cost.
        """
        from ..storage.serialize import decode_text

        system = cls(document, fragment_cap=fragment_cap, store=store)
        definitions: dict[str, str] = {}
        for key, value in store.scan_prefix(cls._DEFINITION_PREFIX):
            view_id = key[len(cls._DEFINITION_PREFIX):].decode()
            expression, _ = decode_text(value, 0)
            definitions[view_id] = expression
        for view_id in sorted(definitions):
            view = View.from_xpath(view_id, definitions[view_id])
            system._views[view_id] = view
            if system.fragments.is_materialized(view_id):
                system._materialized.append(view)
                system.vfilter.add_view(view)
        return system

    @property
    def view_count(self) -> int:
        return len(self._materialized)

    def view(self, view_id: str) -> View:
        return self._views[view_id]

    def materialized_views(self) -> list[View]:
        return list(self._materialized)

    # ------------------------------------------------------------------
    # answering with views
    # ------------------------------------------------------------------
    def answer(
        self, query: str | TreePattern, strategy: str = "HV"
    ) -> AnswerOutcome:
        """Answer ``query`` from materialized views.

        ``strategy`` is ``"HV"`` (heuristic + VFILTER), ``"MV"``
        (minimum + VFILTER), ``"MN"`` (minimum, no VFILTER) or ``"CB"``
        (cost model + VFILTER, the extension the paper sketches).  Raises
        :class:`~repro.errors.ViewNotAnswerableError` when the
        materialized views cannot answer the query.
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; use {_STRATEGIES}")
        pattern = parse_xpath(query) if isinstance(query, str) else query
        started = time.perf_counter()

        filter_result: FilterResult | None = None
        if strategy == "MN":
            selection = select_minimum(
                self._materialized, pattern, self.fragments.fragment_bytes
            )
        else:
            filter_result = self.vfilter.filter(pattern)
            if strategy in ("MV", "CB"):
                candidates = [
                    self._views[view_id] for view_id in filter_result.candidates
                ]
                selector = select_minimum if strategy == "MV" else select_cost_based
                selection = selector(
                    candidates, pattern, self.fragments.fragment_bytes
                )
            else:
                selection = select_heuristic(
                    filter_result,
                    self._views.__getitem__,
                    pattern,
                    self.fragments.fragment_bytes,
                )
        lookup_done = time.perf_counter()

        result = rewrite(
            selection,
            pattern,
            self.fragments,
            self.document.schema,
            self.document.fst,
        )
        finished = time.perf_counter()
        return AnswerOutcome(
            codes=result.codes,
            strategy=strategy,
            selection=selection,
            rewrite_result=result,
            filter_result=filter_result,
            lookup_seconds=lookup_done - started,
            total_seconds=finished - started,
            candidates=filter_result.candidates if filter_result else [],
        )

    def try_answer(
        self, query: str | TreePattern, strategy: str = "HV"
    ) -> AnswerOutcome | None:
        """Like :meth:`answer` but returns ``None`` when unanswerable."""
        try:
            return self.answer(query, strategy)
        except ViewNotAnswerableError:
            return None

    # ------------------------------------------------------------------
    # base-data baselines
    # ------------------------------------------------------------------
    def answer_bn(self, query: str | TreePattern) -> AnswerOutcome:
        """BN: evaluate on base data with the basic node index."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        if self._node_index is None:
            self._node_index = NodeIndex(self.document.tree)
        started = time.perf_counter()
        answers = self._node_index.evaluate(pattern)
        finished = time.perf_counter()
        codes = sorted(
            node.dewey for node in answers if node.dewey is not None
        )
        return AnswerOutcome(
            codes, "BN", total_seconds=finished - started
        )

    def answer_bf(self, query: str | TreePattern) -> AnswerOutcome:
        """BF: evaluate on base data with the full path index."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        if self._path_index is None:
            self._path_index = FullPathIndex(self.document.tree)
        started = time.perf_counter()
        answers = self._path_index.evaluate(pattern)
        finished = time.perf_counter()
        codes = sorted(
            node.dewey for node in answers if node.dewey is not None
        )
        return AnswerOutcome(
            codes, "BF", total_seconds=finished - started
        )

    def answer_contained(self, query: str | TreePattern) -> ContainedResult:
        """Maximal contained rewriting (paper future work).

        Returns every *certain* answer obtainable from the materialized
        views — a subset of the true answer set, exact when some view
        answers the query equivalently.  Never raises
        :class:`~repro.errors.ViewNotAnswerableError`; an empty result
        simply means no view contributes.
        """
        pattern = parse_xpath(query) if isinstance(query, str) else query
        return maximal_contained_rewriting(
            self._materialized,
            pattern,
            self.fragments,
            self.document.schema,
            self.document.fst,
        )

    def answer_tj(self, query: str | TreePattern) -> AnswerOutcome:
        """TJ: TJFast-style evaluation from leaf streams + encodings.

        Reads only the Dewey-code streams of the query's leaf labels —
        the base-data counterpart of the multi-view join (paper [22]).
        """
        from ..matching.tjfast import tjfast_evaluate

        pattern = parse_xpath(query) if isinstance(query, str) else query
        started = time.perf_counter()
        codes = sorted(tjfast_evaluate(pattern, self.document))
        finished = time.perf_counter()
        return AnswerOutcome(codes, "TJ", total_seconds=finished - started)

    def direct_codes(self, query: str | TreePattern) -> list[DeweyCode]:
        """Ground truth: direct evaluation, full scan."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        answers = evaluate(pattern, self.document.tree)
        return sorted(node.dewey for node in answers if node.dewey is not None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def index_sizes(self) -> dict[str, int]:
        """Byte estimates of the BN / BF indexes (built on demand)."""
        if self._node_index is None:
            self._node_index = NodeIndex(self.document.tree)
        if self._path_index is None:
            self._path_index = FullPathIndex(self.document.tree)
        return {
            "BN": self._node_index.stored_bytes,
            "BF": self._path_index.stored_bytes,
        }
