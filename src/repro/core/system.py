"""The full answering system (paper Figure 1).

:class:`MaterializedViewSystem` ties every component together over one
encoded document:

* **register views** — evaluate each view on the base data once and
  materialize its answer-node subtrees (with extended Dewey codes) into
  the fragment store, subject to the 128 KiB per-view cap; insert its
  decomposed path patterns into VFILTER.  Bulk registration
  (:meth:`register_views`) evaluates views in a process pool when one
  is available (:mod:`repro.core.parallel`).
* **answer queries** — filter (VFILTER), select (MN / MV / HV), rewrite
  (refine → holistic join → extract) using only materialized fragments
  and encodings; or fall back to the BN / BF base-data baselines.

The answering path is served through a :class:`~repro.core.plancache.PlanCache`
(warm repeats of a query skip filtering, homomorphism enumeration and
set cover entirely) and a shared :class:`~repro.core.leaf_cover.CoverageMemo`
(MN/MV/HV/CB and the rewrite stage share one coverage computation per
``(view, query)`` pair).  ``stats()`` exposes hit/miss counters and
per-stage timings.

This is the object the examples and benchmarks drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from . import contracts
from ..errors import ViewNotAnswerableError
from ..matching.evaluate import evaluate
from ..storage.fragments import DEFAULT_FRAGMENT_CAP, FragmentStore
from ..storage.index import FullPathIndex, NodeIndex
from ..storage.kvstore import KVStore
from ..xmltree.builder import EncodedDocument
from ..xmltree.dewey import DeweyCode
from ..xmltree.tree import XMLNode
from ..xpath.parser import parse_xpath
from ..xpath.pattern import TreePattern
from .contained import ContainedResult, maximal_contained_rewriting
from .leaf_cover import CoverageMemo, CoverageUnit
from .parallel import MIN_PARALLEL_VIEWS, default_workers, evaluate_views_parallel
from .plancache import DEFAULT_PLAN_CACHE_SIZE, PlanCache, PlanEntry
from .rewrite import RewriteResult, rewrite
from .selection import (
    Selection,
    UnitsFn,
    select_cost_based,
    select_heuristic,
    select_minimum,
)
from .vfilter import FilterResult, VFilter
from .view import View

__all__ = ["AnswerOutcome", "MaterializedViewSystem"]

#: Selection strategies accepted by :meth:`MaterializedViewSystem.answer`.
_STRATEGIES = ("HV", "MV", "MN", "CB")


def _sorted_codes(answers: Iterable[XMLNode]) -> list[DeweyCode]:
    """Answer extraction shared by the baselines and ground truth:
    the sorted Dewey codes of every encoded answer node."""
    return sorted(node.dewey for node in answers if node.dewey is not None)


@dataclass(slots=True)
class AnswerOutcome:
    """Everything about one answered query.

    ``codes`` is the answer set; ``lookup_seconds`` covers filtering +
    selection (the paper's Figure 9 metric), ``total_seconds`` the whole
    pipeline (Figure 8).  ``selection`` / ``rewrite_result`` expose the
    intermediate artifacts.  ``plan_cache_hit`` marks answers served
    from a cached plan; ``stage_seconds`` breaks the call down into
    ``parse`` / ``lookup`` / ``rewrite``.
    """

    codes: list[DeweyCode]
    strategy: str
    selection: Selection | None = None
    rewrite_result: RewriteResult | None = None
    filter_result: FilterResult | None = None
    lookup_seconds: float = 0.0
    total_seconds: float = 0.0
    candidates: list[str] = field(default_factory=list)
    plan_cache_hit: bool = False
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def view_ids(self) -> list[str]:
        return self.selection.view_ids if self.selection else []


class MaterializedViewSystem:
    """Answer XPath queries from multiple materialized views."""

    def __init__(
        self,
        document: EncodedDocument,
        fragment_cap: int = DEFAULT_FRAGMENT_CAP,
        store: KVStore | None = None,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        cache_results: bool = True,
    ):
        self.document = document
        self.vfilter = VFilter()
        self.fragments = FragmentStore(store, cap_bytes=fragment_cap)
        self._views: dict[str, View] = {}
        self._materialized: list[View] = []
        self._node_index: NodeIndex | None = None
        self._path_index: FullPathIndex | None = None
        self._plan_cache = PlanCache(plan_cache_size)
        self._cache_results = cache_results
        self._memo = CoverageMemo()
        self._stage_totals: dict[str, float] = {
            "parse": 0.0, "lookup": 0.0, "rewrite": 0.0
        }
        self._answer_calls = 0
        self._warm_hits = 0
        self._parallel_registered = 0
        self._serial_registered = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_view(self, view_id: str, expression: str | TreePattern) -> bool:
        """Materialize a view; returns False when the 128 KiB cap was hit
        (the view is then excluded from answering, as in the paper)."""
        if isinstance(expression, TreePattern):
            view = View(view_id, expression)
        else:
            view = View.from_xpath(view_id, expression)
        if view.view_id in self._views:
            raise ValueError(f"duplicate view id {view_id!r}")
        answers = evaluate(view.pattern, self.document.tree)
        entries = [
            (node.dewey, node) for node in answers if node.dewey is not None
        ]
        fits = self.fragments.materialize(view_id, entries)
        self._serial_registered += 1
        return self._admit_view(view, fits)

    def _admit_view(self, view: View, fits: bool) -> bool:
        """Shared tail of serial and parallel registration: drop stale
        plans, catalog the view, persist its definition, extend VFILTER.

        Invalidation runs *first*: the plan cache only refills through
        ``answer()``, so one drop covers every mutation of this call,
        and an exception from persistence or VFILTER extension cannot
        leave cached plans derived from the pre-registration state
        (xmvrlint L7).
        """
        self._invalidate_plans()
        self._views[view.view_id] = view
        self._persist_definition(view)
        if fits:
            self._materialized.append(view)
            self.vfilter.add_view(view)
        return fits

    def register_views(
        self,
        expressions: dict[str, str | TreePattern],
        workers: int | None = None,
    ) -> list[str]:
        """Register many views; returns the ids that materialized fully.

        With ``workers >= 2`` (default: the machine's CPU count, capped
        by ``REPRO_REGISTER_WORKERS``) and enough views to amortize pool
        startup, view patterns are evaluated against the base tree in a
        process pool; the serial path is used otherwise, or when the
        pool cannot be created (sandboxes without fork support).  Both
        paths produce byte-identical fragment stores.
        """
        items = list(expressions.items())
        if workers is None:
            workers = default_workers()
        if workers >= 2 and len(items) >= MIN_PARALLEL_VIEWS:
            prepared = self._prepare_views(items)
            payload = [(view.view_id, view.to_xpath()) for view in prepared]
            try:
                encoded = evaluate_views_parallel(
                    self.document, payload, self.fragments.cap_bytes, workers
                )
            except Exception:
                # Pool unavailable or died mid-evaluation.  The pool
                # work is pure — nothing has been admitted yet — so the
                # serial path below starts from a clean slate.  (The
                # admission loop is deliberately *outside* this try: a
                # failure there leaves views registered, and retrying
                # serially would double-register them.)
                encoded = None
            if encoded is not None:
                return self._admit_encoded(prepared, encoded)
        return [
            view_id
            for view_id, expression in items
            if self.register_view(view_id, expression)
        ]

    def _prepare_views(
        self, items: list[tuple[str, str | TreePattern]]
    ) -> list[View]:
        """Parse the batch and reject duplicate ids before any work."""
        prepared: list[View] = []
        for view_id, expression in items:
            if isinstance(expression, TreePattern):
                view = View(view_id, expression)
            else:
                view = View.from_xpath(view_id, expression)
            if view.view_id in self._views:
                raise ValueError(f"duplicate view id {view_id!r}")
            prepared.append(view)
        return prepared

    def _admit_encoded(
        self, prepared: list[View], encoded: dict[str, list[bytes] | None]
    ) -> list[str]:
        # Invalidate up front: one drop covers the whole batch (the
        # cache refills only via answer()), and a failure mid-batch
        # cannot leave plans derived from the pre-registration state
        # (xmvrlint L1/L7).
        self._invalidate_plans()
        registered: list[str] = []
        for view in prepared:
            fits = self.fragments.materialize_encoded(
                view.view_id, encoded[view.view_id]
            )
            if self._admit_view(view, fits):
                registered.append(view.view_id)
        self._parallel_registered += len(prepared)
        return registered

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    _DEFINITION_PREFIX = b"d:"

    def _persist_definition(self, view: View) -> None:
        from ..storage.serialize import encode_text

        key = self._DEFINITION_PREFIX + view.view_id.encode()
        self.fragments.store.put(key, encode_text(view.to_xpath()))

    @classmethod
    def reopen(
        cls,
        document: EncodedDocument,
        store: KVStore,
        fragment_cap: int = DEFAULT_FRAGMENT_CAP,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        cache_results: bool = True,
    ) -> "MaterializedViewSystem":
        """Rebuild a system from a store written in an earlier session.

        Fragments are *not* re-materialized: view definitions and
        manifests are read back, VFILTER is reconstructed from the
        definitions, and capped views stay excluded — the same state as
        after the original ``register_view`` calls, minus the base-data
        evaluation cost.  Plan cache and memo start empty (they are
        in-memory artifacts of one session).
        """
        from ..storage.serialize import decode_text

        system = cls(
            document,
            fragment_cap=fragment_cap,
            store=store,
            plan_cache_size=plan_cache_size,
            cache_results=cache_results,
        )
        definitions: dict[str, str] = {}
        for key, value in store.scan_prefix(cls._DEFINITION_PREFIX):
            view_id = key[len(cls._DEFINITION_PREFIX):].decode()
            expression, _ = decode_text(value, 0)
            definitions[view_id] = expression
        for view_id in sorted(definitions):
            view = View.from_xpath(view_id, definitions[view_id])
            system._views[view_id] = view
            if system.fragments.is_materialized(view_id):
                system._materialized.append(view)
                system.vfilter.add_view(view)
        return system

    @property
    def view_count(self) -> int:
        return len(self._materialized)

    def view(self, view_id: str) -> View:
        return self._views[view_id]

    def materialized_views(self) -> list[View]:
        return list(self._materialized)

    # ------------------------------------------------------------------
    # plan cache plumbing
    # ------------------------------------------------------------------
    def _invalidate_plans(self) -> None:
        """Drop cached plans after any view-pool or document mutation.

        Called by :meth:`register_view` / :meth:`register_views` and by
        :class:`~repro.core.maintenance.DocumentEditor` after inserts
        and deletes.  The coverage memo survives: coverage is a pure
        function of the view and query patterns, and view ids are never
        redefined within one system.
        """
        self._plan_cache.clear()

    def stats(self) -> dict[str, object]:
        """Operational counters for the answering hot path."""
        return {
            "views": {
                "registered": len(self._views),
                "materialized": len(self._materialized),
                "registered_parallel": self._parallel_registered,
                "registered_serial": self._serial_registered,
            },
            "plan_cache": {
                **self._plan_cache.stats.as_dict(),
                "entries": len(self._plan_cache),
                "maxsize": self._plan_cache.maxsize,
            },
            "coverage_memo": self._memo.stats(),
            "answers": self._answer_calls,
            "stage_seconds": dict(self._stage_totals),
        }

    # ------------------------------------------------------------------
    # answering with views
    # ------------------------------------------------------------------
    def answer(
        self, query: str | TreePattern, strategy: str = "HV"
    ) -> AnswerOutcome:
        """Answer ``query`` from materialized views.

        ``strategy`` is ``"HV"`` (heuristic + VFILTER), ``"MV"``
        (minimum + VFILTER), ``"MN"`` (minimum, no VFILTER) or ``"CB"``
        (cost model + VFILTER, the extension the paper sketches).  Raises
        :class:`~repro.errors.ViewNotAnswerableError` when the
        materialized views cannot answer the query.

        Repeated queries (same canonical pattern, same strategy) are
        served from the plan cache until the next view registration or
        maintenance update.
        """
        if strategy not in _STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; use {_STRATEGIES}")
        entered = time.perf_counter()
        pattern = parse_xpath(query) if isinstance(query, str) else query
        query_key = pattern.canonical_string()
        started = time.perf_counter()
        self._answer_calls += 1
        self._stage_totals["parse"] += started - entered

        entry = (
            self._plan_cache.get(query_key, strategy)
            if self._plan_cache.enabled
            else None
        )
        if entry is not None:
            return self._answer_warm(entry, strategy, query_key, entered, started)
        return self._answer_cold(pattern, strategy, query_key, entered, started)

    def _derive_selection(
        self,
        pattern: TreePattern,
        strategy: str,
        units_fn: UnitsFn | None = None,
    ) -> tuple[FilterResult | None, Selection]:
        """Filter + select for one query: the plan-derivation core.

        With ``units_fn=None`` every coverage computation runs fresh
        (no :class:`CoverageMemo`), which is what the contract layer
        needs to cross-check cached plans against first principles.
        """
        if strategy == "MN":
            return None, select_minimum(
                self._materialized,
                pattern,
                self.fragments.fragment_bytes,
                units_fn=units_fn,
            )
        filter_result = self.vfilter.filter(pattern)
        if strategy in ("MV", "CB"):
            candidates = [
                self._views[view_id] for view_id in filter_result.candidates
            ]
            selector = select_minimum if strategy == "MV" else select_cost_based
            selection = selector(
                candidates,
                pattern,
                self.fragments.fragment_bytes,
                units_fn=units_fn,
            )
        else:
            selection = select_heuristic(
                filter_result,
                self._views.__getitem__,
                pattern,
                self.fragments.fragment_bytes,
                units_fn=units_fn,
            )
        return filter_result, selection

    def _answer_cold(
        self,
        pattern: TreePattern,
        strategy: str,
        query_key: str,
        entered: float,
        started: float,
    ) -> AnswerOutcome:
        pattern = self._memo.intern(query_key, pattern)

        def units_fn(view: View) -> list[CoverageUnit]:
            return self._memo.units(view, query_key, pattern)

        try:
            filter_result, selection = self._derive_selection(
                pattern, strategy, units_fn=units_fn
            )
        except ViewNotAnswerableError as error:
            self._plan_cache.put(
                query_key,
                strategy,
                PlanEntry(pattern, None, None, error=error),
            )
            raise
        if contracts.enabled():
            context = f"answer({query_key!r}, {strategy})"
            contracts.check_selection_covers(selection, pattern, context)
            if filter_result is not None:
                contracts.check_vfilter_sound(
                    pattern, filter_result, self._materialized, context
                )
        lookup_done = time.perf_counter()

        result = rewrite(
            selection,
            pattern,
            self.fragments,
            self.document.schema,
            self.document.fst,
            memo=self._memo,
            query_key=query_key,
        )
        finished = time.perf_counter()

        if contracts.enabled():
            contracts.check_document_order(
                result.codes, f"answer({query_key!r}, {strategy})"
            )

        entry = PlanEntry(pattern, filter_result, selection)
        if self._cache_results:
            entry.result = result
        self._plan_cache.put(query_key, strategy, entry)

        self._stage_totals["lookup"] += lookup_done - started
        self._stage_totals["rewrite"] += finished - lookup_done
        return AnswerOutcome(
            codes=list(result.codes),
            strategy=strategy,
            selection=selection,
            rewrite_result=result,
            filter_result=filter_result,
            lookup_seconds=lookup_done - started,
            total_seconds=finished - started,
            candidates=filter_result.candidates if filter_result else [],
            plan_cache_hit=False,
            stage_seconds={
                "parse": started - entered,
                "lookup": lookup_done - started,
                "rewrite": finished - lookup_done,
            },
        )

    def _answer_warm(
        self,
        entry: PlanEntry,
        strategy: str,
        query_key: str,
        entered: float,
        started: float,
    ) -> AnswerOutcome:
        self._warm_hits += 1
        if contracts.enabled() and (
            (self._warm_hits - 1) % contracts.sample_every() == 0
        ):
            # Before trusting the cached plan (including a cached
            # failure), re-derive it from first principles on a sampled
            # fraction of warm hits.
            contracts.check_plan_consistency(
                self, entry, strategy,
                f"answer({query_key!r}, {strategy}) [warm]",
            )
        if entry.error is not None:
            raise entry.replay_error()
        assert entry.selection is not None
        lookup_done = time.perf_counter()

        result = entry.result
        if result is None:
            result = rewrite(
                entry.selection,
                entry.pattern,
                self.fragments,
                self.document.schema,
                self.document.fst,
                memo=self._memo,
                query_key=query_key,
            )
            if self._cache_results:
                entry.result = result
        if contracts.enabled():
            contracts.check_document_order(
                result.codes, f"answer({query_key!r}, {strategy}) [warm]"
            )
        finished = time.perf_counter()

        self._stage_totals["lookup"] += lookup_done - started
        self._stage_totals["rewrite"] += finished - lookup_done
        return AnswerOutcome(
            codes=list(result.codes),
            strategy=strategy,
            selection=entry.selection,
            rewrite_result=result,
            filter_result=entry.filter_result,
            lookup_seconds=lookup_done - started,
            total_seconds=finished - started,
            candidates=(
                entry.filter_result.candidates if entry.filter_result else []
            ),
            plan_cache_hit=True,
            stage_seconds={
                "parse": started - entered,
                "lookup": lookup_done - started,
                "rewrite": finished - lookup_done,
            },
        )

    def try_answer(
        self, query: str | TreePattern, strategy: str = "HV"
    ) -> AnswerOutcome | None:
        """Like :meth:`answer` but returns ``None`` when unanswerable."""
        try:
            return self.answer(query, strategy)
        except ViewNotAnswerableError:
            return None

    # ------------------------------------------------------------------
    # base-data baselines
    # ------------------------------------------------------------------
    def answer_bn(self, query: str | TreePattern) -> AnswerOutcome:
        """BN: evaluate on base data with the basic node index."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        if self._node_index is None:
            self._node_index = NodeIndex(self.document.tree)
        started = time.perf_counter()
        answers = self._node_index.evaluate(pattern)
        finished = time.perf_counter()
        return AnswerOutcome(
            _sorted_codes(answers), "BN", total_seconds=finished - started
        )

    def answer_bf(self, query: str | TreePattern) -> AnswerOutcome:
        """BF: evaluate on base data with the full path index."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        if self._path_index is None:
            self._path_index = FullPathIndex(self.document.tree)
        started = time.perf_counter()
        answers = self._path_index.evaluate(pattern)
        finished = time.perf_counter()
        return AnswerOutcome(
            _sorted_codes(answers), "BF", total_seconds=finished - started
        )

    def answer_contained(self, query: str | TreePattern) -> ContainedResult:
        """Maximal contained rewriting (paper future work).

        Returns every *certain* answer obtainable from the materialized
        views — a subset of the true answer set, exact when some view
        answers the query equivalently.  Never raises
        :class:`~repro.errors.ViewNotAnswerableError`; an empty result
        simply means no view contributes.
        """
        pattern = parse_xpath(query) if isinstance(query, str) else query
        return maximal_contained_rewriting(
            self._materialized,
            pattern,
            self.fragments,
            self.document.schema,
            self.document.fst,
        )

    def answer_tj(self, query: str | TreePattern) -> AnswerOutcome:
        """TJ: TJFast-style evaluation from leaf streams + encodings.

        Reads only the Dewey-code streams of the query's leaf labels —
        the base-data counterpart of the multi-view join (paper [22]).
        """
        from ..matching.tjfast import tjfast_evaluate

        pattern = parse_xpath(query) if isinstance(query, str) else query
        started = time.perf_counter()
        codes = sorted(tjfast_evaluate(pattern, self.document))
        finished = time.perf_counter()
        return AnswerOutcome(codes, "TJ", total_seconds=finished - started)

    def direct_codes(self, query: str | TreePattern) -> list[DeweyCode]:
        """Ground truth: direct evaluation, full scan."""
        pattern = parse_xpath(query) if isinstance(query, str) else query
        answers = evaluate(pattern, self.document.tree)
        return _sorted_codes(answers)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def index_sizes(self) -> dict[str, int]:
        """Byte estimates of the BN / BF indexes (built on demand)."""
        if self._node_index is None:
            self._node_index = NodeIndex(self.document.tree)
        if self._path_index is None:
            self._path_index = FullPathIndex(self.document.tree)
        return {
            "BN": self._node_index.stored_bytes,
            "BF": self._path_index.stored_bytes,
        }
