"""Maximal contained rewriting (the paper's future work, Section VII).

When no view set answers a query *equivalently*, a data-integration
scenario still wants every certain answer obtainable from the views.  A
**contained rewriting** returns a subset of the query's answers; the
*maximal* one unions every contained contribution available.

A view ``V`` contributes soundly when ``V ⊑ Q`` *with answer
correspondence*: a homomorphism ``g : Q → V`` mapping ``RET(Q)`` onto
``RET(V)``.  Every materialized answer ``x`` of ``V`` then embeds the
whole of ``Q`` with answer ``x`` (compose ``g`` with ``V``'s embedding),
so ``answers(V) ⊆ answers(Q)`` — no refinement or join needed.

Additionally, a view that is *more general* than the query
(``Q ⊑ V``) contributes when the equivalent machinery covers all
obligations with that single view (Section IV's single-view case); the
compensating pattern then carves the exact subset out of its fragments.
Both sources are unioned.

The result is a lower bound on ``answers(Q)``; ``is_exact`` reports
whether some contribution was provably equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..matching.evaluate import evaluate_relative
from ..matching.homomorphism import feasible_pairs
from ..storage.fragments import FragmentStore
from ..xmltree.dewey import DeweyCode
from ..xmltree.fst import FiniteStateTransducer
from ..xmltree.schema import DocumentSchema
from ..xpath.pattern import TreePattern
from .leaf_cover import coverage_units, covers_query
from .refine import refine_unit
from .rewrite import reencode_fragment
from .twig_join import join_units
from .view import View

__all__ = ["ContainedResult", "maximal_contained_rewriting"]


@dataclass(slots=True)
class ContainedResult:
    """Outcome of a maximal contained rewriting."""

    codes: list[DeweyCode]
    contributing_views: list[str] = field(default_factory=list)
    #: True when a single-view equivalent contribution was found, making
    #: the result the *complete* answer set.
    is_exact: bool = False


def _contained_in_query(view: View, query: TreePattern) -> bool:
    """``V ⊑ Q`` with ``RET(Q) → RET(V)`` correspondence."""
    pairs = feasible_pairs(query, view.pattern)
    return any(target is view.pattern.ret for target in pairs.get(id(query.ret), []))


def maximal_contained_rewriting(
    views: list[View],
    query: TreePattern,
    fragment_store: FragmentStore,
    schema: DocumentSchema,
    fst: FiniteStateTransducer | None = None,
) -> ContainedResult:
    """Union every certain answer obtainable from ``views``."""
    if fst is None:
        fst = FiniteStateTransducer(schema)
    codes: set[DeweyCode] = set()
    contributing: list[str] = []
    is_exact = False

    for view in views:
        if not fragment_store.is_materialized(view.view_id):
            continue
        # Source 2 first: the view alone answers the query equivalently
        # (single-view case of Section IV) — the compensated fragments
        # are the *complete* answer set.
        exact_unit = next(
            (
                unit
                for unit in coverage_units(view, query)
                if unit.provides_delta and covers_query([unit], query)
            ),
            None,
        )
        if exact_unit is not None:
            # Full single-view pipeline: refinement plus the encoding
            # join (which verifies the query's root-to-anchor skeleton
            # against each fragment root's FST-derived label path).
            refined = refine_unit(
                exact_unit, query, fragment_store.fragments(view.view_id)
            )
            surviving = join_units([refined], query, fst, refined)
            by_packed = {f.packed: f for f in refined.fragments}
            for packed_root in surviving:
                fragment = by_packed[packed_root]
                root = fragment.root
                if root.dewey != fragment.code:
                    reencode_fragment(root, fragment.code, schema)
                for answer in evaluate_relative(
                    refined.pattern, root, fragment.subtree_index()
                ):
                    assert answer.dewey is not None
                    codes.add(answer.dewey)
            contributing.append(view.view_id)
            is_exact = True
            continue
        # Source 1: the view is contained in the query — its answers are
        # certain answers verbatim.
        if _contained_in_query(view, query):
            view_codes = fragment_store.codes(view.view_id)
            if view_codes:
                codes.update(view_codes)
                contributing.append(view.view_id)

    return ContainedResult(sorted(codes), contributing, is_exact)
