"""VFILTER: NFA-based view filtering (paper Section III, Algorithm 1).

Given a view set ``V`` and a query ``Q``, VFILTER prunes every view that
*cannot* contain ``Q``, using Proposition 3.1: ``Q ⊑ V`` requires each
path pattern of ``D(V)`` to contain some path pattern of ``D(Q)``.  The
check runs each normalized query path's ``STR`` token stream through the
shared NFA; accepting states identify the view paths that contain it.

The filter is sound (no false negatives, thanks to normalization) and
allows false positives (distinct tree patterns with identical path
decompositions); Figure 10 measures exactly that utility ratio.

Besides the candidate set, filtering returns the paper's ``LIST(P_i)``
bookkeeping — per query path, the candidate views whose paths contain
it, sorted by descending view-path length — which drives the heuristic
selector (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import current_trace
from ..storage.kvstore import KVStore
from ..storage.serialize import encode_text, encode_varint
from ..xpath.decompose import decompose
from ..xpath.pattern import PathPattern, TreePattern
from ..xpath.transform import str_tokens
from .nfa import DEFAULT_COMPILE_BUDGET, AcceptEntry, PathNFA
from .view import View

__all__ = ["LayeredVFilter", "VFilter", "FilterResult"]


@dataclass(slots=True)
class FilterResult:
    """Output of Algorithm 1 for one query.

    ``candidates`` preserves view registration order.  ``lists`` maps
    each query path pattern to its ``LIST(P_i)``: pairs
    ``(view_id, length)`` sorted by length descending (ties by view id
    for determinism), already restricted to candidate views — the
    paper's lines 22-26.
    """

    candidates: list[str]
    lists: dict[PathPattern, list[tuple[str, int]]] = field(default_factory=dict)
    query_paths: list[PathPattern] = field(default_factory=list)


class VFilter:
    """A shared NFA over the decomposed path patterns of all views.

    ``attribute_pruning`` additionally drops candidates whose attribute
    constraints cannot all be mirrored by the query — the extension the
    paper's Section VII proposes ("incorporate attributes into VFILTER
    to gain further pruning power").  It is a necessary condition for a
    homomorphism, so soundness is preserved.
    """

    def __init__(self, attribute_pruning: bool = True) -> None:
        self.attribute_pruning = attribute_pruning  #: state: hard
        self.nfa = PathNFA()  #: state: hard
        self._views: dict[str, View] = {}  #: state: hard
        self._order: list[str] = []  #: state: hard
        self._order_index: dict[str, int] = {}  #: state: hard
        # All-wildcard view paths (/*/*/…) contain every query path with
        # at least as many steps; the NFA's root handling cannot express
        # that, so they live in a side registry consulted by filter().
        # Their acceptance depends only on the probe path's length, so
        # per-length-threshold aggregates are precomputed lazily:
        #   threshold t -> {view_id: best matching wildcard-path length}
        #   threshold t -> {view_id: number of wildcard paths matched}
        self._wildcard_entries: list[AcceptEntry] = []  #: state: hard
        self._constrained: dict[str, frozenset] = {}  #: state: hard
        #: state: soft(derived-from=_wildcard_entries; rebuild=_wildcard_best)
        self._wc_best: dict[int, dict[str, int]] = {}
        #: state: soft(derived-from=_wildcard_entries; rebuild=_wildcard_counts)
        self._wc_count: dict[int, dict[str, int]] = {}
        #: state: soft(derived-from=_wildcard_entries; rebuild=add_view)
        self._wc_max_length = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    #: state: mutator
    def add_view(self, view: View) -> None:
        """Insert a view's (already normalized) path patterns."""
        if view.view_id in self._views:
            raise ValueError(f"duplicate view id {view.view_id!r}")
        self._views[view.view_id] = view
        self._order_index[view.view_id] = len(self._order)
        self._order.append(view.view_id)
        signature = view.constraint_signature()
        if signature:
            self._constrained[view.view_id] = signature
        for index, path in enumerate(view.paths):
            entry = AcceptEntry(view.view_id, index, path.length)
            if all(step.is_wildcard for step in path.steps):
                self._wildcard_entries.append(entry)
                self._wc_max_length = max(self._wc_max_length, entry.length)
                self._wc_best.clear()
                self._wc_count.clear()
            else:
                self.nfa.insert(path, entry)

    #: state: mutator
    def add_views(self, views: list[View]) -> None:
        for view in views:
            self.add_view(view)

    @property
    def view_count(self) -> int:
        return len(self._views)

    def view(self, view_id: str) -> View:
        return self._views[view_id]

    def views(self) -> list[View]:
        return [self._views[view_id] for view_id in self._order]

    # ------------------------------------------------------------------
    # wildcard-path aggregates
    # ------------------------------------------------------------------
    def _wildcard_best(self, threshold: int) -> dict[str, int]:
        """``{view_id: longest wildcard path with length ≤ threshold}``."""
        if not self._wildcard_entries:
            return {}
        threshold = min(threshold, self._wc_max_length)
        cached = self._wc_best.get(threshold)
        if cached is None:
            cached = {}
            for entry in self._wildcard_entries:
                if entry.length <= threshold:
                    best = cached.get(entry.view_id)
                    if best is None or entry.length > best:
                        cached[entry.view_id] = entry.length
            self._wc_best[threshold] = cached
        return cached

    def _wildcard_counts(self, threshold: int) -> dict[str, int]:
        """``{view_id: #wildcard paths with length ≤ threshold}``."""
        if not self._wildcard_entries:
            return {}
        threshold = min(threshold, self._wc_max_length)
        cached = self._wc_count.get(threshold)
        if cached is None:
            cached = {}
            for entry in self._wildcard_entries:
                if entry.length <= threshold:
                    cached[entry.view_id] = cached.get(entry.view_id, 0) + 1
            self._wc_count[threshold] = cached
        return cached

    def accepting_views(self, labels: tuple[str, ...]) -> set[str]:
        """View ids with a decomposed path matching the *concrete*
        label path ``labels`` (root-to-node, child steps only).

        The delta resolver's probe: an edit can change a view's answer
        set only if some pattern leaf maps onto a changed node, and
        that leaf's ``D(V)`` path then matches the node's concrete
        label path — so the NFA accepting it is a sound hit test.
        Wildcard-only view paths accept any path at least as long, via
        the same per-length aggregate :meth:`filter` uses.
        """
        accepted = {entry.view_id for entry in self.nfa.read(labels)}
        accepted.update(self._wildcard_best(len(labels)))
        return accepted

    # ------------------------------------------------------------------
    # Algorithm 1: VIEWFILTERING
    # ------------------------------------------------------------------
    def filter(self, query: TreePattern) -> FilterResult:
        """Run Algorithm 1; returns candidates and ``LIST(P_i)`` data.

        Query paths are fed to the NFA *raw* (Algorithm 1 normalizes
        them, but the gap-unit construction of :class:`PathNFA` already
        canonicalizes every equivalent spelling on the view side, and
        rewriting the query stream can only lose matches — see the
        module docstring of :mod:`repro.core.nfa`)."""
        query_paths = decompose(query)
        # Deduplicate (D(Q) is a set) while preserving order.
        seen: set[PathPattern] = set()
        unique_paths: list[PathPattern] = []
        for path in query_paths:
            if path not in seen:
                seen.add(path)
                unique_paths.append(path)

        # Lines 6-16: run each path, recording which of each view's
        # paths accepted something (a set, so a view path matched by two
        # query paths is not double-counted).  Wildcard view paths are
        # folded in from the per-length-threshold aggregates.
        matched_paths: dict[str, set[int]] = {}
        raw_lists: dict[PathPattern, dict[str, int]] = {}
        max_path_length = 0
        with current_trace().span("nfa", paths=len(unique_paths)) as span:
            for path in unique_paths:
                tokens = str_tokens(path)
                path_length = path.length
                max_path_length = max(max_path_length, path_length)
                per_path = dict(self._wildcard_best(path_length))
                for entry in self.nfa.read(tokens):
                    matched_paths.setdefault(entry.view_id, set()).add(
                        entry.path_index
                    )
                    best = per_path.get(entry.view_id)
                    if best is None or entry.length > best:
                        per_path[entry.view_id] = entry.length
                raw_lists[path] = per_path
            span.attributes["views_matched"] = len(matched_paths)

        # Lines 17-21: a candidate view has every one of its paths
        # matched (NUM(V) = |D(V)|).  Only views that matched something
        # are examined, keeping filtering output-sensitive rather than
        # linear in the registered view count.
        wc_counts = self._wildcard_counts(max_path_length)
        candidate_set = set()
        for view_id, matched in matched_paths.items():
            total = len(matched) + wc_counts.get(view_id, 0)
            if total == self._views[view_id].path_count:
                candidate_set.add(view_id)
        for view_id, count in wc_counts.items():
            if view_id not in matched_paths:
                if count == self._views[view_id].path_count:
                    candidate_set.add(view_id)
        if self.attribute_pruning and self._constrained:
            query_constraints = {
                constraint
                for node in query.iter_nodes()
                for constraint in node.constraints
            }
            candidate_set = {
                view_id
                for view_id in candidate_set
                if self._constrained.get(view_id, frozenset())
                <= query_constraints
            }
        candidates = sorted(candidate_set, key=self._order_index.__getitem__)

        # Lines 22-26: drop filtered views from the sorted lists.
        lists: dict[PathPattern, list[tuple[str, int]]] = {}
        for path, per_path in raw_lists.items():
            entries = [
                (view_id, length)
                for view_id, length in per_path.items()
                if view_id in candidate_set
            ]
            entries.sort(key=lambda item: (-item[1], item[0]))
            lists[path] = entries
        return FilterResult(candidates, lists, unique_paths)

    # ------------------------------------------------------------------
    # compiled transition table
    # ------------------------------------------------------------------
    def precompile(self, budget: int = DEFAULT_COMPILE_BUDGET) -> None:
        """Compile the NFA into its lazy-DFA transition table (see
        :class:`repro.core.nfa.CompiledNFA`).  Called at epoch-publish
        time so steady-state :meth:`filter` calls cost one dict probe
        per token instead of a set-simulation pass.  Idempotent; voided
        automatically by :meth:`add_view`."""
        self.nfa.compile(budget)

    def compiled_stats(self) -> dict[str, int]:
        """Counters for the compiled path (stats / CI feature checks)."""
        compiled = self.nfa.compiled
        return {
            "compiled_layers": 1 if compiled is not None else 0,
            "dfa_states": compiled.state_count if compiled is not None else 0,
            "dfa_rows": compiled.rows_built if compiled is not None else 0,
            "dfa_table_entries": (
                compiled.table_entries() if compiled is not None else 0
            ),
            "reads_compiled": self.nfa.reads_compiled,
            "reads_simulated": self.nfa.reads_simulated,
        }

    # ------------------------------------------------------------------
    # persistence / sizing
    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """In-memory serialized size estimate of the automaton."""
        return self.nfa.stored_bytes()

    def frozen(self) -> "LayeredVFilter":
        """Wrap this filter as the base layer of an immutable
        :class:`LayeredVFilter` (the caller promises not to call
        :meth:`add_view` afterwards)."""
        return LayeredVFilter(self)

    def save(self, store: KVStore, include_definitions: bool = True) -> int:
        """Persist the automaton into ``store`` (one record per state,
        as the paper stores VFILTER in Berkeley DB); returns the number
        of bytes written — the Figure 11 database size.

        View definitions (``v:`` records) are stored alongside the NFA
        states (``s:`` records), so :meth:`load` reconstructs a fully
        functional filter without re-deriving anything.  Pass
        ``include_definitions=False`` to write (and count) only the
        automaton — the quantity Figure 11 tracks; the catalog of view
        strings grows trivially linearly and is not part of the paper's
        size claim.
        """
        total = 0
        for state_id in range(self.nfa.state_count):
            state = self.nfa._states[state_id]
            payload_parts = [encode_varint(len(state.exact))]
            for label, target in sorted(state.exact.items()):
                payload_parts.append(encode_text(label))
                payload_parts.append(encode_varint(target))
            payload_parts.append(encode_varint(len(state.desc_exact)))
            for label, target in sorted(state.desc_exact.items()):
                payload_parts.append(encode_text(label))
                payload_parts.append(encode_varint(target))
            for single in (state.star, state.desc_star, state.chain):
                payload_parts.append(
                    encode_varint(single + 1 if single is not None else 0)
                )
            payload_parts.append(encode_varint(len(state.any_to)))
            payload_parts.extend(encode_varint(t) for t in state.any_to)
            payload_parts.append(encode_varint(len(state.accepts)))
            for entry in state.accepts:
                payload_parts.append(encode_text(entry.view_id))
                payload_parts.append(encode_varint(entry.path_index))
                payload_parts.append(encode_varint(entry.length))
            key = b"s:" + encode_varint(state_id)
            value = b"".join(payload_parts)
            store.put(key, value)
            total += len(key) + len(value)
        if not include_definitions:
            return total
        for order, view_id in enumerate(self._order):
            key = b"v:" + encode_varint(order)
            value = encode_text(view_id) + encode_text(
                self._views[view_id].to_xpath()
            )
            store.put(key, value)
            total += len(key) + len(value)
        return total

    @classmethod
    def load(cls, store: KVStore) -> "VFilter":
        """Reconstruct a filter previously written by :meth:`save`.

        NFA states are decoded directly (no re-insertion); view
        definitions are re-parsed from their stored XPath.  Loop-state
        bookkeeping used only during construction is not persisted, so a
        loaded filter accepts further :meth:`add_view` calls at the cost
        of slightly less prefix sharing for descendant steps.
        """
        from ..storage.serialize import decode_text, decode_varint
        from .nfa import _State

        vfilter = cls()
        states: dict[int, _State] = {}
        view_records: dict[int, tuple[str, str]] = {}
        for key in store.keys():
            if key.startswith(b"s:"):
                state_id, _ = decode_varint(key, 2)
                value = store.get(key)
                assert value is not None
                state = _State()
                offset = 0
                count, offset = decode_varint(value, offset)
                for _ in range(count):
                    label, offset = decode_text(value, offset)
                    target, offset = decode_varint(value, offset)
                    state.exact[label] = target
                count, offset = decode_varint(value, offset)
                for _ in range(count):
                    label, offset = decode_text(value, offset)
                    target, offset = decode_varint(value, offset)
                    state.desc_exact[label] = target
                star, offset = decode_varint(value, offset)
                state.star = star - 1 if star else None
                desc_star, offset = decode_varint(value, offset)
                state.desc_star = desc_star - 1 if desc_star else None
                chain, offset = decode_varint(value, offset)
                state.chain = chain - 1 if chain else None
                count, offset = decode_varint(value, offset)
                for _ in range(count):
                    target, offset = decode_varint(value, offset)
                    state.any_to.append(target)
                count, offset = decode_varint(value, offset)
                for _ in range(count):
                    view_id, offset = decode_text(value, offset)
                    path_index, offset = decode_varint(value, offset)
                    length, offset = decode_varint(value, offset)
                    state.accepts.append(
                        AcceptEntry(view_id, path_index, length)
                    )
                states[state_id] = state
            elif key.startswith(b"v:"):
                order, _ = decode_varint(key, 2)
                value = store.get(key)
                assert value is not None
                view_id, offset = decode_text(value, 0)
                expression, _ = decode_text(value, offset)
                view_records[order] = (view_id, expression)

        vfilter.nfa._states = [
            states[state_id] for state_id in sorted(states)
        ]
        for order in sorted(view_records):
            view_id, expression = view_records[order]
            view = View.from_xpath(view_id, expression)
            vfilter._views[view_id] = view
            vfilter._order_index[view_id] = len(vfilter._order)
            vfilter._order.append(view_id)
            signature = view.constraint_signature()
            if signature:
                vfilter._constrained[view_id] = signature
            for index, path in enumerate(view.paths):
                if all(step.is_wildcard for step in path.steps):
                    vfilter._wildcard_entries.append(
                        AcceptEntry(view_id, index, path.length)
                    )
                    vfilter._wc_max_length = max(
                        vfilter._wc_max_length, path.length
                    )
        return vfilter


class LayeredVFilter:
    """An immutable stack of :class:`VFilter` layers: one frozen *base*
    plus a tuple of single-view *deltas*.

    The epoch-snapshot design (``core.system``) needs a filter that is
    never mutated after an epoch is published — concurrent readers walk
    the NFA while registrations land — yet cheap to extend: rebuilding a
    1000-view automaton per ``register_view`` would make bulk loading
    quadratic.  A layered filter gives both: registering a view wraps
    the untouched base with one extra single-view layer (an O(|view|)
    build), and the registration path collapses the stack back into a
    fresh monolithic base once the delta tuple grows past a threshold,
    keeping per-query overhead bounded.

    Merging is exact: Algorithm 1's acceptance test is per view (every
    path of ``D(V)`` must contain some query path, judged only against
    that view's own paths), so filtering each layer independently and
    concatenating yields the same candidate set as one monolithic
    automaton.  Candidate order is base order followed by delta order —
    i.e. global registration order, exactly what the monolithic filter
    produces — and the per-path ``LIST(P_i)`` entries are merged and
    re-sorted by ``(-length, view_id)``, the same deterministic key.
    """

    __slots__ = ("base", "deltas")

    def __init__(
        self, base: VFilter, deltas: tuple[VFilter, ...] = ()
    ) -> None:
        self.base = base  #: state: hard
        self.deltas = deltas  #: state: hard

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, views: list[View], attribute_pruning: bool = True
    ) -> "LayeredVFilter":
        """A collapsed (single-layer) filter over ``views``."""
        base = VFilter(attribute_pruning=attribute_pruning)
        base.add_views(views)
        return cls(base)

    def with_view(self, view: View) -> "LayeredVFilter":
        """A new filter extended by one view; ``self`` is untouched."""
        delta = VFilter(attribute_pruning=self.attribute_pruning)
        delta.add_view(view)
        return LayeredVFilter(self.base, self.deltas + (delta,))

    def collapsed(self) -> "LayeredVFilter":
        """Rebuild as a single monolithic layer (same view order)."""
        return self.build(self.views(), self.attribute_pruning)

    # ------------------------------------------------------------------
    # VFilter-compatible read API
    # ------------------------------------------------------------------
    @property
    def attribute_pruning(self) -> bool:
        return self.base.attribute_pruning

    @property
    def delta_count(self) -> int:
        return len(self.deltas)

    @property
    def view_count(self) -> int:
        return self.base.view_count + sum(
            delta.view_count for delta in self.deltas
        )

    def view(self, view_id: str) -> View:
        for layer in self._layers():
            try:
                return layer.view(view_id)
            except KeyError:
                continue
        raise KeyError(view_id)

    def views(self) -> list[View]:
        collected: list[View] = []
        for layer in self._layers():
            collected.extend(layer.views())
        return collected

    def stored_bytes(self) -> int:
        return sum(layer.stored_bytes() for layer in self._layers())

    def precompile(self, budget: int = DEFAULT_COMPILE_BUDGET) -> None:
        """Compile every layer's transition table (idempotent).

        Mutation-wise this only populates per-layer caches guarded by
        their own locks, so calling it on a published (shared) filter is
        safe — layers already compiled by a previous epoch are reused.
        """
        for layer in self._layers():
            layer.precompile(budget)

    def compiled_stats(self) -> dict[str, int]:
        """Aggregate compiled-path counters across layers."""
        totals = {
            "layers": 0,
            "compiled_layers": 0,
            "dfa_states": 0,
            "dfa_rows": 0,
            "dfa_table_entries": 0,
            "reads_compiled": 0,
            "reads_simulated": 0,
        }
        for layer in self._layers():
            totals["layers"] += 1
            for key, value in layer.compiled_stats().items():
                totals[key] += value
        return totals

    def _layers(self) -> tuple[VFilter, ...]:
        return (self.base,) + self.deltas

    def accepting_views(self, labels: tuple[str, ...]) -> set[str]:
        """Union of :meth:`VFilter.accepting_views` over the stack
        (each view lives in exactly one layer, so the union is exact)."""
        accepted: set[str] = set()
        for layer in self._layers():
            accepted |= layer.accepting_views(labels)
        return accepted

    # ------------------------------------------------------------------
    # Algorithm 1 over the stack
    # ------------------------------------------------------------------
    def filter(self, query: TreePattern) -> FilterResult:
        """Run Algorithm 1 against every layer and merge (see class
        docstring for why the merge is exact)."""
        base_result = self.base.filter(query)
        if not self.deltas:
            return base_result
        results = [base_result]
        results.extend(delta.filter(query) for delta in self.deltas)
        candidates: list[str] = []
        for result in results:
            candidates.extend(result.candidates)
        lists: dict[PathPattern, list[tuple[str, int]]] = {}
        for path in base_result.query_paths:
            merged: list[tuple[str, int]] = []
            for result in results:
                merged.extend(result.lists.get(path, ()))
            merged.sort(key=lambda item: (-item[1], item[0]))
            lists[path] = merged
        return FilterResult(candidates, lists, base_result.query_paths)
