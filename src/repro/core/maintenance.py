"""View maintenance under base-data updates.

The paper materializes views once; a production deployment also needs
them to survive inserts and deletes on the base document.  This module
provides *selective re-materialization*: after a subtree insert or
delete, only the views whose patterns could possibly touch the changed
region are re-evaluated.

The affected-view test is a sound over-approximation: a view's result
set can change only if some embedding of its pattern maps a pattern
node onto a changed node, which requires a pattern node whose label
subsumes some changed node's label.  Views failing that test keep their
fragments untouched; the rest are dropped and re-materialized (their
definitions are tiny, the fragments capped at 128 KiB — the paper's own
bound on re-materialization cost).

Extended Dewey codes make both operations cheap on the encoding side:

* **insert** appends the new subtree as the parent's last child, so the
  new components extend the sibling sequence and *no existing code
  changes*;
* **delete** removes codes without renumbering (components are sparse
  by construction).

Inserts whose labels violate the mined schema (a parent/child pair the
document has never contained) fall back to a full re-encode +
re-materialization, since the FST alphabet itself changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EncodingError, SchemaError
from ..matching.evaluate import evaluate
from ..matching.homomorphism import label_subsumes
from ..obs import current_trace
from ..xmltree.builder import encode_tree
from ..xmltree.dewey import (
    DeweyCode,
    assign_child_component,
    is_prefix,
    pack_component,
)
from ..xmltree.tree import XMLNode
from .system import MaterializedViewSystem
from .view import View

__all__ = ["MaintenanceReport", "DocumentEditor"]


@dataclass(slots=True)
class MaintenanceReport:
    """What one update did."""

    operation: str
    changed_nodes: int
    affected_views: list[str] = field(default_factory=list)
    skipped_views: list[str] = field(default_factory=list)
    full_reencode: bool = False


class DocumentEditor:
    """Apply base-document updates and keep materialized views fresh."""

    def __init__(self, system: MaterializedViewSystem) -> None:
        self.system = system  #: state: hard
        registry = system.telemetry.registry
        self._clock = system.telemetry.clock  #: state: hard
        #: state: counter
        self._ops_total = registry.counter(
            "repro_maintenance_total",
            "Document maintenance operations applied.",
            ("op",),
        )
        #: state: counter
        self._ops_hist = registry.histogram(
            "repro_maintenance_seconds",
            "End-to-end maintenance operation latency (edit + selective "
            "view refresh).",
            ("op",),
        )

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    #: state: mutator
    def insert_subtree(
        self, parent_code: DeweyCode, subtree: XMLNode
    ) -> MaintenanceReport:
        """Attach ``subtree`` as the last child of the node at
        ``parent_code`` and refresh affected views."""
        started = self._clock.monotonic()
        with current_trace().span("maintain", op="insert") as span:
            report = self._insert_subtree(parent_code, subtree)
            span.attributes["affected_views"] = len(report.affected_views)
            span.attributes["full_reencode"] = report.full_reencode
        self._ops_total.inc(1.0, "insert")
        self._ops_hist.observe(self._clock.monotonic() - started, "insert")
        return report

    def _insert_subtree(
        self, parent_code: DeweyCode, subtree: XMLNode
    ) -> MaintenanceReport:
        document = self.system.document
        parent = document.node_by_code(parent_code)
        if parent is None:
            raise EncodingError(f"no node at code {parent_code}")
        if subtree.parent is not None:
            raise ValueError("subtree is already attached")

        schema_ok = self._schema_admits(parent, subtree)
        parent.add_child(subtree)
        try:
            if schema_ok:
                self._encode_new_subtree(parent, subtree)
                self._invalidate_document()
            else:
                # New parent/child label pairs: the schema (and with it
                # every code) must be rebuilt.
                self._full_reencode()
        except BaseException:
            # The tree already holds the new subtree; cached plans and
            # base-data indexes must not outlive a failed encode.
            self._invalidate_document()
            raise

        changed_labels = {node.label for node in subtree.iter_subtree()}
        assert subtree.dewey is not None or not schema_ok
        target = subtree.dewey if schema_ok else None
        report = self._refresh_views(
            "insert", changed_labels, subtree.subtree_size(),
            target_code=target, force_all=not schema_ok,
        )
        report.full_reencode = not schema_ok
        return report

    #: state: mutator
    def delete_subtree(self, code: DeweyCode) -> MaintenanceReport:
        """Remove the subtree rooted at ``code`` and refresh affected
        views.  The document root cannot be deleted."""
        started = self._clock.monotonic()
        with current_trace().span("maintain", op="delete") as span:
            report = self._delete_subtree(code)
            span.attributes["affected_views"] = len(report.affected_views)
        self._ops_total.inc(1.0, "delete")
        self._ops_hist.observe(self._clock.monotonic() - started, "delete")
        return report

    def _delete_subtree(self, code: DeweyCode) -> MaintenanceReport:
        document = self.system.document
        node = document.node_by_code(code)
        if node is None:
            raise EncodingError(f"no node at code {code}")
        if node.parent is None:
            raise ValueError("cannot delete the document root")
        changed_labels = {child.label for child in node.iter_subtree()}
        size = node.subtree_size()
        node.detach()
        self._invalidate_document()
        return self._refresh_views(
            "delete", changed_labels, size, target_code=code
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _schema_admits(self, parent: XMLNode, subtree: XMLNode) -> bool:
        schema = self.system.document.schema
        try:
            schema.child_position(parent.label, subtree.label)
            for node in subtree.iter_subtree():
                for child in node.children:
                    schema.child_position(node.label, child.label)
        except SchemaError:
            return False
        return True

    def _encode_new_subtree(self, parent: XMLNode, subtree: XMLNode) -> None:
        """Assign codes to the appended subtree (existing codes keep)."""
        schema = self.system.document.schema
        siblings = parent.children
        # The last *coded* existing sibling seeds component assignment;
        # uncoded siblings (nodes attached directly to the tree, never
        # encoded) must be skipped, not indexed into.
        previous: int | None = None
        for sibling in siblings[:-1]:
            if sibling.dewey is not None:
                previous = sibling.dewey[-1]
        assert parent.dewey is not None
        assert parent.dewey_packed is not None
        component = assign_child_component(
            schema, parent.label, subtree.label, previous
        )
        subtree.dewey = parent.dewey + (component,)
        subtree.dewey_packed = parent.dewey_packed + pack_component(component)
        stack = [subtree]
        while stack:
            current = stack.pop()
            last: int | None = None
            for child in current.children:
                assert current.dewey is not None
                assert current.dewey_packed is not None
                child_component = assign_child_component(
                    schema, current.label, child.label, last
                )
                last = child_component
                child.dewey = current.dewey + (child_component,)
                child.dewey_packed = (
                    current.dewey_packed + pack_component(child_component)
                )
                stack.append(child)

    def _full_reencode(self) -> None:
        document = self.system.document
        fresh = encode_tree(document.tree)
        document.schema = fresh.schema
        document.fst = fresh.fst
        self._invalidate_document()

    def _invalidate_document(self) -> None:
        document = self.system.document
        document.tree.invalidate_indexes()
        document.invalidate()
        # Base-data indexes are stale too.  Resetting them races with a
        # concurrent lazy build in ``_ensure_node_index`` & co., so the
        # writes must take the same lock the builders hold.
        with self.system._index_lock:
            self.system._node_index = None
            self.system._path_index = None
            self.system._stream_index = None
        # Cached plans embed rewrite results over the old document;
        # drop them here rather than relying on a later _refresh_views.
        self.system._invalidate_plans()

    def _refresh_views(
        self,
        operation: str,
        changed_labels: set[str],
        changed_nodes: int,
        target_code: DeweyCode | None = None,
        force_all: bool = False,
    ) -> MaintenanceReport:
        report = MaintenanceReport(operation, changed_nodes)
        system = self.system
        # The document changed, so every cached answering plan is stale
        # (fragments, sizes and answer sets may all differ).  The
        # coverage memo carries over for untouched views (coverage
        # depends only on the patterns); touched views' entries are
        # evicted below as each is identified.
        system._invalidate_plans()
        capped: list[str] = []
        for view in list(system.materialized_views()):
            touched = force_all or self._view_touched(
                view, changed_labels, target_code
            )
            if not touched:
                report.skipped_views.append(view.view_id)
                continue
            report.affected_views.append(view.view_id)
            system._memo.evict_views([view.view_id])
            system.fragments.drop(view.view_id)
            try:
                answers = evaluate(view.pattern, system.document.tree)
                fits = system.fragments.materialize(
                    view.view_id,
                    [(n.dewey, n) for n in answers if n.dewey is not None],
                )
            except BaseException:
                # The fragments are already gone; a view left in the
                # answerable pool would rewrite queries against nothing
                # and return wrong (empty) answers.
                self._evict_views([view.view_id])
                raise
            if not fits:
                capped.append(view.view_id)
        if capped:
            # Views that outgrew the cap leave the answerable pool; the
            # filter is rebuilt over the remaining ones.
            self._evict_views(capped)
        return report

    def _evict_views(self, view_ids: list[str]) -> None:
        """Remove views from the answerable pool and rebuild VFILTER."""
        system = self.system
        system._invalidate_plans()
        system._memo.evict_views(view_ids)
        system._evict_materialized(view_ids)

    def _view_touched(
        self,
        view: View,
        changed_labels: set[str],
        target_code: DeweyCode | None,
    ) -> bool:
        """Sound over-approximation of "this view's answers OR stored
        fragments may have changed"."""
        # (a) answer-set change requires a pattern node matching a
        # changed node's label.
        for node in view.pattern.iter_nodes():
            for changed in changed_labels:
                if label_subsumes(node.label, changed):
                    return True
        # (b) fragment-content change: some stored subtree contains the
        # changed region (fragment root code prefixes the target code).
        if target_code is not None:
            for code in self.system.fragments.codes(view.view_id):
                if is_prefix(code, target_code):
                    return True
        return False
