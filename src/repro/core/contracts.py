"""Opt-in runtime contract checks for the answering pipeline.

Each check asserts an invariant the paper proves or the design relies
on, re-deriving the property from first principles (bypassing the
coverage memo and the plan cache) so that a bug in the cached fast path
cannot hide itself:

* :func:`check_document_order` — answer code sequences are strictly
  document-ordered (extended Dewey codes order lexicographically by
  document position; a duplicate or inversion means a join bug).
* :func:`check_selection_covers` — a selected view set's leaf-cover
  union equals ``LF(Q)`` exactly and some unit provides ``Δ``
  (paper Section IV-A criterion).
* :func:`check_vfilter_sound` — every materialized view VFILTER
  dropped has *no* coverage unit for the query, i.e. filtering never
  discards a usable view (the paper's filtering soundness lemma).
* :func:`check_plan_consistency` — a cache-served plan structurally
  equals a freshly derived one: same selected view ids and the same
  answer codes (or, for cached negatives, a fresh derivation also
  fails).  Catches stale cache entries that survived a missing
  ``_invalidate_plans()`` call.

The layer is **off by default**: every hook tests :func:`enabled`,
which reads ``XMVR_CHECK`` per call, so production pays one dict
lookup per site.  ``tests/conftest.py`` turns it on for the whole
suite.  Plan consistency re-runs filtering, selection and rewriting,
so warm answers only re-derive every ``XMVR_CHECK_SAMPLE``-th hit
(default 8, deterministic — no wall clock or randomness, per lint
rule L4).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..xmltree.dewey import DeweyCode
    from ..xpath.pattern import TreePattern
    from .plancache import PlanEntry
    from .selection import Selection
    from .system import MaterializedViewSystem, RegistryEpoch
    from .vfilter import FilterResult
    from .view import View

__all__ = [
    "ContractViolation",
    "enabled",
    "sample_every",
    "check_document_order",
    "check_selection_covers",
    "check_vfilter_sound",
    "check_plan_consistency",
    "check_patched_fragments",
]


class ContractViolation(ReproError):
    """An internal invariant failed under ``XMVR_CHECK=1``.

    Always a library bug, never a caller error: the offending state is
    described in the message so the failing invariant can be replayed.
    """


def enabled() -> bool:
    """Whether contract checking is on (``XMVR_CHECK=1``).

    Read from the environment on every call so tests can flip it
    per-case; the lookup is one dict probe.
    """
    return os.environ.get("XMVR_CHECK") == "1"


def sample_every() -> int:
    """Check every Nth warm plan-cache hit (``XMVR_CHECK_SAMPLE``)."""
    raw = os.environ.get("XMVR_CHECK_SAMPLE", "8")
    try:
        value = int(raw)
    except ValueError:
        return 8
    return max(1, value)


# ----------------------------------------------------------------------
# individual contracts
# ----------------------------------------------------------------------
def check_document_order(
    codes: Sequence["DeweyCode"], context: str
) -> None:
    """Answer codes must be strictly increasing (document order,
    no duplicates)."""
    for index in range(1, len(codes)):
        if not codes[index - 1] < codes[index]:
            raise ContractViolation(
                f"{context}: answer codes not strictly document-ordered "
                f"at position {index}: {codes[index - 1]!r} !< "
                f"{codes[index]!r}"
            )


def check_selection_covers(
    selection: "Selection", pattern: "TreePattern", context: str
) -> None:
    """The selected set's coverage union must equal ``LF(Q)`` with a
    Δ provider — recomputed from the raw patterns, not the memo."""
    from .leaf_cover import coverage_units, obligations_of

    needed = obligations_of(pattern)
    covered: set = set()
    has_delta = False
    for view in selection.views:
        for unit in coverage_units(view, pattern):
            covered.update(unit.covered)
            has_delta = has_delta or unit.provides_delta
    missing = needed - covered
    if missing:
        labels = sorted(str(obligation) for obligation in missing)
        raise ContractViolation(
            f"{context}: selection {selection.view_ids} does not cover "
            f"LF(Q); missing obligations {labels}"
        )
    if not has_delta:
        raise ContractViolation(
            f"{context}: selection {selection.view_ids} has no Δ provider"
        )


def check_vfilter_sound(
    pattern: "TreePattern",
    filter_result: "FilterResult",
    views: Iterable,
    context: str,
) -> None:
    """Every materialized view VFILTER dropped must be genuinely
    unusable: no coverage unit for the query (the filtering lemma)."""
    from .leaf_cover import coverage_units

    candidates = set(filter_result.candidates)
    for view in views:
        if view.view_id in candidates:
            continue
        units = coverage_units(view, pattern)
        if units:
            raise ContractViolation(
                f"{context}: VFILTER dropped view {view.view_id!r} which "
                f"has {len(units)} usable coverage unit(s) for the query"
            )


def check_plan_consistency(
    system: "MaterializedViewSystem",
    entry: "PlanEntry",
    strategy: str,
    context: str,
    epoch: "RegistryEpoch | None" = None,
) -> None:
    """A cache-served plan must structurally match a fresh derivation.

    Re-runs filtering + selection without the coverage memo and, for
    positive plans, a fresh rewrite without the plan cache; compares
    selected view ids and answer codes.  A mismatch means the cache
    held a plan for a different view pool or document state — i.e. an
    ``_invalidate_plans()`` call was missed somewhere.

    ``epoch`` pins the registry state for the re-derivation; the
    answering path passes the epoch the cached plan came from so a
    registration landing between answer and check cannot produce a
    false stale-plan report.
    """
    from .rewrite import rewrite
    from ..errors import ViewNotAnswerableError

    try:
        _, fresh_selection = system._derive_selection(
            entry.pattern, strategy, units_fn=None, epoch=epoch
        )
    except ViewNotAnswerableError as fresh_error:
        if entry.error is None:
            raise ContractViolation(
                f"{context}: cached plan selects {entry.selection.view_ids}"
                f" but a fresh derivation fails ({fresh_error}); stale "
                f"positive plan entry"
            ) from fresh_error
        return
    if entry.error is not None:
        raise ContractViolation(
            f"{context}: cached plan replays ViewNotAnswerableError but a "
            f"fresh derivation selects {fresh_selection.view_ids}; stale "
            f"negative plan entry"
        )

    assert entry.selection is not None
    cached_ids = sorted(entry.selection.view_ids)
    fresh_ids = sorted(fresh_selection.view_ids)
    if cached_ids != fresh_ids:
        raise ContractViolation(
            f"{context}: cached plan selects {cached_ids} but a fresh "
            f"derivation selects {fresh_ids}; stale plan entry"
        )

    fresh_result = rewrite(
        fresh_selection,
        entry.pattern,
        system.fragments,
        system.document.schema,
        system.document.fst,
    )
    cached_result = entry.result
    if cached_result is None:
        cached_result = rewrite(
            entry.selection,
            entry.pattern,
            system.fragments,
            system.document.schema,
            system.document.fst,
        )
    if list(cached_result.codes) != list(fresh_result.codes):
        raise ContractViolation(
            f"{context}: cached plan yields {len(cached_result.codes)} "
            f"answer code(s) but a fresh rewrite yields "
            f"{len(fresh_result.codes)}; stale plan entry"
        )


def check_patched_fragments(
    system: "MaterializedViewSystem", view: "View", context: str
) -> None:
    """A delta-patched fragment set must be *byte-identical* to a full
    re-materialization of the view over the live document.

    Re-evaluates the pattern from scratch (no delta, no restricted
    universe), encodes the answers exactly as
    :meth:`FragmentStore.materialize` would, and compares the stored
    payload bytes one-for-one.  Any divergence — a missed splice, an
    un-re-encoded ancestor fragment, an ordering slip — is a patcher
    bug, never a caller error.
    """
    from ..matching.evaluate import evaluate
    from ..storage.serialize import encode_dewey, encode_fragment

    answers = evaluate(view.pattern, system.document.tree)
    entries = sorted(
        ((node.dewey, node) for node in answers if node.dewey is not None),
        key=lambda item: item[0],
    )
    expected = [
        encode_dewey(code) + encode_fragment(node) for code, node in entries
    ]
    if sum(len(payload) for payload in expected) > system.fragments.cap_bytes:
        raise ContractViolation(
            f"{context}: view {view.view_id!r} exceeds the fragment cap "
            f"when re-materialized fresh, but the delta patch kept it"
        )
    actual = [
        fragment.payload
        for fragment in system.fragments.fragments(view.view_id)
    ]
    if actual != expected:
        raise ContractViolation(
            f"{context}: view {view.view_id!r} patched fragments diverge "
            f"from a full re-materialization ({len(actual)} stored vs "
            f"{len(expected)} expected payloads)"
        )
