"""Fragment refinement — "pushing selection" (paper Section V).

Before joining, each selected view's materialized fragments are filtered
by the view's *compensating pattern*: the query subtree rooted at the
unit's anchor ``h(RET(V))``, re-anchored at the fragment root.  A
fragment surviving refinement is guaranteed to satisfy every query
predicate at or below the anchor.

Paper optimization (case 1): when the compensating pattern is already
implied by the view's own return subtree — an anchored homomorphism from
the compensating pattern into ``subtree(V, RET(V))`` — every fragment
satisfies it by construction and evaluation is skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..matching.evaluate import satisfies_relative
from ..matching.homomorphism import subtree_maps_to
from ..storage.fragments import Fragment
from ..xpath.pattern import TreePattern
from .leaf_cover import CoverageUnit

__all__ = [
    "RefinedUnit",
    "compensating_pattern",
    "compensation_plan",
    "refine_unit",
]


@dataclass(slots=True)
class RefinedUnit:
    """A selection unit with its surviving fragments.

    ``fragments`` stay sorted by Dewey code (document order), as the
    holistic join requires.  ``skipped`` records whether the paper's
    case-1 optimization applied (no per-fragment evaluation).
    """

    unit: CoverageUnit
    pattern: TreePattern  # compensating pattern at the anchor
    fragments: list[Fragment]
    skipped: bool


def compensating_pattern(unit: CoverageUnit, query: TreePattern) -> TreePattern:
    """The query subtree at the unit's anchor, re-anchored for fragment
    evaluation.  When the anchor is an ancestor-or-self of ``RET(Q)``
    the copy keeps the answer node marked, so the same pattern later
    drives extraction."""
    anchor = unit.anchor
    ret = query.ret if anchor.is_ancestor_or_self_of(query.ret) else None
    return query.subtree_at(anchor, ret=ret)


def compensation_plan(
    unit: CoverageUnit, query: TreePattern
) -> tuple[TreePattern, bool]:
    """The per-unit refinement plan: the compensating pattern plus
    whether the paper's case-1 optimization applies (the view's own
    return subtree implies the pattern, so per-fragment evaluation is
    skipped).  Pure in the two patterns — memoizable across calls."""
    pattern = compensating_pattern(unit, query)
    skipped = subtree_maps_to(pattern.root, unit.view.pattern.ret)
    return pattern, skipped


def refine_unit(
    unit: CoverageUnit,
    query: TreePattern,
    fragments: list[Fragment],
    plan: tuple[TreePattern, bool] | None = None,
) -> RefinedUnit:
    """Apply the compensating pattern to a unit's fragments.

    ``plan`` replays a previously computed :func:`compensation_plan`
    (the hot path threads a memo through here).
    """
    pattern, skipped = plan if plan is not None else compensation_plan(unit, query)
    if skipped:
        return RefinedUnit(unit, pattern, list(fragments), True)
    surviving = [
        fragment
        for fragment in fragments
        if satisfies_relative(pattern, fragment.root, fragment.subtree_index())
    ]
    return RefinedUnit(unit, pattern, surviving, False)
