"""Query plan cache for the hot answering path.

The ROADMAP's north star is serving heavy repeated traffic, but the
paper's pipeline re-derives everything per call: parse, VFILTER,
homomorphism enumeration, set cover, rewrite.  For a query string seen
one millisecond earlier all of that work is identical.  This module
holds the derived artifacts between calls:

* :class:`PlanCache` — a bounded LRU mapping a query pattern's
  *canonical string* (order-insensitive, answer-node-marked — see
  :meth:`~repro.xpath.pattern.TreePattern.canonical_string`) and a
  strategy to a frozen :class:`PlanEntry`: the interned pattern object,
  the ``(FilterResult, Selection)`` pair the cold run produced, and —
  once the rewrite stage has run — the :class:`RewriteResult` itself.
  Unanswerable queries are cached negatively (the
  :class:`~repro.errors.ViewNotAnswerableError` is replayed), so
  repeated misses are as cheap as repeated hits.

**Invalidation.**  A cached plan is valid only while the view pool and
the base document are unchanged: ``register_view`` can extend the
candidate sets, and a maintenance insert/delete changes fragments and
answers.  View-pool changes publish a fresh epoch (and with it a fresh
cache), so the blanket :meth:`PlanCache.clear` handles them trivially.
Document edits are *scoped*: each entry records the view ids its plan
depends on (the VFILTER candidate set united with the selected views —
a superset of everything the rewrite read), and
:meth:`PlanCache.invalidate_views` drops exactly the entries whose
dependencies intersect the edit's affected views, plus entries with no
recorded filter provenance (``None`` — e.g. the MN strategy, which
skips VFILTER).  Negative entries depend on no fragments — edits never
change answerability, which is a function of the view *patterns* — so
they carry an empty dependency set and survive edits.  The
coverage memo (:class:`~repro.core.leaf_cover.CoverageMemo`) is *not*
cleared on document updates — coverage is a pure function of the view
and query patterns, and view ids are never redefined within a system's
lifetime.

Interning: :class:`CoverageUnit` objects reference query pattern nodes
by identity (``Obligation.node_id`` is an ``id()``), so cached plans are
only meaningful together with the exact pattern object they were derived
from.  Entries therefore carry that pattern, and warm runs use it for
the rewrite stage instead of the caller's freshly parsed copy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..errors import ViewNotAnswerableError
from ..xpath.pattern import TreePattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rewrite import RewriteResult
    from .selection import Selection
    from .vfilter import FilterResult

__all__ = ["PlanCache", "PlanEntry"]

#: Default maximum number of cached ``(query, strategy)`` plans.
DEFAULT_PLAN_CACHE_SIZE = 1024


@dataclass(slots=True)
class PlanEntry:
    """One frozen answering plan for a ``(query, strategy)`` pair.

    Exactly one of ``selection`` / ``error`` is set.  ``result`` is
    filled in lazily after the first rewrite over this plan, so warm
    repeats skip the refine → join → extract stage as well.
    """

    pattern: TreePattern
    filter_result: "FilterResult | None" = None
    selection: "Selection | None" = None
    error: ViewNotAnswerableError | None = None
    result: "RewriteResult | None" = None

    def replay_error(self) -> ViewNotAnswerableError:
        """A fresh exception equivalent to the cached negative outcome
        (never re-raise the stored instance: tracebacks would chain)."""
        assert self.error is not None
        return ViewNotAnswerableError(
            str(self.error), uncovered=self.error.uncovered
        )

    def view_dependencies(self) -> frozenset[str] | None:
        """View ids this plan's validity depends on.

        * negative plans: the empty set — answerability depends only on
          the view patterns, never on fragments, so edits keep them;
        * plans with no recorded :class:`FilterResult` (the MN strategy
          runs without VFILTER): ``None``, meaning "assume everything"
          — scoped invalidation always drops them;
        * positive plans: the VFILTER candidate set united with the
          selected view ids — a superset of every view whose fragments
          or statistics the derivation could have read.
        """
        if self.error is not None:
            return frozenset()
        if self.filter_result is None:
            return None
        deps = set(self.filter_result.candidates)
        if self.selection is not None:
            deps.update(self.selection.view_ids)
        return frozenset(deps)


@dataclass(slots=True)
class PlanCacheStats:
    """Counters exposed through ``MaterializedViewSystem.stats()``."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: Scoped (per-edit) invalidation events and their outcomes.
    scoped_invalidations: int = 0
    plans_dropped: int = 0
    plans_retained: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "scoped_invalidations": self.scoped_invalidations,
            "plans_dropped": self.plans_dropped,
            "plans_retained": self.plans_retained,
        }

    def absorb(self, other: "PlanCacheStats") -> None:
        """Fold another counter set into this one (epoch retirement:
        the system accumulates the stats of every retired epoch's cache
        so ``stats()`` stays cumulative across registrations)."""
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.evictions += other.evictions
        self.scoped_invalidations += other.scoped_invalidations
        self.plans_dropped += other.plans_dropped
        self.plans_retained += other.plans_retained


class PlanCache:
    """Bounded LRU of :class:`PlanEntry` keyed by (canonical, strategy).

    Thread-safe: the service layer answers queries from many threads
    against one epoch's cache, so every operation (including the LRU
    bookkeeping inside :meth:`get`) runs under an internal mutex.  The
    lock is uncontended in single-threaded use and never held across
    plan derivation — only across the dict bookkeeping itself.
    """

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self.maxsize = maxsize  #: state: hard
        #: guarded-by: _lock
        #: state: soft(derived-from=MaterializedViewSystem.document; rebuild=_derive_selection)
        self._entries: OrderedDict[tuple[str, str], PlanEntry] = OrderedDict()
        # Dependency index for scoped invalidation, kept in lockstep
        # with _entries (weak edges: the index is bookkeeping over the
        # entries, rebuilt entry-by-entry as put() re-derives them).
        #: guarded-by: _lock
        #: state: soft(derived-from=_entries?; rebuild=put)
        self._deps: dict[tuple[str, str], frozenset[str] | None] = {}
        #: guarded-by: _lock
        #: state: soft(derived-from=_entries?; rebuild=put)
        self._by_view: dict[str, set[tuple[str, str]]] = {}
        #: guarded-by: _lock
        #: state: soft(derived-from=_entries?; rebuild=put)
        self._all_deps: set[tuple[str, str]] = set()
        self._lock = threading.Lock()
        #: guarded-by: _lock (writes)
        #: state: counter
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, query_key: str, strategy: str) -> PlanEntry | None:
        """Return the cached plan and count the hit/miss."""
        with self._lock:
            entry = self._entries.get((query_key, strategy))
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end((query_key, strategy))
            self.stats.hits += 1
            return entry

    def put(self, query_key: str, strategy: str, entry: PlanEntry) -> None:
        if not self.enabled:
            return
        key = (query_key, strategy)
        deps = entry.view_dependencies()
        with self._lock:
            if key in self._entries:
                self._unindex(key)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                victim, _ = self._entries.popitem(last=False)
                self._unindex(victim)
                self.stats.evictions += 1
            self._index(key, deps)

    def _index(self, key: tuple[str, str], deps: frozenset[str] | None) -> None:
        self._deps[key] = deps
        if deps is None:
            self._all_deps.add(key)
            return
        for view_id in deps:
            self._by_view.setdefault(view_id, set()).add(key)

    def _unindex(self, key: tuple[str, str]) -> None:
        deps = self._deps.pop(key, None)
        self._all_deps.discard(key)
        if deps:
            for view_id in deps:
                bucket = self._by_view.get(view_id)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        self._by_view.pop(view_id, None)

    def clear(self) -> int:
        """Drop every plan (view-pool change or blanket fallback);
        returns how many entries were dropped."""
        with self._lock:
            dropped = len(self._entries)
            if self._entries:
                self.stats.invalidations += 1
            self._entries = OrderedDict()
            self._deps = {}
            self._by_view = {}
            self._all_deps = set()
            return dropped

    def invalidate_views(self, view_ids: Iterable[str]) -> tuple[int, int]:
        """Scoped invalidation for a document edit affecting exactly
        ``view_ids``: drop the entries whose dependencies intersect the
        set — plus every entry with no recorded provenance (``None``
        dependencies) — and keep the rest warm.  Returns
        ``(dropped, retained)``.
        """
        with self._lock:
            doomed = set(self._all_deps)
            for view_id in view_ids:
                doomed |= self._by_view.get(view_id, set())
            survivors = OrderedDict(
                (key, entry)
                for key, entry in self._entries.items()
                if key not in doomed
            )
            dropped = len(self._entries) - len(survivors)
            self._entries = survivors
            for key in doomed:
                self._unindex(key)
            self.stats.scoped_invalidations += 1
            self.stats.plans_dropped += dropped
            self.stats.plans_retained += len(survivors)
            return dropped, len(survivors)

    def stats_dict(self) -> dict[str, int]:
        """A consistent snapshot of the counters."""
        with self._lock:
            return self.stats.as_dict()

    def snapshot(self) -> tuple[dict[str, int], int]:
        """Counters *and* entry count captured under one lock hold, so
        a caller assembling a stats payload cannot observe a hit total
        from one instant and a size from another."""
        with self._lock:
            return self.stats.as_dict(), len(self._entries)
