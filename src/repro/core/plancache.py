"""Query plan cache for the hot answering path.

The ROADMAP's north star is serving heavy repeated traffic, but the
paper's pipeline re-derives everything per call: parse, VFILTER,
homomorphism enumeration, set cover, rewrite.  For a query string seen
one millisecond earlier all of that work is identical.  This module
holds the derived artifacts between calls:

* :class:`PlanCache` — a bounded LRU mapping a query pattern's
  *canonical string* (order-insensitive, answer-node-marked — see
  :meth:`~repro.xpath.pattern.TreePattern.canonical_string`) and a
  strategy to a frozen :class:`PlanEntry`: the interned pattern object,
  the ``(FilterResult, Selection)`` pair the cold run produced, and —
  once the rewrite stage has run — the :class:`RewriteResult` itself.
  Unanswerable queries are cached negatively (the
  :class:`~repro.errors.ViewNotAnswerableError` is replayed), so
  repeated misses are as cheap as repeated hits.

**Invalidation.**  A cached plan is valid only while the view pool and
the base document are unchanged: ``register_view`` can extend the
candidate sets, and a maintenance insert/delete changes fragments and
answers.  :class:`MaterializedViewSystem` therefore clears the whole
cache on every such mutation (see ``_invalidate_plans``); entries never
survive a mutation, which keeps the invariant trivial to audit.  The
coverage memo (:class:`~repro.core.leaf_cover.CoverageMemo`) is *not*
cleared on document updates — coverage is a pure function of the view
and query patterns, and view ids are never redefined within a system's
lifetime.

Interning: :class:`CoverageUnit` objects reference query pattern nodes
by identity (``Obligation.node_id`` is an ``id()``), so cached plans are
only meaningful together with the exact pattern object they were derived
from.  Entries therefore carry that pattern, and warm runs use it for
the rewrite stage instead of the caller's freshly parsed copy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import ViewNotAnswerableError
from ..xpath.pattern import TreePattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .rewrite import RewriteResult
    from .selection import Selection
    from .vfilter import FilterResult

__all__ = ["PlanCache", "PlanEntry"]

#: Default maximum number of cached ``(query, strategy)`` plans.
DEFAULT_PLAN_CACHE_SIZE = 1024


@dataclass(slots=True)
class PlanEntry:
    """One frozen answering plan for a ``(query, strategy)`` pair.

    Exactly one of ``selection`` / ``error`` is set.  ``result`` is
    filled in lazily after the first rewrite over this plan, so warm
    repeats skip the refine → join → extract stage as well.
    """

    pattern: TreePattern
    filter_result: "FilterResult | None" = None
    selection: "Selection | None" = None
    error: ViewNotAnswerableError | None = None
    result: "RewriteResult | None" = None

    def replay_error(self) -> ViewNotAnswerableError:
        """A fresh exception equivalent to the cached negative outcome
        (never re-raise the stored instance: tracebacks would chain)."""
        assert self.error is not None
        return ViewNotAnswerableError(
            str(self.error), uncovered=self.error.uncovered
        )


@dataclass(slots=True)
class PlanCacheStats:
    """Counters exposed through ``MaterializedViewSystem.stats()``."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }

    def absorb(self, other: "PlanCacheStats") -> None:
        """Fold another counter set into this one (epoch retirement:
        the system accumulates the stats of every retired epoch's cache
        so ``stats()`` stays cumulative across registrations)."""
        self.hits += other.hits
        self.misses += other.misses
        self.invalidations += other.invalidations
        self.evictions += other.evictions


class PlanCache:
    """Bounded LRU of :class:`PlanEntry` keyed by (canonical, strategy).

    Thread-safe: the service layer answers queries from many threads
    against one epoch's cache, so every operation (including the LRU
    bookkeeping inside :meth:`get`) runs under an internal mutex.  The
    lock is uncontended in single-threaded use and never held across
    plan derivation — only across the dict bookkeeping itself.
    """

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self.maxsize = maxsize  #: state: hard
        #: guarded-by: _lock
        #: state: soft(derived-from=MaterializedViewSystem.document; rebuild=_derive_selection)
        self._entries: OrderedDict[tuple[str, str], PlanEntry] = OrderedDict()
        self._lock = threading.Lock()
        #: guarded-by: _lock (writes)
        #: state: counter
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, query_key: str, strategy: str) -> PlanEntry | None:
        """Return the cached plan and count the hit/miss."""
        with self._lock:
            entry = self._entries.get((query_key, strategy))
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end((query_key, strategy))
            self.stats.hits += 1
            return entry

    def put(self, query_key: str, strategy: str, entry: PlanEntry) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[(query_key, strategy)] = entry
            self._entries.move_to_end((query_key, strategy))
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every plan (view pool or base document changed)."""
        with self._lock:
            if self._entries:
                self.stats.invalidations += 1
                self._entries.clear()

    def stats_dict(self) -> dict[str, int]:
        """A consistent snapshot of the counters."""
        with self._lock:
            return self.stats.as_dict()

    def snapshot(self) -> tuple[dict[str, int], int]:
        """Counters *and* entry count captured under one lock hold, so
        a caller assembling a stats payload cannot observe a hit total
        from one instant and a size from another."""
        with self._lock:
            return self.stats.as_dict(), len(self._entries)
