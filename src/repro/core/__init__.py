"""Core contribution: VFILTER, multiple-view selection, rewriting."""

from .leaf_cover import (
    DELTA,
    CoverageMemo,
    CoverageUnit,
    Obligation,
    coverage_units,
    covers_query,
    leaf_cover_labels,
    obligations_of,
    view_coverage,
)
from .plancache import PlanCache, PlanEntry
from .nfa import AcceptEntry, PathNFA
from .refine import RefinedUnit, compensating_pattern, refine_unit
from .rewrite import RewriteResult, reencode_fragment, rewrite
from .contained import ContainedResult, maximal_contained_rewriting
from .explain import QueryExplanation, ViewExplanation, explain_query
from .selection import (
    Selection,
    select_cost_based,
    select_heuristic,
    select_minimum,
)
from .system import AnswerOutcome, MaterializedViewSystem
from .twig_join import anchor_instantiations, join_units
from .vfilter import FilterResult, VFilter
from .view import View

__all__ = [
    "AcceptEntry",
    "AnswerOutcome",
    "CoverageMemo",
    "CoverageUnit",
    "DELTA",
    "FilterResult",
    "PlanCache",
    "PlanEntry",
    "MaterializedViewSystem",
    "Obligation",
    "PathNFA",
    "RefinedUnit",
    "RewriteResult",
    "Selection",
    "VFilter",
    "View",
    "anchor_instantiations",
    "compensating_pattern",
    "coverage_units",
    "covers_query",
    "join_units",
    "leaf_cover_labels",
    "obligations_of",
    "reencode_fragment",
    "refine_unit",
    "rewrite",
    "ContainedResult",
    "QueryExplanation",
    "ViewExplanation",
    "explain_query",
    "maximal_contained_rewriting",
    "select_cost_based",
    "select_heuristic",
    "select_minimum",
    "view_coverage",
]
