"""Parallel view materialization (process-pool registration fast path).

Registering 1000+ views dominates benchmark setup: each view's pattern
is evaluated against the whole base tree and every answer subtree is
serialized.  That work is embarrassingly parallel and pure, so
``MaterializedViewSystem.register_views`` can farm it out to a
``concurrent.futures`` process pool.

The payload shipped to each worker is small and picklable:

* once per worker (pool initializer): the base document as one
  fragment-encoded byte string plus its pickled schema.  The worker
  rebuilds the tree and re-runs :func:`repro.xmltree.builder.encode_tree`
  — Dewey assignment and schema mining are deterministic in document
  order, so worker-side codes are identical to the parent's (a test
  asserts serial/parallel equivalence end to end);
* per batch: ``(view_id, xpath)`` string pairs and the fragment cap.

Each worker returns, per view, the already-encoded fragment payloads in
code order (each ``encode_dewey(code) + encode_fragment(subtree)``,
exactly what :meth:`FragmentStore.materialize` would have produced), or
``None`` when the view overflows the cap — bounding the bytes sent back
over IPC at roughly the cap per view.  The parent only stores bytes and
updates VFILTER; it never re-evaluates.

When the pool cannot be created or dies (sandboxes without fork/spawn
support, single-core boxes, pickling regressions), callers fall back to
the serial path — the pool work is pure, so nothing has been registered
yet and the fallback starts from a clean slate.
"""

from __future__ import annotations

import os
import pickle

from ..matching.evaluate import evaluate
from ..storage.serialize import decode_fragment, encode_dewey, encode_fragment
from ..xmltree.builder import EncodedDocument, encode_tree
from ..xmltree.tree import XMLTree
from ..xpath.parser import parse_xpath

__all__ = [
    "MIN_PARALLEL_VIEWS",
    "default_workers",
    "document_payload",
    "evaluate_views_parallel",
]

#: Below this many views the pool's startup cost wins; stay serial.
MIN_PARALLEL_VIEWS = 16

#: Per-worker document handle, set by the pool initializer.
_WORKER_DOCUMENT: EncodedDocument | None = None


def default_workers() -> int:
    """Worker count honoring ``REPRO_REGISTER_WORKERS`` (0 = serial)."""
    env = os.environ.get("REPRO_REGISTER_WORKERS")
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            return 0
    return os.cpu_count() or 1


def document_payload(document: EncodedDocument) -> tuple[bytes, bytes]:
    """Serialize a document for shipping to pool workers."""
    return (
        encode_fragment(document.tree.root),
        pickle.dumps(document.schema, protocol=pickle.HIGHEST_PROTOCOL),
    )


def _init_worker(tree_payload: bytes, schema_blob: bytes) -> None:
    global _WORKER_DOCUMENT
    root, _ = decode_fragment(tree_payload, 0)
    schema = pickle.loads(schema_blob)
    _WORKER_DOCUMENT = encode_tree(XMLTree(root), schema)


def _materialize_batch(
    batch: list[tuple[str, str]], cap_bytes: int
) -> list[tuple[str, list[bytes] | None]]:
    """Evaluate a batch of views in the worker; returns encoded
    fragment payloads in code order, or None for a capped view."""
    assert _WORKER_DOCUMENT is not None, "pool initializer did not run"
    results: list[tuple[str, list[bytes] | None]] = []
    for view_id, expression in batch:
        pattern = parse_xpath(expression)
        answers = evaluate(pattern, _WORKER_DOCUMENT.tree)
        entries = sorted(
            (node.dewey, node) for node in answers if node.dewey is not None
        )
        payloads: list[bytes] | None = []
        total = 0
        for code, node in entries:
            payload = encode_dewey(code) + encode_fragment(node)
            total += len(payload)
            if total > cap_bytes:
                payloads = None
                break
            payloads.append(payload)
        results.append((view_id, payloads))
    return results


def evaluate_views_parallel(
    document: EncodedDocument,
    expressions: list[tuple[str, str]],
    cap_bytes: int,
    workers: int,
) -> dict[str, list[bytes] | None]:
    """Evaluate + encode all views in a process pool.

    Returns ``{view_id: payloads_or_None}`` for every input view, in no
    particular order.  Raises on any pool failure; callers catch and
    fall back to the serial path (no side effects have happened).
    """
    from concurrent.futures import ProcessPoolExecutor

    tree_payload, schema_blob = document_payload(document)
    # Batches ~4× the worker count balance scheduling against IPC.
    batch_count = max(1, min(len(expressions), workers * 4))
    step = (len(expressions) + batch_count - 1) // batch_count
    batches = [
        expressions[start : start + step]
        for start in range(0, len(expressions), step)
    ]
    results: dict[str, list[bytes] | None] = {}
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(tree_payload, schema_blob),
    ) as pool:
        futures = [
            pool.submit(_materialize_batch, batch, cap_bytes)
            for batch in batches
        ]
        for future in futures:
            for view_id, payloads in future.result():
                results[view_id] = payloads
    return results
