"""Holistic join of refined view fragments on extended Dewey codes
(paper Section V; in the spirit of TJFast [22]).

Joining never touches base data: each fragment root's Dewey code yields,
through the FST, its complete root-to-node *label path*, and every
prefix of the code denotes a concrete ancestor.  The join therefore has
everything it needs to verify the query's **upper skeleton** — the query
nodes on the paths from the root to the units' anchors:

* every skeleton node is assigned a concrete code (a prefix of some
  fragment root's code);
* an anchor node is assigned its unit's fragment root;
* a ``/``-edge forces parent/child codes, a ``//``-edge a proper prefix;
* the assigned code's label (FST-derived) must satisfy the query node's
  label test;
* skeleton nodes shared between units must receive the *same* code —
  this is exactly what Example 4.2 of the paper shows is necessary (two
  ``d`` nodes under different ``b`` parents must not join).

The solver is a backtracking CSP over units ordered by anchor depth,
using binary search over each unit's code-sorted fragment list to
enumerate only roots inside the Dewey range of the deepest already
assigned ancestor (:func:`repro.xmltree.dewey.descendant_range_key`).

The public entry point returns, for a designated extraction unit (the
Δ-view), the fragments that participate in at least one full join — the
set the compensating query then extracts answers from.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ..xmltree.dewey import DeweyCode, descendant_range_key
from ..xmltree.fst import FiniteStateTransducer
from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern
from .refine import RefinedUnit

__all__ = ["join_units", "anchor_instantiations"]


def _label_ok(pattern_label: str, concrete_label: str) -> bool:
    return pattern_label == WILDCARD or pattern_label == concrete_label


def anchor_instantiations(
    path_nodes: list[PatternNode],
    code: DeweyCode,
    labels: tuple[str, ...],
    assignment: dict[int, DeweyCode],
) -> list[dict[int, DeweyCode]]:
    """All ways to place a query root-to-anchor path onto one concrete
    root-to-node chain.

    ``path_nodes`` is the query path (root first, anchor last); ``code``
    the fragment root's Dewey code and ``labels`` its FST-decoded label
    path (same length).  ``assignment`` holds already fixed skeleton
    nodes; placements must agree with it.  Returns the *new* bindings of
    each consistent placement (not including prior assignments).
    """
    results: list[dict[int, DeweyCode]] = []
    depth = len(code)

    def place(index: int, position: int, bound: dict[int, DeweyCode]) -> None:
        # position = prefix length assigned to path_nodes[index - 1].
        if index == len(path_nodes):
            if position == depth:
                results.append(dict(bound))
            return
        node = path_nodes[index]
        if node.axis is Axis.CHILD:
            candidates = [position + 1]
        else:
            candidates = list(range(position + 1, depth + 1))
        remaining = len(path_nodes) - index - 1
        fixed = assignment.get(id(node))
        for candidate in candidates:
            if candidate + remaining > depth:
                break
            if not _label_ok(node.label, labels[candidate - 1]):
                continue
            prefix = code[:candidate]
            if fixed is not None:
                # Already assigned by another unit: must coincide, and is
                # not re-recorded (the caller owns its binding).
                if fixed != prefix:
                    continue
                place(index + 1, candidate, bound)
                continue
            bound[id(node)] = prefix
            place(index + 1, candidate, bound)
            del bound[id(node)]
        return

    place(0, 0, {})
    return results


@dataclass(slots=True)
class _Participant:
    refined: RefinedUnit
    path_nodes: list[PatternNode]
    codes: list[DeweyCode]  # sorted fragment root codes


def _prepare(units: list[RefinedUnit], query: TreePattern) -> list[_Participant]:
    participants = []
    for refined in units:
        path_nodes = refined.unit.anchor.root_path()
        codes = [fragment.code for fragment in refined.fragments]
        participants.append(_Participant(refined, path_nodes, codes))
    # Deeper anchors first: they constrain the assignment the most.
    participants.sort(key=lambda p: -len(p.path_nodes))
    return participants


def _candidate_codes(
    participant: _Participant, assignment: dict[int, DeweyCode]
) -> list[DeweyCode]:
    """Fragment roots compatible with the deepest assigned ancestor."""
    anchor = participant.path_nodes[-1]
    fixed = assignment.get(id(anchor))
    if fixed is not None:
        index = bisect_left(participant.codes, fixed)
        if index < len(participant.codes) and participant.codes[index] == fixed:
            return [fixed]
        return []
    # Deepest assigned skeleton node on this unit's path bounds the root.
    bound: DeweyCode | None = None
    for node in participant.path_nodes:
        code = assignment.get(id(node))
        if code is not None and (bound is None or len(code) > len(bound)):
            bound = code
    if bound is None:
        return participant.codes
    low, high = descendant_range_key(bound)
    start = bisect_left(participant.codes, low)
    end = bisect_right(participant.codes, high)
    return participant.codes[start:end]


def join_units(
    units: list[RefinedUnit],
    query: TreePattern,
    fst: FiniteStateTransducer,
    extraction_unit: RefinedUnit,
) -> list[DeweyCode]:
    """Return the extraction unit's fragment roots that join fully.

    Every unit in ``units`` (including the extraction unit) must
    participate; a root of the extraction unit survives when some global
    assignment of the upper skeleton is consistent with one root from
    every other unit.
    """
    participants = _prepare(units, query)
    others = [p for p in participants if p.refined is not extraction_unit]
    target = next(p for p in participants if p.refined is extraction_unit)

    def solve(index: int, assignment: dict[int, DeweyCode]) -> bool:
        if index == len(others):
            return True
        participant = others[index]
        for code in _candidate_codes(participant, assignment):
            labels = fst.decode(code)
            placements = anchor_instantiations(
                participant.path_nodes, code, labels, assignment
            )
            for bound in placements:
                assignment.update(bound)
                if solve(index + 1, assignment):
                    for key in bound:
                        del assignment[key]
                    return True
                for key in bound:
                    del assignment[key]
        return False

    surviving: list[DeweyCode] = []
    for code in target.codes:
        labels = fst.decode(code)
        placements = anchor_instantiations(
            target.path_nodes, code, labels, {}
        )
        matched = False
        for bound in placements:
            if solve(0, bound):
                matched = True
                break
        if matched:
            surviving.append(code)
    return surviving
