"""Holistic join of refined view fragments on extended Dewey codes
(paper Section V; in the spirit of TJFast [22]).

Joining never touches base data: each fragment root's Dewey code yields,
through the FST, its complete root-to-node *label path*, and every
prefix of the code denotes a concrete ancestor.  The join therefore has
everything it needs to verify the query's **upper skeleton** — the query
nodes on the paths from the root to the units' anchors:

* every skeleton node is assigned a concrete code (a prefix of some
  fragment root's code);
* an anchor node is assigned its unit's fragment root;
* a ``/``-edge forces parent/child codes, a ``//``-edge a proper prefix;
* the assigned code's label (FST-derived) must satisfy the query node's
  label test;
* skeleton nodes shared between units must receive the *same* code —
  this is exactly what Example 4.2 of the paper shows is necessary (two
  ``d`` nodes under different ``b`` parents must not join).

The solver is a backtracking CSP over units ordered by anchor depth,
using binary search over each unit's code-sorted fragment list to
enumerate only roots inside the Dewey range of the deepest already
assigned ancestor (:func:`repro.xmltree.dewey.packed_descendant_range`).
All hot-loop comparisons operate on *packed* codes — order-preserving
byte strings (:func:`repro.xmltree.dewey.pack_code`) with per-fragment
precomputed prefix chains — never on int tuples.

The public entry point returns, for a designated extraction unit (the
Δ-view), the fragments that participate in at least one full join — the
set the compensating query then extracts answers from.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence, TypeVar

from ..xmltree.dewey import (
    DeweyCode,
    PackedCode,
    packed_descendant_range,
)
from ..xmltree.fst import FiniteStateTransducer
from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern
from .refine import RefinedUnit

__all__ = ["join_units", "anchor_instantiations", "instantiate_path"]

#: A concrete prefix value bound to a skeleton node — a Dewey tuple in
#: the compatibility API, a packed byte string on the hot path.
PrefixT = TypeVar("PrefixT")


def _label_ok(pattern_label: str, concrete_label: str) -> bool:
    return pattern_label == WILDCARD or pattern_label == concrete_label


def instantiate_path(
    path_nodes: list[PatternNode],
    prefixes: Sequence[PrefixT],
    labels: tuple[str, ...],
    assignment: dict[int, PrefixT],
) -> list[dict[int, PrefixT]]:
    """All ways to place a query root-to-anchor path onto one concrete
    root-to-node chain.

    ``path_nodes`` is the query path (root first, anchor last);
    ``prefixes[k - 1]`` the concrete ancestor at depth ``k`` of the
    chain (for packed codes this is
    :func:`repro.xmltree.dewey.packed_prefixes`, precomputed once per
    fragment instead of sliced per placement) and ``labels`` the chain's
    FST-decoded label path (same length).  ``assignment`` holds already
    fixed skeleton nodes; placements must agree with it.  Returns the
    *new* bindings of each consistent placement (not including prior
    assignments).
    """
    results: list[dict[int, PrefixT]] = []
    depth = len(prefixes)

    def place(index: int, position: int, bound: dict[int, PrefixT]) -> None:
        # position = prefix length assigned to path_nodes[index - 1].
        if index == len(path_nodes):
            if position == depth:
                results.append(dict(bound))
            return
        node = path_nodes[index]
        if node.axis is Axis.CHILD:
            candidates = [position + 1]
        else:
            candidates = list(range(position + 1, depth + 1))
        remaining = len(path_nodes) - index - 1
        fixed = assignment.get(id(node))
        for candidate in candidates:
            if candidate + remaining > depth:
                break
            if not _label_ok(node.label, labels[candidate - 1]):
                continue
            prefix = prefixes[candidate - 1]
            if fixed is not None:
                # Already assigned by another unit: must coincide, and is
                # not re-recorded (the caller owns its binding).
                if fixed != prefix:
                    continue
                place(index + 1, candidate, bound)
                continue
            bound[id(node)] = prefix
            place(index + 1, candidate, bound)
            del bound[id(node)]
        return

    place(0, 0, {})
    return results


def anchor_instantiations(
    path_nodes: list[PatternNode],
    code: DeweyCode,
    labels: tuple[str, ...],
    assignment: dict[int, DeweyCode],
) -> list[dict[int, DeweyCode]]:
    """Tuple-code form of :func:`instantiate_path` (assignments bind
    Dewey tuples); the hot join paths pass precomputed packed prefixes
    to :func:`instantiate_path` directly."""
    prefixes = tuple(code[:depth] for depth in range(1, len(code) + 1))
    return instantiate_path(path_nodes, prefixes, labels, assignment)


@dataclass(slots=True)
class _Participant:
    refined: RefinedUnit
    path_nodes: list[PatternNode]
    #: Sorted packed fragment root codes (byte order = document order)
    #: with the parallel per-code packed prefix chains.
    codes: list[PackedCode]
    prefixes: list[tuple[PackedCode, ...]]


def _prepare(units: list[RefinedUnit], query: TreePattern) -> list[_Participant]:
    participants = []
    for refined in units:
        path_nodes = refined.unit.anchor.root_path()
        codes = [fragment.packed for fragment in refined.fragments]
        prefixes = [fragment.prefixes for fragment in refined.fragments]
        participants.append(
            _Participant(refined, path_nodes, codes, prefixes)
        )
    # Deeper anchors first: they constrain the assignment the most.
    participants.sort(key=lambda p: -len(p.path_nodes))
    return participants


def _candidate_indices(
    participant: _Participant, assignment: dict[int, PackedCode]
) -> range:
    """Index range of fragment roots compatible with the deepest
    assigned ancestor (packed byte-range bisection)."""
    codes = participant.codes
    anchor = participant.path_nodes[-1]
    fixed = assignment.get(id(anchor))
    if fixed is not None:
        index = bisect_left(codes, fixed)
        if index < len(codes) and codes[index] == fixed:
            return range(index, index + 1)
        return range(0)
    # Deepest assigned skeleton node on this unit's path bounds the root
    # (longest packed code: on any chain, deeper means more bytes; any
    # assigned ancestor is a sound bound, this one is the tightest).
    bound: PackedCode | None = None
    for node in participant.path_nodes:
        code = assignment.get(id(node))
        if code is not None and (bound is None or len(code) > len(bound)):
            bound = code
    if bound is None:
        return range(len(codes))
    low, high = packed_descendant_range(bound)
    return range(bisect_left(codes, low), bisect_right(codes, high))


def join_units(
    units: list[RefinedUnit],
    query: TreePattern,
    fst: FiniteStateTransducer,
    extraction_unit: RefinedUnit,
) -> list[PackedCode]:
    """Return the extraction unit's fragment roots that join fully,
    as packed codes in document order.

    Every unit in ``units`` (including the extraction unit) must
    participate; a root of the extraction unit survives when some global
    assignment of the upper skeleton is consistent with one root from
    every other unit.
    """
    participants = _prepare(units, query)
    others = [p for p in participants if p.refined is not extraction_unit]
    target = next(p for p in participants if p.refined is extraction_unit)

    def solve(index: int, assignment: dict[int, PackedCode]) -> bool:
        if index == len(others):
            return True
        participant = others[index]
        for position in _candidate_indices(participant, assignment):
            code = participant.codes[position]
            labels = fst.decode_packed(code)
            placements = instantiate_path(
                participant.path_nodes,
                participant.prefixes[position],
                labels,
                assignment,
            )
            for bound in placements:
                assignment.update(bound)
                if solve(index + 1, assignment):
                    for key in bound:
                        del assignment[key]
                    return True
                for key in bound:
                    del assignment[key]
        return False

    surviving: list[PackedCode] = []
    for position, code in enumerate(target.codes):
        labels = fst.decode_packed(code)
        placements = instantiate_path(
            target.path_nodes, target.prefixes[position], labels, {}
        )
        matched = False
        for bound in placements:
            if solve(0, bound):
                matched = True
                break
        if matched:
            surviving.append(code)
    return surviving
