"""Standard benchmark workloads: the paper's Table III analogue.

The paper extracts four XMark test queries: ``Q1`` answered by one view,
``Q2`` and ``Q3`` by two views each, ``Q4`` by three.  The XMark-shaped
equivalents below pair each query with the *seed views* that answer it;
the seed views are registered before the large random view population so
that every test query is answerable exactly as in the paper.
"""

from __future__ import annotations

__all__ = ["TEST_QUERIES", "SEED_VIEWS", "TABLE_I_VIEWS", "TABLE_I_QUERY"]

#: Table III analogue: id → (XPath, number of views expected to answer).
TEST_QUERIES: dict[str, tuple[str, int]] = {
    # Answered by the single equivalent view W1.
    "Q1": ("//open_auction[initial]/bidder/increase", 1),
    # Needs W2a (location branch) + W2b (quantity branch).
    "Q2": ("//item[location][quantity]/description", 2),
    # Needs W3a (address branch) + W3b (age reachable under profile).
    "Q3": ("//person[address/city][profile/age]/name", 2),
    # Needs W4a + W4b + W4c (three independent branches).
    "Q4": ("//open_auction[seller][quantity][interval/start]/annotation", 3),
}

#: Views that make the test queries answerable (registered first).
SEED_VIEWS: dict[str, str] = {
    "W1": "//open_auction[initial]/bidder/increase",
    "W2a": "//item[location]/description",
    "W2b": "//item[quantity]/description",
    "W3a": "//person[address/city]/name",
    "W3b": "//person[profile/age]/name",
    "W4a": "//open_auction[seller]/annotation",
    "W4b": "//open_auction[quantity]/annotation",
    "W4c": "//open_auction[interval/start]/annotation",
}

#: The paper's Table I worked example (Section III), book.xml alphabet.
TABLE_I_VIEWS: dict[str, str] = {
    "V1": "s[t]/p",
    "V2": "s[.//f]/p",
    "V3": "s//*/t",
    "V4": "s[p]/f",
}

#: The running example query of Sections III-V.
TABLE_I_QUERY = "s[f//i][t]/p"
