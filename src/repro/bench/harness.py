"""Shared benchmark environment construction.

Building a document, materializing a thousand views and constructing
VFILTER takes seconds; benchmarks must not pay that per measurement.
:func:`build_environment` assembles (and module-level caches) one
environment per configuration, so every ``benchmarks/bench_fig*.py``
measures only the operation under study, mirroring how the paper
separates setup from the measured query/lookup/filter phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.system import MaterializedViewSystem
from ..core.vfilter import VFilter
from ..core.view import View
from ..workload.querygen import QueryGenConfig, QueryGenerator, generate_positive
from ..workload.xmark import generate_xmark_document
from ..xmltree.builder import EncodedDocument
from .workloads import SEED_VIEWS, TEST_QUERIES

__all__ = ["BenchEnvironment", "build_environment", "build_view_patterns"]

#: Paper's query-processing workload parameters (Section VI-A).
PROCESSING_CONFIG = QueryGenConfig(
    max_depth=4, prob_wild=0.2, prob_desc=0.2, num_pred=0, num_nestedpath=1
)

#: Paper's VFILTER workload parameters (Section VI-B).
FILTERING_CONFIG = QueryGenConfig(
    max_depth=4, prob_wild=0.2, prob_desc=0.2, num_pred=0, num_nestedpath=2
)


@dataclass(slots=True)
class BenchEnvironment:
    """One fully-materialized system plus its workload."""

    document: EncodedDocument
    system: MaterializedViewSystem
    view_count: int
    test_queries: dict[str, tuple[str, int]] = field(default_factory=dict)


_ENV_CACHE: dict[tuple, BenchEnvironment] = {}
_VIEW_CACHE: dict[tuple, list[View]] = {}


def build_environment(
    scale: float = 0.5,
    view_count: int = 200,
    seed: int = 42,
) -> BenchEnvironment:
    """Build (or reuse) a system with seed views + ``view_count``
    positive random views materialized."""
    key = (scale, view_count, seed)
    cached = _ENV_CACHE.get(key)
    if cached is not None:
        return cached

    document = generate_xmark_document(scale=scale, seed=seed)
    system = MaterializedViewSystem(document)
    for view_id, expression in SEED_VIEWS.items():
        system.register_view(view_id, expression)

    generator = QueryGenerator(document.schema, PROCESSING_CONFIG, seed=seed)
    patterns = generate_positive(generator, document.tree, view_count)
    # Bulk registration takes the process-pool fast path when the
    # machine has spare cores; falls back to serial transparently.
    system.register_views(
        {f"G{index}": pattern for index, pattern in enumerate(patterns)}
    )

    environment = BenchEnvironment(
        document, system, system.view_count, dict(TEST_QUERIES)
    )
    _ENV_CACHE[key] = environment
    return environment


def build_view_patterns(
    count: int,
    scale: float = 0.25,
    seed: int = 7,
) -> list[View]:
    """Generate ``count`` positive views as bare :class:`View` objects
    (no materialization) — the VFILTER scaling experiments' input.

    View sets are nested: the first 1000 of ``count=2000`` equal the
    1000-view set, matching the paper's ``V_1 ⊂ V_2 ⊂ … ⊂ V_8``.
    """
    key = (scale, seed)
    cached = _VIEW_CACHE.get(key, [])
    if len(cached) >= count:
        return cached[:count]

    # A fresh generator with the same seed reproduces the same accepted
    # stream, so generating ``count`` from scratch yields a strict
    # superset of every smaller set — the sets are nested by
    # construction, like the paper's V_1 ⊂ … ⊂ V_8.
    document = generate_xmark_document(scale=scale, seed=seed)
    generator = QueryGenerator(document.schema, FILTERING_CONFIG, seed=seed)
    patterns = generate_positive(generator, document.tree, count)
    views = [View(f"F{index}", pattern) for index, pattern in enumerate(patterns)]
    _VIEW_CACHE[key] = views
    return views
