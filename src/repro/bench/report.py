"""Plain-text tables and run provenance for benchmark output.

Each ``benchmarks/bench_fig*.py`` prints the same rows/series the
paper's figure reports; these helpers keep the formatting uniform.
:func:`run_metadata` stamps the ``BENCH_*.json`` reports with enough
provenance (git SHA, timestamp, interpreter, host) to tell two runs
apart months later.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
from typing import Sequence

__all__ = [
    "format_table",
    "print_table",
    "format_seconds",
    "format_bytes",
    "run_metadata",
]


def _git_revision() -> str:
    """``<sha>[-dirty]`` of the working tree, or ``"unknown"`` outside
    a checkout (results dirs unpacked from a tarball, CI caches)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return f"{sha}-dirty" if dirty else sha


def run_metadata() -> dict[str, str]:
    """Provenance block for a ``BENCH_*.json`` report."""
    return {
        "git_sha": _git_revision(),
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


def format_seconds(seconds: float) -> str:
    """Human scale: µs below 1 ms, ms below 1 s, else seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bytes(count: int | float) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[column]) for column, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(
                value.ljust(widths[column]) for column, value in enumerate(row)
            )
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))
