"""Plain-text tables for benchmark output.

Each ``benchmarks/bench_fig*.py`` prints the same rows/series the
paper's figure reports; these helpers keep the formatting uniform.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "print_table", "format_seconds", "format_bytes"]


def format_seconds(seconds: float) -> str:
    """Human scale: µs below 1 ms, ms below 1 s, else seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bytes(count: int | float) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"  # pragma: no cover - unreachable


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for column, value in enumerate(row):
            widths[column] = max(widths[column], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[column]) for column, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            " | ".join(
                value.ljust(widths[column]) for column, value in enumerate(row)
            )
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))
