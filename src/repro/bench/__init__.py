"""Benchmark harness: shared environments, workloads, report formatting."""

from .harness import (
    FILTERING_CONFIG,
    PROCESSING_CONFIG,
    BenchEnvironment,
    build_environment,
    build_view_patterns,
)
from .report import format_bytes, format_seconds, format_table, print_table
from .workloads import SEED_VIEWS, TABLE_I_QUERY, TABLE_I_VIEWS, TEST_QUERIES

__all__ = [
    "BenchEnvironment",
    "FILTERING_CONFIG",
    "PROCESSING_CONFIG",
    "SEED_VIEWS",
    "TABLE_I_QUERY",
    "TABLE_I_VIEWS",
    "TEST_QUERIES",
    "build_environment",
    "build_view_patterns",
    "format_bytes",
    "format_seconds",
    "format_table",
    "print_table",
]
