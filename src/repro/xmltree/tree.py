"""Unordered labeled XML tree model (paper Section II).

The paper models XML data as an unordered tree whose nodes carry labels
over a finite alphabet ``L``.  This module provides that model:

* :class:`XMLNode` — one element node with a label, optional text and
  attributes, parent/child links and (once assigned) an extended Dewey
  code (:mod:`repro.xmltree.dewey`).
* :class:`XMLTree` — the document: root access, traversal helpers and a
  label index used by the evaluation baselines.

Document order between siblings is preserved for serialization and for
deterministic Dewey assignment, but no algorithm in this library depends
on sibling order — matching semantics are those of unordered trees.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

__all__ = ["XMLNode", "XMLTree"]


class XMLNode:
    """A single element node of an :class:`XMLTree`.

    Parameters
    ----------
    label:
        Element name; the node's label over the alphabet ``L``.
    text:
        Concatenated character data directly under this element
        (surrounding whitespace stripped), or ``None``.
    attributes:
        Attribute name/value mapping; stored as a plain dict.
    """

    __slots__ = (
        "label",
        "text",
        "attributes",
        "parent",
        "children",
        "dewey",
        "dewey_packed",
    )

    def __init__(
        self,
        label: str,
        text: str | None = None,
        attributes: dict[str, str] | None = None,
    ):
        if not label:
            raise ValueError("node label must be a non-empty string")
        self.label = label
        self.text = text
        self.attributes: dict[str, str] = attributes or {}
        self.parent: XMLNode | None = None
        self.children: list[XMLNode] = []
        # Extended Dewey code, assigned by repro.xmltree.builder; a tuple
        # of ints, or None before assignment.
        self.dewey: tuple[int, ...] | None = None
        # Packed (order-preserving bytes) form of the same code, kept in
        # lockstep with ``dewey`` by every assigner.
        self.dewey_packed: bytes | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_child(self, child: "XMLNode") -> "XMLNode":
        """Append ``child`` under this node and return the child."""
        if child.parent is not None:
            raise ValueError("node already has a parent; detach it first")
        child.parent = self
        self.children.append(child)
        return child

    def new_child(
        self,
        label: str,
        text: str | None = None,
        attributes: dict[str, str] | None = None,
    ) -> "XMLNode":
        """Create a child with ``label`` and append it; return the child."""
        return self.add_child(XMLNode(label, text=text, attributes=attributes))

    def detach(self) -> "XMLNode":
        """Remove this node from its parent and return it."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def is_leaf(self) -> bool:
        """Return True when this node has no element children."""
        return not self.children

    def depth(self) -> int:
        """Return the number of edges from the root (root depth is 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def ancestors(self) -> Iterator["XMLNode"]:
        """Yield proper ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def ancestors_or_self(self) -> Iterator["XMLNode"]:
        """Yield this node, then its ancestors up to the root."""
        yield self
        yield from self.ancestors()

    def is_ancestor_of(self, other: "XMLNode") -> bool:
        """Return True when this node is a proper ancestor of ``other``."""
        return any(anc is self for anc in other.ancestors())

    def is_ancestor_or_self_of(self, other: "XMLNode") -> bool:
        """Return True when this node is ``other`` or an ancestor of it."""
        return other is self or self.is_ancestor_of(other)

    def label_path(self) -> tuple[str, ...]:
        """Return the root-to-self sequence of labels."""
        labels = [node.label for node in self.ancestors_or_self()]
        labels.reverse()
        return tuple(labels)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_subtree(self) -> Iterator["XMLNode"]:
        """Yield this node and every descendant, in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            # push reversed so children come out in document order
            stack.extend(reversed(node.children))

    def iter_descendants(self) -> Iterator["XMLNode"]:
        """Yield every proper descendant in document order."""
        iterator = self.iter_subtree()
        next(iterator)  # skip self
        yield from iterator

    def find_children(self, label: str) -> list["XMLNode"]:
        """Return the children whose label equals ``label``."""
        return [child for child in self.children if child.label == label]

    def subtree_size(self) -> int:
        """Return the number of nodes in the subtree rooted here."""
        return sum(1 for _ in self.iter_subtree())

    # ------------------------------------------------------------------
    # comparison / presentation
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "XMLNode") -> bool:
        """Unordered structural equality of the two subtrees.

        Labels, text and attributes must match; children are compared as
        multisets (order-insensitive), consistent with the unordered tree
        model of the paper.
        """
        if (
            self.label != other.label
            or self.text != other.text
            or self.attributes != other.attributes
            or len(self.children) != len(other.children)
        ):
            return False
        unmatched = list(other.children)
        for child in self.children:
            for index, candidate in enumerate(unmatched):
                if child.structurally_equal(candidate):
                    del unmatched[index]
                    break
            else:
                return False
        return True

    def canonical_signature(self) -> str:
        """Order-insensitive signature; equal iff structurally equal."""
        parts = sorted(child.canonical_signature() for child in self.children)
        attrs = ",".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
        text = self.text or ""
        return f"{self.label}[{attrs}|{text}]({';'.join(parts)})"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        code = ".".join(map(str, self.dewey)) if self.dewey else "?"
        return f"<XMLNode {self.label} dewey={code} children={len(self.children)}>"


class XMLTree:
    """An XML document: a root :class:`XMLNode` plus whole-tree helpers."""

    __slots__ = ("root", "_label_index")

    def __init__(self, root: XMLNode):
        if root.parent is not None:
            raise ValueError("tree root must not have a parent")
        self.root = root
        self._label_index: dict[str, list[XMLNode]] | None = None

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[XMLNode]:
        """Yield every node of the document in document order."""
        return self.root.iter_subtree()

    def iter_bfs(self) -> Iterator[XMLNode]:
        """Yield every node in breadth-first (level) order."""
        queue: deque[XMLNode] = deque([self.root])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(node.children)

    def size(self) -> int:
        """Return the total number of element nodes."""
        return sum(1 for _ in self.iter_nodes())

    def height(self) -> int:
        """Return the maximum node depth (root alone has height 0)."""
        return max(node.depth() for node in self.iter_nodes())

    def labels(self) -> frozenset[str]:
        """Return the document's label alphabet ``L``."""
        return frozenset(node.label for node in self.iter_nodes())

    # ------------------------------------------------------------------
    # label index
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: str) -> list[XMLNode]:
        """Return all nodes labeled ``label``, in document order.

        The first call builds a label index over the whole document; the
        index is invalidated by :meth:`invalidate_indexes`.
        """
        if self._label_index is None:
            index: dict[str, list[XMLNode]] = {}
            for node in self.iter_nodes():
                index.setdefault(node.label, []).append(node)
            self._label_index = index
        return self._label_index.get(label, [])

    def invalidate_indexes(self) -> None:
        """Drop cached indexes after a structural mutation."""
        self._label_index = None

    # ------------------------------------------------------------------
    # lookup by Dewey code
    # ------------------------------------------------------------------
    def node_at(self, dewey: tuple[int, ...]) -> XMLNode | None:
        """Return the node carrying exactly this Dewey code, or ``None``.

        Requires codes to have been assigned by the builder; descends the
        tree by matching code components.
        """
        node = self.root
        if node.dewey is None or node.dewey != dewey[:1]:
            return None
        for depth in range(2, len(dewey) + 1):
            prefix = dewey[:depth]
            for child in node.children:
                if child.dewey == prefix:
                    node = child
                    break
            else:
                return None
        return node

    def select(self, predicate: Callable[[XMLNode], bool]) -> list[XMLNode]:
        """Return all nodes satisfying ``predicate``, in document order."""
        return [node for node in self.iter_nodes() if predicate(node)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<XMLTree root={self.root.label!r} size={self.size()}>"


def build_tree(spec: object) -> XMLTree:
    """Build an :class:`XMLTree` from a nested tuple/list specification.

    The specification format, used heavily in tests, is
    ``(label, [child_spec, ...])`` or just ``label`` for a leaf::

        build_tree(("a", ["b", ("c", ["d"])]))

    Returns the constructed tree (without Dewey codes assigned).
    """

    def build(node_spec: object) -> XMLNode:
        if isinstance(node_spec, str):
            return XMLNode(node_spec)
        if isinstance(node_spec, (tuple, list)) and len(node_spec) == 2:
            label, children = node_spec
            node = XMLNode(label)
            for child_spec in children:
                node.add_child(build(child_spec))
            return node
        raise ValueError(f"bad tree specification: {node_spec!r}")

    return XMLTree(build(spec))
