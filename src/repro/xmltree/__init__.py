"""XML substrate: tree model, parser, extended Dewey codes, FST."""

from .builder import EncodedDocument, encode_tree
from .dewey import (
    DeweyCode,
    PackedCode,
    common_prefix,
    descendant_range_key,
    format_code,
    is_ancestor,
    is_ancestor_or_self,
    is_parent,
    is_prefix,
    pack_code,
    pack_component,
    packed_depth,
    packed_descendant_range,
    packed_is_prefix,
    packed_prefixes,
    parse_code,
    unpack_code,
)
from .fst import FiniteStateTransducer
from .parser import parse_xml, parse_xml_file
from .schema import DocumentSchema
from .serializer import serialize, serialize_node
from .tree import XMLNode, XMLTree, build_tree

__all__ = [
    "DeweyCode",
    "DocumentSchema",
    "EncodedDocument",
    "FiniteStateTransducer",
    "PackedCode",
    "XMLNode",
    "XMLTree",
    "build_tree",
    "common_prefix",
    "descendant_range_key",
    "encode_tree",
    "format_code",
    "is_ancestor",
    "is_ancestor_or_self",
    "is_parent",
    "is_prefix",
    "pack_code",
    "pack_component",
    "packed_depth",
    "packed_descendant_range",
    "packed_is_prefix",
    "packed_prefixes",
    "parse_code",
    "parse_xml",
    "parse_xml_file",
    "serialize",
    "serialize_node",
    "unpack_code",
]
