"""Assign extended Dewey codes to every node of a document.

:func:`encode_tree` walks the document once, mining (or accepting) a
schema and stamping each node's ``dewey`` attribute with its extended
Dewey code under the deterministic assignment rule of
:mod:`repro.xmltree.dewey`.  The returned :class:`EncodedDocument`
bundles the tree, schema and FST — the triple every downstream component
(materialization, join, baselines) operates on.
"""

from __future__ import annotations

from .dewey import DeweyCode, assign_child_component, pack_component
from .fst import FiniteStateTransducer
from .schema import DocumentSchema
from .tree import XMLNode, XMLTree

__all__ = ["EncodedDocument", "encode_tree"]


class EncodedDocument:
    """A document with extended Dewey codes assigned to every node."""

    __slots__ = ("tree", "schema", "fst", "_by_code")

    def __init__(self, tree: XMLTree, schema: DocumentSchema):
        self.tree = tree
        self.schema = schema
        self.fst = FiniteStateTransducer(schema)
        self._by_code: dict[DeweyCode, XMLNode] | None = None

    def node_by_code(self, code: DeweyCode) -> XMLNode | None:
        """Return the node carrying ``code``, building an index lazily."""
        if self._by_code is None:
            self._by_code = {
                node.dewey: node
                for node in self.tree.iter_nodes()
                if node.dewey is not None
            }
        return self._by_code.get(code)

    def note_subtree(self, root: XMLNode) -> None:
        """Patch the lazy code lookup for a freshly encoded subtree
        appended by maintenance (no-op while the index is unbuilt).
        The FST cache is untouched: scoped edits never change the
        schema, so its transitions stay valid."""
        if self._by_code is None:
            return
        for node in root.iter_subtree():
            if node.dewey is not None:
                self._by_code[node.dewey] = node

    def forget_subtree(self, root: XMLNode) -> None:
        """Patch the lazy code lookup for a detached subtree (no-op
        while the index is unbuilt)."""
        if self._by_code is None:
            return
        for node in root.iter_subtree():
            if node.dewey is not None:
                self._by_code.pop(node.dewey, None)

    def invalidate(self) -> None:
        """Drop cached lookups after re-encoding."""
        self._by_code = None
        self.fst.clear_cache()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EncodedDocument size={self.tree.size()}>"


def encode_tree(
    tree: XMLTree, schema: DocumentSchema | None = None
) -> EncodedDocument:
    """Stamp extended Dewey codes onto ``tree`` and return the bundle.

    Parameters
    ----------
    tree:
        Document to encode; its nodes' ``dewey`` attributes are set in
        place.
    schema:
        Optional pre-declared schema.  When omitted, the schema is mined
        from the document.  A declared schema must admit every
        parent/child label pair present in the document.
    """
    if schema is None:
        schema = DocumentSchema.from_tree(tree)

    tree.root.dewey = (0,)
    tree.root.dewey_packed = pack_component(0)
    # Iterative DFS; each stack entry is a node whose children still need
    # codes.  Components are assigned in sibling order.
    stack: list[XMLNode] = [tree.root]
    while stack:
        parent = stack.pop()
        previous: int | None = None
        for child in parent.children:
            component = assign_child_component(
                schema, parent.label, child.label, previous
            )
            previous = component
            assert parent.dewey is not None
            assert parent.dewey_packed is not None
            child.dewey = parent.dewey + (component,)
            child.dewey_packed = parent.dewey_packed + pack_component(component)
            stack.append(child)
    return EncodedDocument(tree, schema)
