"""Extended Dewey codes (paper Section II, after Lu et al. [22]).

An extended Dewey code is a tuple of integers, one per edge on the
root-to-node path (the root itself carries the single component ``0``).
Unlike plain Dewey codes, the numbers are chosen so that each component's
residue modulo the parent's fanout identifies the child's *label*; the
full root-to-node label path can therefore be recovered from the code
alone via the finite state transducer (:mod:`repro.xmltree.fst`) without
touching the document — the property the rewriting engine relies on.

Assignment rule (deterministic): children of a node labeled ``t`` with
fanout ``k`` receive strictly increasing numbers; a child labeled ``c``
with residue ``i = position(t, c)`` receives the smallest integer greater
than its previous sibling's number (or ≥ 0 for the first child) congruent
to ``i`` modulo ``k``.  This reproduces the paper's Figure 2 exactly
(e.g. siblings ``t,a,a,s,s`` under ``book`` with child order ``t,a,s``
receive ``0,1,4,5,8``).
"""

from __future__ import annotations

from ..errors import EncodingError
from .schema import DocumentSchema

__all__ = [
    "DeweyCode",
    "PackedCode",
    "assign_child_component",
    "format_code",
    "parse_code",
    "is_prefix",
    "is_ancestor",
    "is_ancestor_or_self",
    "common_prefix",
    "compare_codes",
    "descendant_range_key",
    "pack_code",
    "pack_component",
    "unpack_code",
    "packed_depth",
    "packed_prefixes",
    "packed_is_prefix",
    "packed_descendant_range",
]

# A Dewey code is a plain tuple of ints; the alias documents intent.
DeweyCode = tuple[int, ...]

# A packed code is an order-preserving byte string (see pack_code); the
# alias marks values that must only ever be produced by pack_code.
PackedCode = bytes


def assign_child_component(
    schema: DocumentSchema,
    parent_label: str,
    child_label: str,
    previous_component: int | None,
) -> int:
    """Return the Dewey component for the next child.

    Parameters
    ----------
    schema:
        The document schema providing fanout and label positions.
    parent_label:
        Label of the parent node.
    child_label:
        Label of the child being encoded.
    previous_component:
        The component assigned to the preceding sibling, or ``None`` for
        the first child.
    """
    fanout = schema.fanout(parent_label)
    residue = schema.child_position(parent_label, child_label)
    floor = 0 if previous_component is None else previous_component + 1
    # Smallest value >= floor congruent to residue (mod fanout).
    offset = (residue - floor) % fanout
    return floor + offset


def format_code(code: DeweyCode) -> str:
    """Render a code as the dotted form used in the paper, e.g. ``0.8.6``."""
    return ".".join(str(component) for component in code)


def parse_code(text: str) -> DeweyCode:
    """Parse the dotted form back into a code tuple."""
    if not text:
        raise EncodingError("empty Dewey code string")
    try:
        return tuple(int(part) for part in text.split("."))
    except ValueError as exc:
        raise EncodingError(f"bad Dewey code {text!r}") from exc


def is_prefix(prefix: DeweyCode, code: DeweyCode) -> bool:
    """Return True when ``prefix`` is a (non-strict) prefix of ``code``."""
    return len(prefix) <= len(code) and code[: len(prefix)] == prefix


def is_ancestor(ancestor: DeweyCode, descendant: DeweyCode) -> bool:
    """Return True when ``ancestor`` encodes a proper ancestor."""
    return len(ancestor) < len(descendant) and is_prefix(ancestor, descendant)


def is_ancestor_or_self(ancestor: DeweyCode, descendant: DeweyCode) -> bool:
    """Return True for ancestor-or-self (prefix) relationships."""
    return is_prefix(ancestor, descendant)


def is_parent(parent: DeweyCode, child: DeweyCode) -> bool:
    """Return True when ``parent`` encodes the direct parent of ``child``."""
    return len(parent) + 1 == len(child) and is_prefix(parent, child)


def common_prefix(first: DeweyCode, second: DeweyCode) -> DeweyCode:
    """Return the longest common prefix — the lowest common ancestor.

    The paper uses exactly this: two nodes' LCA is the node encoded by
    their codes' common prefix (e.g. ``0.8.6.0`` and ``0.8.6.1`` share
    ``0.8.6``).
    """
    limit = min(len(first), len(second))
    split = 0
    while split < limit and first[split] == second[split]:
        split += 1
    return first[:split]


def compare_codes(first: DeweyCode, second: DeweyCode) -> int:
    """Total order on codes: document order with ancestors first.

    Returns -1, 0 or 1.  Plain tuple comparison already realizes this
    order (a prefix sorts before its extensions); the function exists to
    make call sites explicit.
    """
    if first == second:
        return 0
    return -1 if first < second else 1


def descendant_range_key(prefix: DeweyCode) -> tuple[DeweyCode, DeweyCode]:
    """Return ``(low, high)`` such that every descendant-or-self code ``c``
    of ``prefix`` satisfies ``low <= c < high`` under tuple order.

    Used by the holistic join to binary-search a sorted code list for the
    descendants of a fragment root.
    """
    if not prefix:
        raise EncodingError("cannot build a range for the empty code")
    high = prefix[:-1] + (prefix[-1] + 1,)
    return prefix, high


# ----------------------------------------------------------------------
# Packed codes: order-preserving byte strings
# ----------------------------------------------------------------------
#
# ``pack_code`` maps a code tuple to a byte string whose lexicographic
# order equals tuple order (document order with ancestors first), so hot
# loops — twig-join merges, leaf-stream scans, document-order sorts —
# compare flat ``bytes`` instead of walking per-element int tuples.
#
# Each component is encoded prefix-free and order-preserving:
#
# * ``0 <= n < 0x80`` — the single byte ``n``;
# * larger ``n`` — a header byte ``0x7F + k`` followed by the minimal
#   ``k``-byte big-endian payload (no leading zero byte).
#
# Order holds component-wise: small values sort below every large
# encoding (first byte ``< 0x80``); among large encodings a longer
# minimal payload means a larger value and a larger header, and equal
# lengths compare big-endian.  Prefix-freeness means concatenations
# align at component boundaries, so byte comparison of whole codes
# realizes tuple comparison, and a byte prefix is exactly a tuple
# prefix.  Headers never reach ``0xFF`` (payloads are capped at 0x7F
# bytes), which ``packed_descendant_range`` relies on.

#: Largest component encodable in a single byte.
_PACK_SMALL = 0x80


def pack_code(code: DeweyCode) -> PackedCode:
    """Pack ``code`` into bytes; lexicographic byte order equals
    :func:`compare_codes` order and byte prefixes equal tuple prefixes."""
    parts = bytearray()
    for component in code:
        if 0 <= component < _PACK_SMALL:
            parts.append(component)
        elif component < 0:
            raise EncodingError(
                f"cannot pack negative Dewey component {component}"
            )
        else:
            payload = component.to_bytes(
                (component.bit_length() + 7) // 8, "big"
            )
            if len(payload) > 0x7F:
                raise EncodingError(
                    f"Dewey component {component} too large to pack"
                )
            parts.append(0x7F + len(payload))
            parts += payload
    return bytes(parts)


def pack_component(component: int) -> PackedCode:
    """Encoding of a single component; ``pack_code(p + (c,)) ==
    pack_code(p) + pack_component(c)``, the incremental form used when
    stamping children during encoding and maintenance."""
    return pack_code((component,))


def _component_width(packed: PackedCode, offset: int) -> int:
    """Total encoded width (header + payload) at ``offset``."""
    first = packed[offset]
    return 1 if first < _PACK_SMALL else 1 + (first - 0x7F)


def unpack_code(packed: PackedCode) -> DeweyCode:
    """Invert :func:`pack_code`."""
    components: list[int] = []
    offset = 0
    length = len(packed)
    while offset < length:
        first = packed[offset]
        if first < _PACK_SMALL:
            components.append(first)
            offset += 1
            continue
        width = first - 0x7F
        payload = packed[offset + 1 : offset + 1 + width]
        if len(payload) != width:
            raise EncodingError(f"truncated packed code {packed!r}")
        components.append(int.from_bytes(payload, "big"))
        offset += 1 + width
    return tuple(components)


def packed_depth(packed: PackedCode) -> int:
    """Number of components (= tree depth + 1) of a packed code."""
    depth = 0
    offset = 0
    length = len(packed)
    while offset < length:
        offset += _component_width(packed, offset)
        depth += 1
    if offset != length:
        raise EncodingError(f"truncated packed code {packed!r}")
    return depth


def packed_prefixes(packed: PackedCode) -> tuple[PackedCode, ...]:
    """All component-boundary prefixes, shortest first.

    ``packed_prefixes(p)[k - 1]`` is the packed ancestor at depth ``k``
    (the packing of the first ``k`` tuple components); the last element
    is ``p`` itself.  This is the packed counterpart of repeated
    ``code[:k]`` slicing, computed once per code.
    """
    prefixes: list[PackedCode] = []
    offset = 0
    length = len(packed)
    while offset < length:
        offset += _component_width(packed, offset)
        prefixes.append(packed[:offset])
    if offset != length:
        raise EncodingError(f"truncated packed code {packed!r}")
    return tuple(prefixes)


def packed_is_prefix(prefix: PackedCode, packed: PackedCode) -> bool:
    """Packed counterpart of :func:`is_prefix` (ancestor-or-self).

    Sound because component encodings are prefix-free: a byte prefix of
    a valid packed code that is itself a valid packed code always ends
    on a component boundary.
    """
    return packed.startswith(prefix)


def packed_descendant_range(prefix: PackedCode) -> tuple[PackedCode, PackedCode]:
    """Packed counterpart of :func:`descendant_range_key`.

    Every packed descendant-or-self ``c`` of ``prefix`` satisfies
    ``low <= c < high`` under byte order.  ``high = prefix + b"\\xff"``
    works because no component encoding starts with ``0xFF``: a true
    descendant extends ``prefix`` with a byte ``< 0xFF``, while any
    non-descendant ``>= prefix`` first differs strictly below
    ``len(prefix)`` and therefore also exceeds ``high``.
    """
    if not prefix:
        raise EncodingError("cannot build a range for the empty code")
    return prefix, prefix + b"\xff"
