"""Extended Dewey codes (paper Section II, after Lu et al. [22]).

An extended Dewey code is a tuple of integers, one per edge on the
root-to-node path (the root itself carries the single component ``0``).
Unlike plain Dewey codes, the numbers are chosen so that each component's
residue modulo the parent's fanout identifies the child's *label*; the
full root-to-node label path can therefore be recovered from the code
alone via the finite state transducer (:mod:`repro.xmltree.fst`) without
touching the document — the property the rewriting engine relies on.

Assignment rule (deterministic): children of a node labeled ``t`` with
fanout ``k`` receive strictly increasing numbers; a child labeled ``c``
with residue ``i = position(t, c)`` receives the smallest integer greater
than its previous sibling's number (or ≥ 0 for the first child) congruent
to ``i`` modulo ``k``.  This reproduces the paper's Figure 2 exactly
(e.g. siblings ``t,a,a,s,s`` under ``book`` with child order ``t,a,s``
receive ``0,1,4,5,8``).
"""

from __future__ import annotations

from ..errors import EncodingError
from .schema import DocumentSchema

__all__ = [
    "DeweyCode",
    "assign_child_component",
    "format_code",
    "parse_code",
    "is_prefix",
    "is_ancestor",
    "is_ancestor_or_self",
    "common_prefix",
    "compare_codes",
    "descendant_range_key",
]

# A Dewey code is a plain tuple of ints; the alias documents intent.
DeweyCode = tuple[int, ...]


def assign_child_component(
    schema: DocumentSchema,
    parent_label: str,
    child_label: str,
    previous_component: int | None,
) -> int:
    """Return the Dewey component for the next child.

    Parameters
    ----------
    schema:
        The document schema providing fanout and label positions.
    parent_label:
        Label of the parent node.
    child_label:
        Label of the child being encoded.
    previous_component:
        The component assigned to the preceding sibling, or ``None`` for
        the first child.
    """
    fanout = schema.fanout(parent_label)
    residue = schema.child_position(parent_label, child_label)
    floor = 0 if previous_component is None else previous_component + 1
    # Smallest value >= floor congruent to residue (mod fanout).
    offset = (residue - floor) % fanout
    return floor + offset


def format_code(code: DeweyCode) -> str:
    """Render a code as the dotted form used in the paper, e.g. ``0.8.6``."""
    return ".".join(str(component) for component in code)


def parse_code(text: str) -> DeweyCode:
    """Parse the dotted form back into a code tuple."""
    if not text:
        raise EncodingError("empty Dewey code string")
    try:
        return tuple(int(part) for part in text.split("."))
    except ValueError as exc:
        raise EncodingError(f"bad Dewey code {text!r}") from exc


def is_prefix(prefix: DeweyCode, code: DeweyCode) -> bool:
    """Return True when ``prefix`` is a (non-strict) prefix of ``code``."""
    return len(prefix) <= len(code) and code[: len(prefix)] == prefix


def is_ancestor(ancestor: DeweyCode, descendant: DeweyCode) -> bool:
    """Return True when ``ancestor`` encodes a proper ancestor."""
    return len(ancestor) < len(descendant) and is_prefix(ancestor, descendant)


def is_ancestor_or_self(ancestor: DeweyCode, descendant: DeweyCode) -> bool:
    """Return True for ancestor-or-self (prefix) relationships."""
    return is_prefix(ancestor, descendant)


def is_parent(parent: DeweyCode, child: DeweyCode) -> bool:
    """Return True when ``parent`` encodes the direct parent of ``child``."""
    return len(parent) + 1 == len(child) and is_prefix(parent, child)


def common_prefix(first: DeweyCode, second: DeweyCode) -> DeweyCode:
    """Return the longest common prefix — the lowest common ancestor.

    The paper uses exactly this: two nodes' LCA is the node encoded by
    their codes' common prefix (e.g. ``0.8.6.0`` and ``0.8.6.1`` share
    ``0.8.6``).
    """
    limit = min(len(first), len(second))
    split = 0
    while split < limit and first[split] == second[split]:
        split += 1
    return first[:split]


def compare_codes(first: DeweyCode, second: DeweyCode) -> int:
    """Total order on codes: document order with ancestors first.

    Returns -1, 0 or 1.  Plain tuple comparison already realizes this
    order (a prefix sorts before its extensions); the function exists to
    make call sites explicit.
    """
    if first == second:
        return 0
    return -1 if first < second else 1


def descendant_range_key(prefix: DeweyCode) -> tuple[DeweyCode, DeweyCode]:
    """Return ``(low, high)`` such that every descendant-or-self code ``c``
    of ``prefix`` satisfies ``low <= c < high`` under tuple order.

    Used by the holistic join to binary-search a sorted code list for the
    descendants of a fragment root.
    """
    if not prefix:
        raise EncodingError("cannot build a range for the empty code")
    high = prefix[:-1] + (prefix[-1] + 1,)
    return prefix, high
