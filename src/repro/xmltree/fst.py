"""Finite state transducer decoding extended Dewey codes to label paths.

Paper Section II / Figure 3: the FST has one state per element label.
Reading a code component ``n`` in state ``t`` moves to the child label
whose schema position equals ``n mod fanout(t)``.  The first component is
read from a virtual initial state whose single outgoing option is the
root label (``0 mod 1 = 0`` in the paper's Example 2.1).

Decoding a code therefore yields the exact root-to-node label path — the
piece of information the multi-view join uses to verify structural
predicates on fragment roots without accessing base data.
"""

from __future__ import annotations

from ..errors import EncodingError, SchemaError
from .dewey import DeweyCode, PackedCode, unpack_code
from .schema import DocumentSchema

__all__ = ["FiniteStateTransducer"]


class FiniteStateTransducer:
    """Decoder from extended Dewey codes to root-to-node label paths."""

    __slots__ = ("schema", "_cache", "_packed_cache")

    def __init__(self, schema: DocumentSchema):
        self.schema = schema
        # Decoded-path cache: code prefix -> label tuple.  Fragment roots
        # cluster under few ancestors, so the cache hit rate during joins
        # is high.
        self._cache: dict[DeweyCode, tuple[str, ...]] = {}
        # Flat packed-key cache layered over the tuple cache; packed keys
        # hash faster than tuples, so repeat decodes of the same fragment
        # roots skip tuple reconstruction entirely.
        self._packed_cache: dict[PackedCode, tuple[str, ...]] = {}

    def decode(self, code: DeweyCode) -> tuple[str, ...]:
        """Return the root-to-node label path for ``code``.

        Raises :class:`~repro.errors.EncodingError` when the code cannot
        have been produced under this schema.
        """
        if not code:
            raise EncodingError("cannot decode an empty Dewey code")
        cached = self._cache.get(code)
        if cached is not None:
            return cached

        # Find the longest cached prefix to resume from.
        start = len(code) - 1
        labels: list[str] | None = None
        while start > 0:
            prefix_labels = self._cache.get(code[:start])
            if prefix_labels is not None:
                labels = list(prefix_labels)
                break
            start -= 1

        if labels is None:
            # Virtual initial state: the only admissible root residue is 0
            # modulo 1, i.e. any integer, but by construction the root
            # component is 0; accept any value and emit the root label.
            labels = [self.schema.root_label]
            start = 1

        for depth in range(start, len(code)):
            state = labels[-1]
            try:
                fanout = self.schema.fanout(state)
                residue = code[depth] % fanout
                labels.append(self.schema.child_at(state, residue))
            except SchemaError as exc:
                raise EncodingError(
                    f"code {code} undecodable at depth {depth}: {exc}"
                ) from exc
            self._cache[code[: depth + 1]] = tuple(labels)

        decoded = tuple(labels)
        self._cache[code] = decoded
        return decoded

    def decode_packed(self, packed: PackedCode) -> tuple[str, ...]:
        """Decode a packed code (see :func:`repro.xmltree.dewey.pack_code`).

        Equivalent to ``decode(unpack_code(packed))`` with its own cache
        keyed by the packed bytes, so hot joins that carry only packed
        keys never rebuild the int tuple on a repeat decode.
        """
        cached = self._packed_cache.get(packed)
        if cached is not None:
            return cached
        decoded = self.decode(unpack_code(packed))
        self._packed_cache[packed] = decoded
        return decoded

    def label_of(self, code: DeweyCode) -> str:
        """Return just the label of the node encoded by ``code``."""
        return self.decode(code)[-1]

    def label_of_packed(self, packed: PackedCode) -> str:
        """Return just the label of the node encoded by ``packed``."""
        return self.decode_packed(packed)[-1]

    def clear_cache(self) -> None:
        """Drop the decode cache (e.g. after switching documents)."""
        self._cache.clear()
        self._packed_cache.clear()

    def transitions(self) -> dict[str, tuple[str, ...]]:
        """Return the FST transition table, ``state -> ordered child labels``.

        Mirrors the paper's Figure 3 presentation; useful for debugging
        and for the paper-walkthrough example.
        """
        table: dict[str, tuple[str, ...]] = {}
        for label in sorted(self.schema.labels()):
            try:
                child_labels = self.schema.child_labels(label)
            except SchemaError:
                continue
            if child_labels:
                table[label] = child_labels
        return table

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FiniteStateTransducer root={self.schema.root_label!r}>"
