"""A from-scratch XML parser for the element subset used by the paper.

The paper stores XML documents in Berkeley DB XML; this reproduction
parses documents itself.  The parser handles the features the XMark-style
workloads need:

* elements with attributes (single- or double-quoted values),
* character data (captured as each element's ``text``),
* self-closing tags, comments, processing instructions, ``<!DOCTYPE ...>``
  declarations and CDATA sections,
* the five predefined entities plus decimal/hex character references.

It deliberately does not implement namespaces or external DTD entities —
none of the paper's workloads use them and the matching semantics of the
paper are label-based.

The implementation is a single-pass tokenizer driving an explicit element
stack, so it parses multi-megabyte generated documents without recursion
limits.
"""

from __future__ import annotations

import re

from ..errors import XMLParseError
from .tree import XMLNode, XMLTree

__all__ = ["parse_xml", "parse_xml_file"]

_ENTITY_TABLE = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_ATTR_RE = re.compile(
    r"""\s+([A-Za-z_][\w.\-]*)\s*=\s*("([^"]*)"|'([^']*)')"""
)


def _decode_entities(text: str, offset: int) -> str:
    """Replace entity and character references in ``text``."""
    if "&" not in text:
        return text
    out: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char != "&":
            out.append(char)
            index += 1
            continue
        end = text.find(";", index + 1)
        if end == -1:
            raise XMLParseError("unterminated entity reference", offset + index)
        name = text[index + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITY_TABLE:
            out.append(_ENTITY_TABLE[name])
        else:
            raise XMLParseError(f"unknown entity &{name};", offset + index)
        index = end + 1
    return "".join(out)


def _parse_attributes(tag_body: str, offset: int) -> tuple[str, dict[str, str]]:
    """Split a start-tag body into (element name, attribute dict)."""
    name_match = _NAME_RE.match(tag_body)
    if name_match is None:
        raise XMLParseError("malformed start tag", offset)
    name = name_match.group(0)
    attributes: dict[str, str] = {}
    position = name_match.end()
    while position < len(tag_body):
        attr_match = _ATTR_RE.match(tag_body, position)
        if attr_match is None:
            remainder = tag_body[position:].strip()
            if remainder:
                raise XMLParseError(
                    f"malformed attribute near {remainder[:20]!r}", offset
                )
            break
        attr_name = attr_match.group(1)
        raw_value = attr_match.group(3)
        if raw_value is None:
            raw_value = attr_match.group(4)
        if attr_name in attributes:
            raise XMLParseError(f"duplicate attribute {attr_name!r}", offset)
        attributes[attr_name] = _decode_entities(raw_value, offset)
        position = attr_match.end()
    return name, attributes


def parse_xml(document: str) -> XMLTree:
    """Parse an XML document string into an :class:`XMLTree`.

    Raises :class:`~repro.errors.XMLParseError` on malformed input,
    including mismatched tags, text outside the root element and
    multiple root elements.
    """
    root: XMLNode | None = None
    stack: list[XMLNode] = []
    text_parts: list[list[str]] = []
    index = 0
    length = len(document)

    def flush_text(upto: int) -> None:
        segment = document[index:upto]
        if not stack:
            if segment.strip():
                raise XMLParseError("character data outside root element", index)
            return
        # Entities are resolved per segment; CDATA content is appended
        # elsewhere without decoding.
        text_parts[-1].append(_decode_entities(segment, index))

    while index < length:
        open_at = document.find("<", index)
        if open_at == -1:
            flush_text(length)
            index = length
            break
        if open_at > index:
            flush_text(open_at)
            index = open_at

        # index now points at '<'
        if document.startswith("<!--", index):
            end = document.find("-->", index + 4)
            if end == -1:
                raise XMLParseError("unterminated comment", index)
            index = end + 3
            continue
        if document.startswith("<![CDATA[", index):
            end = document.find("]]>", index + 9)
            if end == -1:
                raise XMLParseError("unterminated CDATA section", index)
            if stack:
                text_parts[-1].append(document[index + 9 : end])
            index = end + 3
            continue
        if document.startswith("<?", index):
            end = document.find("?>", index + 2)
            if end == -1:
                raise XMLParseError("unterminated processing instruction", index)
            index = end + 2
            continue
        if document.startswith("<!", index):
            # DOCTYPE or similar declaration; skip to the matching '>'
            # (internal subsets with nested brackets included).
            depth = 0
            scan = index + 1
            while scan < length:
                char = document[scan]
                if char == "[":
                    depth += 1
                elif char == "]":
                    depth -= 1
                elif char == ">" and depth == 0:
                    break
                scan += 1
            if scan >= length:
                raise XMLParseError("unterminated declaration", index)
            index = scan + 1
            continue

        close_at = document.find(">", index + 1)
        if close_at == -1:
            raise XMLParseError("unterminated tag", index)
        body = document[index + 1 : close_at]

        if body.startswith("/"):
            name = body[1:].strip()
            if not stack:
                raise XMLParseError(f"unexpected closing tag </{name}>", index)
            node = stack.pop()
            if node.label != name:
                raise XMLParseError(
                    f"mismatched closing tag </{name}>, expected </{node.label}>",
                    index,
                )
            text = "".join(text_parts.pop()).strip()
            node.text = text or None
        else:
            self_closing = body.endswith("/")
            if self_closing:
                body = body[:-1]
            name, attributes = _parse_attributes(body.strip(), index)
            node = XMLNode(name, attributes=attributes)
            if stack:
                stack[-1].add_child(node)
            elif root is None:
                root = node
            else:
                raise XMLParseError("multiple root elements", index)
            if not self_closing:
                stack.append(node)
                text_parts.append([])
        index = close_at + 1

    if stack:
        raise XMLParseError(f"unclosed element <{stack[-1].label}>", length)
    if root is None:
        raise XMLParseError("document has no root element", 0)
    return XMLTree(root)


def parse_xml_file(path: str) -> XMLTree:
    """Parse the XML document stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_xml(handle.read())
