"""XML serialization for :class:`~repro.xmltree.tree.XMLTree`.

Round-trips with :mod:`repro.xmltree.parser`: ``parse_xml(serialize(t))``
produces a tree structurally equal to ``t``.  Serialization is iterative,
so it handles the deep documents produced by the workload generator.
"""

from __future__ import annotations

from .tree import XMLNode, XMLTree

__all__ = ["serialize", "serialize_node"]

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def _escape_text(value: str) -> str:
    for raw, escaped in _TEXT_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def _escape_attr(value: str) -> str:
    for raw, escaped in _ATTR_ESCAPES:
        value = value.replace(raw, escaped)
    return value


def _start_tag(node: XMLNode, self_closing: bool) -> str:
    attrs = "".join(
        f' {name}="{_escape_attr(value)}"'
        for name, value in node.attributes.items()
    )
    return f"<{node.label}{attrs}{'/' if self_closing else ''}>"


def serialize_node(node: XMLNode, indent: int | None = None) -> str:
    """Serialize the subtree rooted at ``node`` to an XML string.

    Parameters
    ----------
    node:
        Subtree root to serialize.
    indent:
        When given, pretty-print with this many spaces per level; text
        content suppresses indentation inside its element so whitespace
        round-trips exactly.
    """
    parts: list[str] = []
    # Work stack holds a node still to open, or a (label, text) close
    # marker for an element whose children have already been pushed.
    stack: list[tuple[XMLNode | tuple[str, str | None], int]] = [(node, 0)]
    while stack:
        payload, depth = stack.pop()
        prefix = "" if indent is None else " " * (indent * depth)
        newline = "" if indent is None else "\n"
        if isinstance(payload, tuple):
            label, text = payload
            if text:
                parts.append(f"{_escape_text(text)}</{label}>{newline}")
            else:
                parts.append(f"{prefix}</{label}>{newline}")
            continue
        element = payload
        if not element.children and element.text is None:
            parts.append(f"{prefix}{_start_tag(element, True)}{newline}")
            continue
        if not element.children:
            parts.append(
                f"{prefix}{_start_tag(element, False)}"
                f"{_escape_text(element.text or '')}</{element.label}>{newline}"
            )
            continue
        parts.append(f"{prefix}{_start_tag(element, False)}{newline}")
        stack.append(((element.label, element.text), depth))
        for child in reversed(element.children):
            stack.append((child, depth + 1))
    return "".join(parts)


def serialize(tree: XMLTree, indent: int | None = None) -> str:
    """Serialize a whole document, including the XML declaration."""
    body = serialize_node(tree.root, indent=indent)
    return f'<?xml version="1.0" encoding="UTF-8"?>\n{body}'
