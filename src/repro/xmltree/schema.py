"""Document schema: per-label ordered child-label lists.

Extended Dewey encoding (Lu et al., reference [22] of the paper) assigns
to each child a number whose residue, modulo the number of *distinct*
child labels its parent's label admits, identifies the child's label.
That requires a schema: for every label ``l``, the ordered list of labels
that may appear as children of an ``l`` element.

The paper derives this from the document's DTD; we support both an
explicitly declared schema and one mined from a document (the order of a
label's children is the order of first appearance, which makes mining
deterministic for a fixed document).
"""

from __future__ import annotations

from typing import Any

from ..errors import SchemaError
from .tree import XMLTree

__all__ = ["DocumentSchema"]


class DocumentSchema:
    """Ordered child-label lists per element label, plus the root label.

    Instances are immutable once constructed; they are shared by the
    Dewey encoder and the FST.
    """

    __slots__ = ("root_label", "_children", "_positions")

    def __init__(self, root_label: str, children: dict[str, list[str]]):
        self.root_label = root_label
        self._children: dict[str, tuple[str, ...]] = {
            label: tuple(child_labels) for label, child_labels in children.items()
        }
        for label, child_labels in self._children.items():
            if len(set(child_labels)) != len(child_labels):
                raise SchemaError(f"duplicate child label under {label!r}")
        self._positions: dict[str, dict[str, int]] = {
            label: {child: index for index, child in enumerate(child_labels)}
            for label, child_labels in self._children.items()
        }

    @classmethod
    def from_tree(cls, tree: XMLTree) -> "DocumentSchema":
        """Mine the schema from a document.

        Child labels are ordered by first appearance under each parent
        label across the whole document.
        """
        children: dict[str, list[str]] = {}
        for node in tree.iter_nodes():
            slots = children.setdefault(node.label, [])
            for child in node.children:
                if child.label not in slots:
                    slots.append(child.label)
        return cls(tree.root.label, children)

    # ------------------------------------------------------------------
    def child_labels(self, label: str) -> tuple[str, ...]:
        """Return the ordered child labels admitted under ``label``."""
        try:
            return self._children[label]
        except KeyError:
            raise SchemaError(f"label {label!r} not in schema") from None

    def fanout(self, label: str) -> int:
        """Return the modulus ``k`` for children of ``label`` (≥ 1)."""
        # A label with no children still needs modulus 1 so that leaf
        # parents remain encodable if the document grows.
        return max(1, len(self.child_labels(label)))

    def child_position(self, parent_label: str, child_label: str) -> int:
        """Return the residue assigned to ``child_label`` under ``parent_label``."""
        try:
            return self._positions[parent_label][child_label]
        except KeyError:
            raise SchemaError(
                f"label {child_label!r} is not a child of {parent_label!r}"
            ) from None

    def child_at(self, parent_label: str, residue: int) -> str:
        """Return the child label whose residue is ``residue``."""
        labels = self.child_labels(parent_label)
        if not labels:
            raise SchemaError(f"label {parent_label!r} admits no children")
        if residue >= len(labels):
            raise SchemaError(
                f"residue {residue} out of range for {parent_label!r}"
            )
        return labels[residue]

    def labels(self) -> frozenset[str]:
        """Return every label known to the schema."""
        known = set(self._children)
        for child_labels in self._children.values():
            known.update(child_labels)
        known.add(self.root_label)
        return frozenset(known)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DocumentSchema):
            return NotImplemented
        return (
            self.root_label == other.root_label
            and self._children == other._children
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DocumentSchema root={self.root_label!r} "
            f"labels={len(self._children)}>"
        )

    # ------------------------------------------------------------------
    # serialization (used by the storage layer)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-compatible representation."""
        return {
            "root": self.root_label,
            "children": {
                label: list(child_labels)
                for label, child_labels in self._children.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DocumentSchema":
        """Inverse of :meth:`to_dict`."""
        return cls(payload["root"], payload["children"])
