"""``STR(P)``: path pattern → token string for the VFILTER NFA.

Paper Section III-B: "omit ``/`` and replace ``//`` by ``#``".  The NFA
reads one token at a time; a token is either a label, the wildcard ``*``
or the descendant marker ``#``.  ``b//s/p`` becomes ``('b', '#', 's',
'p')``; the leading child axis of an absolute path contributes nothing.
"""

from __future__ import annotations

from .pattern import PathPattern

__all__ = ["DESCENDANT_TOKEN", "str_tokens", "str_text"]

#: Token standing for a ``//`` edge in the NFA input alphabet.
DESCENDANT_TOKEN = "#"


def str_tokens(path: PathPattern) -> tuple[str, ...]:
    """Return ``STR(path)`` as a token tuple."""
    tokens: list[str] = []
    for step in path.steps:
        if step.axis.is_descendant:
            tokens.append(DESCENDANT_TOKEN)
        tokens.append(step.label)
    return tuple(tokens)


def str_text(path: PathPattern) -> str:
    """Return ``STR(path)`` as a printable string (labels joined)."""
    return "".join(str_tokens(path))
