"""XPath substrate: fragment parser, tree/path patterns, D(Q), N(P), STR."""

from .ast import Axis, AttributeConstraint, Step, WILDCARD
from .builder import StepBuilder, step
from .decompose import decompose
from .normalize import is_normalized, normalize
from .parser import parse_path, parse_xpath
from .pattern import PathPattern, PatternNode, TreePattern
from .transform import DESCENDANT_TOKEN, str_text, str_tokens

__all__ = [
    "Axis",
    "AttributeConstraint",
    "DESCENDANT_TOKEN",
    "PathPattern",
    "PatternNode",
    "Step",
    "StepBuilder",
    "step",
    "TreePattern",
    "WILDCARD",
    "decompose",
    "is_normalized",
    "normalize",
    "parse_path",
    "parse_xpath",
    "str_text",
    "str_tokens",
]
