"""Tree-pattern decomposition ``D(Q)`` (paper Section III-A).

``D(Q)`` is the set of path patterns corresponding to the root-to-leaf
paths of ``Q``, with duplicates removed.  Proposition 3.1 makes this the
basis of view filtering: ``Q ⊑ V`` requires every path pattern of
``D(V)`` to contain some path pattern of ``D(Q)``.
"""

from __future__ import annotations

from .ast import Step
from .pattern import PathPattern, TreePattern

__all__ = ["decompose"]


def decompose(pattern: TreePattern) -> list[PathPattern]:
    """Return ``D(pattern)``: deduplicated root-to-leaf path patterns.

    Order is deterministic (first occurrence in a depth-first traversal),
    which keeps `LIST(P_i)` bookkeeping and tests stable.
    """
    paths: list[PathPattern] = []
    seen: set[PathPattern] = set()
    # Depth-first walk carrying the step prefix.
    stack: list[tuple[object, tuple[Step, ...]]] = [
        (pattern.root, (pattern.root.step(),))
    ]
    ordered: list[PathPattern] = []
    while stack:
        node, prefix = stack.pop()
        children = node.children  # type: ignore[attr-defined]
        if not children:
            ordered.append(PathPattern(prefix))
            continue
        for child in reversed(children):
            stack.append((child, prefix + (child.step(),)))
    for path in ordered:
        if path not in seen:
            seen.add(path)
            paths.append(path)
    return paths
