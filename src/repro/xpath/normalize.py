"""Path-pattern normalization ``N(P)`` (paper Section III-C).

A path pattern may contain runs of consecutive wildcard steps, e.g.
``s/*//t``.  Many syntactically distinct placements of ``//`` around a
wildcard run denote the same pattern: with ``j ≥ 1`` descendant edges
among the run's ``n + 1`` edges, the constraint is exactly "at least
``n`` arbitrary nodes between the anchors, at any depth ≥ n+1".  The
paper normalizes by pushing a single ``//`` to the *front* of each run
(early pruning in VFILTER) and turning every other edge of the run into
``/``: ``s/*//t  →  s//*/t``.

Proposition 3.2: two equivalent path patterns have the same normalized
form — which is what eliminates VFILTER's false negatives, provided both
the automaton's patterns and the probe patterns are normalized.
"""

from __future__ import annotations

from .ast import Axis, Step, WILDCARD
from .pattern import PathPattern

__all__ = ["normalize", "is_normalized"]


def normalize(path: PathPattern) -> PathPattern:
    """Return ``N(path)``; the input is not modified.

    Wildcard runs are maximal blocks of consecutive ``*`` steps.  For
    each run, the edges considered are those entering the run's steps
    plus the edge entering the following non-wildcard step (when the run
    is not at the tail).  If any of them is ``//``, the first edge of the
    run becomes ``//`` and all the others (including the edge into the
    terminating label) become ``/``.
    """
    if all(step.label == WILDCARD for step in path.steps):
        # Degenerate class: an all-wildcard path of k steps means
        # "some node exists at depth ≥ k" *regardless of its axes*, so
        # every spelling is equivalent; canonicalize to /*/*/.../*.
        return PathPattern(
            tuple(Step(Axis.CHILD, WILDCARD) for _ in path.steps)
        )
    steps = list(path.steps)
    index = 0
    while index < len(steps):
        if steps[index].label != WILDCARD:
            index += 1
            continue
        # Maximal wildcard run: steps[index .. end-1] are all '*'.
        end = index
        while end < len(steps) and steps[end].label == WILDCARD:
            end += 1
        # Edges of the run: axes of steps[index..end-1] plus the axis of
        # the terminating labeled step (if any).
        edge_slots = list(range(index, min(end + 1, len(steps))))
        has_descendant = any(steps[slot].axis.is_descendant for slot in edge_slots)
        # A trailing wildcard run is *always* gap-like: "k wildcards at
        # the end" asserts only a descendant at depth ≥ k below the last
        # label (l/* ≡ l//* — a child exists iff a descendant exists),
        # so it is canonicalized to the //-led form regardless of axes.
        if end == len(steps):
            has_descendant = True
        if has_descendant:
            for slot in edge_slots:
                axis = Axis.DESCENDANT if slot == index else Axis.CHILD
                steps[slot] = Step(axis, steps[slot].label)
        index = end + 1
    return PathPattern(tuple(steps))


def is_normalized(path: PathPattern) -> bool:
    """Return True when ``normalize`` would leave ``path`` unchanged."""
    return normalize(path) == path
