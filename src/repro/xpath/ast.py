"""Basic XPath building blocks: axes, steps, attribute constraints.

The XPath fragment of the paper is ``XP{/, //, *, []}``: child axis,
descendant axis, label wildcard and branching predicates.  As the paper's
Section V extension, equality/comparison predicates over attributes are
also modeled (:class:`AttributeConstraint`); they participate in
answerability only via exact matching or fragment evaluation, mirroring
"Handling comparison predicates".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Axis", "Step", "AttributeConstraint", "WILDCARD"]

#: The label wildcard of the fragment (matches any element label).
WILDCARD = "*"


class Axis(enum.Enum):
    """Edge type between consecutive pattern nodes."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:
        return self.value

    @property
    def is_descendant(self) -> bool:
        return self is Axis.DESCENDANT


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: an axis and a node test (label or ``*``)."""

    axis: Axis
    label: str

    def __str__(self) -> str:
        return f"{self.axis.value}{self.label}"

    @property
    def is_wildcard(self) -> bool:
        return self.label == WILDCARD


_VALID_OPS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True, slots=True)
class AttributeConstraint:
    """A predicate over an attribute: existence or value comparison.

    ``op is None`` encodes bare existence (``[@name]``); otherwise ``op``
    is one of ``=  !=  <  <=  >  >=`` and ``value`` is the literal to
    compare against.  Numeric-looking values compare numerically,
    everything else lexicographically (sufficient for the workloads).
    """

    name: str
    op: str | None = None
    value: str | None = None

    def __post_init__(self) -> None:
        if self.op is not None and self.op not in _VALID_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")
        if (self.op is None) != (self.value is None):
            raise ValueError("op and value must be provided together")

    def __str__(self) -> str:
        if self.op is None:
            return f"@{self.name}"
        return f"@{self.name}{self.op}'{self.value}'"

    def matches(self, attributes: dict[str, str]) -> bool:
        """Evaluate the constraint against a node's attribute dict."""
        if self.name not in attributes:
            return False
        if self.op is None:
            return True
        actual = attributes[self.name]
        expected = self.value or ""
        try:
            left: object = float(actual)
            right: object = float(expected)
        except ValueError:
            left, right = actual, expected
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right  # type: ignore[operator]
        if self.op == "<=":
            return left <= right  # type: ignore[operator]
        if self.op == ">":
            return left > right  # type: ignore[operator]
        return left >= right  # type: ignore[operator]
