"""Tree patterns and path patterns (paper Section II).

A *tree pattern* is an unordered tree whose nodes carry labels over
``L ∪ {*}`` and whose edges carry an axis from ``{/, //}``.  One node is
the *answer node* ``RET(P)``.  Patterns are absolute: the pattern root's
own axis is its edge from the (virtual) document root, so ``/a`` and
``//a`` are distinct patterns.

A *path pattern* is a branchless pattern; it is the unit the VFILTER NFA
operates on and is represented compactly as a tuple of
:class:`~repro.xpath.ast.Step`.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import PatternError
from .ast import Axis, AttributeConstraint, Step, WILDCARD

__all__ = ["PatternNode", "TreePattern", "PathPattern"]


class PatternNode:
    """One node of a tree pattern."""

    __slots__ = ("label", "axis", "parent", "children", "constraints")

    def __init__(
        self,
        label: str,
        axis: Axis = Axis.CHILD,
        constraints: tuple[AttributeConstraint, ...] = (),
    ):
        if not label:
            raise PatternError("pattern node label must be non-empty")
        self.label = label
        #: Edge from this node's parent (or from the virtual document
        #: root, for the pattern root).
        self.axis = axis
        self.parent: PatternNode | None = None
        self.children: list[PatternNode] = []
        self.constraints = constraints

    # ------------------------------------------------------------------
    def add_child(self, child: "PatternNode") -> "PatternNode":
        if child.parent is not None:
            raise PatternError("pattern node already attached")
        child.parent = self
        self.children.append(child)
        return child

    def new_child(
        self,
        label: str,
        axis: Axis = Axis.CHILD,
        constraints: tuple[AttributeConstraint, ...] = (),
    ) -> "PatternNode":
        return self.add_child(PatternNode(label, axis, constraints))

    @property
    def is_wildcard(self) -> bool:
        return self.label == WILDCARD

    def is_leaf(self) -> bool:
        return not self.children

    def iter_subtree(self) -> Iterator["PatternNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors_or_self(self) -> Iterator["PatternNode"]:
        node: PatternNode | None = self
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_or_self_of(self, other: "PatternNode") -> bool:
        return any(candidate is self for candidate in other.ancestors_or_self())

    def root_path(self) -> list["PatternNode"]:
        """Return the node list from the pattern root down to ``self``."""
        path = list(self.ancestors_or_self())
        path.reverse()
        return path

    def step(self) -> Step:
        """Return this node as a :class:`Step` (axis from its parent)."""
        return Step(self.axis, self.label)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PatternNode {self.axis.value}{self.label}>"


class TreePattern:
    """A tree pattern with a designated answer node."""

    __slots__ = ("root", "ret")

    def __init__(self, root: PatternNode, ret: PatternNode) -> None:
        if root.parent is not None:
            raise PatternError("pattern root must not have a parent")
        if not root.is_ancestor_or_self_of(ret):
            raise PatternError("answer node must belong to the pattern")
        self.root = root
        self.ret = ret

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[PatternNode]:
        return self.root.iter_subtree()

    def size(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def leaves(self) -> list[PatternNode]:
        """Return ``LEAF(P)``: all leaf nodes, in deterministic order."""
        return [node for node in self.iter_nodes() if node.is_leaf()]

    def is_path(self) -> bool:
        """True when the pattern has no branches."""
        return all(len(node.children) <= 1 for node in self.iter_nodes())

    def depth(self) -> int:
        """Return the maximum number of steps on a root-to-leaf path."""
        best = 0
        stack = [(self.root, 1)]
        while stack:
            node, depth = stack.pop()
            best = max(best, depth)
            stack.extend((child, depth + 1) for child in node.children)
        return best

    def has_wildcard(self) -> bool:
        return any(node.is_wildcard for node in self.iter_nodes())

    def has_descendant_axis(self) -> bool:
        return any(node.axis.is_descendant for node in self.iter_nodes())

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self) -> "TreePattern":
        """Deep copy preserving the answer-node designation."""
        mapping: dict[int, PatternNode] = {}
        new_root = self._copy_subtree(self.root, mapping)
        return TreePattern(new_root, mapping[id(self.ret)])

    @staticmethod
    def _copy_subtree(
        node: PatternNode, mapping: dict[int, PatternNode]
    ) -> PatternNode:
        clone_root = PatternNode(node.label, node.axis, node.constraints)
        mapping[id(node)] = clone_root
        stack = [(node, clone_root)]
        while stack:
            original, clone = stack.pop()
            for child in original.children:
                child_clone = clone.new_child(
                    child.label, child.axis, child.constraints
                )
                mapping[id(child)] = child_clone
                stack.append((child, child_clone))
        return clone_root

    def subtree_at(self, node: PatternNode, ret: PatternNode | None = None) -> "TreePattern":
        """Return a copy of the subtree rooted at ``node`` as a pattern.

        The copy's root axis is reset to ``CHILD`` relative to a virtual
        anchor (the fragment root during rewriting).  When ``ret`` (a
        node inside the subtree) is given it becomes the answer node of
        the copy; otherwise the copy's root is the answer node.
        """
        if ret is not None and not node.is_ancestor_or_self_of(ret):
            raise PatternError("ret must lie inside the subtree")
        mapping: dict[int, PatternNode] = {}
        clone_root = self._copy_subtree(node, mapping)
        clone_root.axis = Axis.CHILD
        clone_ret = mapping[id(ret)] if ret is not None else clone_root
        return TreePattern(clone_root, clone_ret)

    # ------------------------------------------------------------------
    # presentation / equality
    # ------------------------------------------------------------------
    def to_xpath(self, mark_answer: bool = False) -> str:
        """Render back to XPath syntax.

        The answer node is always the tail of the main spine; branches
        render as predicates.  With ``mark_answer`` the answer node label
        is wrapped in ``{...}`` (useful in logs when the answer node is
        not a leaf).
        """
        spine = self.ret.root_path()
        on_spine = {id(node) for node in spine}

        def render_branch(node: PatternNode) -> str:
            # Relative rendering of a predicate subtree: a descendant
            # branch leads with './/', a child branch with nothing.
            lead = ".//" if node.axis.is_descendant else ""
            return f"{lead}{render_node(node, node.children)}"

        def render_node(node: PatternNode, branches: list[PatternNode]) -> str:
            label = node.label
            if mark_answer and node is self.ret:
                label = "{" + label + "}"
            predicates = "".join(f"[{constraint}]" for constraint in node.constraints)
            rendered = "".join(f"[{render_branch(child)}]" for child in branches)
            return f"{label}{predicates}{rendered}"

        parts = []
        for node in spine:
            branches = [
                child for child in node.children if id(child) not in on_spine
            ]
            parts.append(f"{node.axis.value}{render_node(node, branches)}")
        return "".join(parts)

    def canonical_string(self) -> str:
        """Order-insensitive canonical form; equal iff patterns identical.

        The answer node is marked, so two patterns differing only in
        their answer node are distinguished.
        """

        def canon(node: PatternNode) -> str:
            marker = "!" if node is self.ret else ""
            constraints = ",".join(sorted(str(c) for c in node.constraints))
            children = sorted(canon(child) for child in node.children)
            return (
                f"{node.axis.value}{node.label}{marker}"
                f"[{constraints}]({';'.join(children)})"
            )

        return canon(self.root)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreePattern):
            return NotImplemented
        return self.canonical_string() == other.canonical_string()

    def __hash__(self) -> int:
        return hash(self.canonical_string())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TreePattern({self.to_xpath()!r})"

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_path_pattern(self) -> "PathPattern":
        """Convert a branchless pattern to a :class:`PathPattern`."""
        if not self.is_path():
            raise PatternError("pattern has branches; decompose it first")
        steps: list[Step] = []
        node: PatternNode | None = self.root
        while node is not None:
            steps.append(node.step())
            node = node.children[0] if node.children else None
        return PathPattern(tuple(steps))


class PathPattern:
    """A branchless absolute pattern: a sequence of steps.

    Path patterns are hashable value objects; the VFILTER NFA, the
    decomposition ``D(Q)`` and normalization ``N(P)`` all operate on
    them.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: tuple[Step, ...]) -> None:
        if not steps:
            raise PatternError("path pattern must have at least one step")
        self.steps = steps

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> Step:
        return self.steps[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathPattern):
            return NotImplemented
        return self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PathPattern({self.to_xpath()!r})"

    def to_xpath(self) -> str:
        return "".join(str(step) for step in self.steps)

    @property
    def length(self) -> int:
        """Number of labels — the ``l`` stored in ``LIST(P_i)`` entries."""
        return len(self.steps)

    def leaf_label(self) -> str:
        return self.steps[-1].label

    def to_tree_pattern(self) -> TreePattern:
        """Expand into a linear :class:`TreePattern` (answer = leaf)."""
        root = PatternNode(self.steps[0].label, self.steps[0].axis)
        node = root
        for step in self.steps[1:]:
            node = node.new_child(step.label, step.axis)
        return TreePattern(root, node)
