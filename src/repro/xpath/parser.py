"""Recursive-descent parser for the XPath fragment ``XP{/, //, *, []}``.

Grammar (whitespace allowed between tokens)::

    query      :=  ('/' | '//') step  ( ('/' | '//') step )*
    step       :=  nametest predicate*
    nametest   :=  NAME | '*'
    predicate  :=  '[' predexpr ']'
    predexpr   :=  attrtest | relpath
    attrtest   :=  '@' NAME ( cmp literal )?
    relpath    :=  ('.')? ( ('/' | '//') step )+   |   step ( ('/'|'//') step )*
    cmp        :=  '=' | '!=' | '<' | '<=' | '>' | '>='
    literal    :=  "'" chars "'"  |  '"' chars '"'  |  number

Relative predicate paths accept the common spellings ``[b/c]``,
``[./b/c]`` and ``[.//b]``.  The parsed result is a
:class:`~repro.xpath.pattern.TreePattern` whose answer node is the last
step of the main path, matching XPath semantics.
"""

from __future__ import annotations

import functools
import re
from functools import lru_cache

from ..errors import XPathSyntaxError
from .ast import Axis, AttributeConstraint, WILDCARD
from .pattern import PatternNode, TreePattern

__all__ = ["parse_xpath", "parse_path", "parse_cache_info", "parse_cache_clear"]

#: Bounded LRU over raw expression strings.  The answering hot path
#: re-parses identical query strings constantly; parsing dominates the
#: per-call cost for short queries once plans are cached downstream.
_PARSE_CACHE_SIZE = 512

_NAME_RE = re.compile(r"[A-Za-z_][\w.\-]*")
_NUMBER_RE = re.compile(r"-?\d+(\.\d+)?")
_CMP_OPS = ("!=", "<=", ">=", "=", "<", ">")


class _Scanner:
    """Character-level scanner with backtracking-free lookahead."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def eof(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        self.skip_ws()
        return self.text.startswith(literal, self.pos)

    def accept(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise XPathSyntaxError(
                f"expected {literal!r} at position {self.pos}", self.text
            )

    def name(self) -> str | None:
        self.skip_ws()
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            return None
        self.pos = match.end()
        return match.group(0)

    def fail(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(f"{message} at position {self.pos}", self.text)


def _parse_axis(scanner: _Scanner) -> Axis | None:
    """Consume '/' or '//' and return the axis, or None if absent."""
    if scanner.accept("//"):
        return Axis.DESCENDANT
    if scanner.accept("/"):
        return Axis.CHILD
    return None


def _parse_nametest(scanner: _Scanner) -> str:
    if scanner.accept("*"):
        return WILDCARD
    name = scanner.name()
    if name is None:
        raise scanner.fail("expected element name or '*'")
    return name


def _parse_literal(scanner: _Scanner) -> str:
    scanner.skip_ws()
    text = scanner.text
    if scanner.pos < len(text) and text[scanner.pos] in "'\"":
        quote = text[scanner.pos]
        end = text.find(quote, scanner.pos + 1)
        if end == -1:
            raise scanner.fail("unterminated string literal")
        value = text[scanner.pos + 1 : end]
        scanner.pos = end + 1
        return value
    match = _NUMBER_RE.match(text, scanner.pos)
    if match is None:
        raise scanner.fail("expected literal")
    scanner.pos = match.end()
    return match.group(0)


def _parse_attribute_test(scanner: _Scanner) -> AttributeConstraint:
    scanner.expect("@")
    name = scanner.name()
    if name is None:
        raise scanner.fail("expected attribute name after '@'")
    for op in _CMP_OPS:
        if scanner.accept(op):
            value = _parse_literal(scanner)
            return AttributeConstraint(name, op, value)
    return AttributeConstraint(name)


def _parse_predicate(scanner: _Scanner, host: PatternNode) -> None:
    """Parse one ``[...]`` predicate and attach it to ``host``."""
    scanner.expect("[")
    if scanner.peek("@"):
        constraint = _parse_attribute_test(scanner)
        host.constraints = host.constraints + (constraint,)
        scanner.expect("]")
        return

    # Relative path: [b/c], [./b/c], [.//b], [*//d] ...
    leading_axis = Axis.CHILD
    if scanner.accept("."):
        axis = _parse_axis(scanner)
        if axis is None:
            raise scanner.fail("expected '/' or '//' after '.'")
        leading_axis = axis
    else:
        axis = _parse_axis(scanner)
        if axis is not None:
            # [//b] and [/b] are accepted as spellings of [.//b], [./b].
            leading_axis = axis

    node = _parse_step(scanner, host, leading_axis)
    while True:
        axis = _parse_axis(scanner)
        if axis is None:
            break
        node = _parse_step(scanner, node, axis)
    scanner.expect("]")


def _parse_step(scanner: _Scanner, parent: PatternNode | None, axis: Axis) -> PatternNode:
    label = _parse_nametest(scanner)
    node = PatternNode(label, axis)
    if parent is not None:
        parent.add_child(node)
    while scanner.peek("["):
        _parse_predicate(scanner, node)
    return node


def parse_xpath(expression: str) -> TreePattern:
    """Parse an absolute XPath expression into a :class:`TreePattern`.

    The answer node is the last step of the main path.  The paper writes
    patterns like ``s[t]/p`` without a leading axis to mean "anchored
    anywhere"; accordingly, an expression with no leading ``/`` or ``//``
    is parsed as if it started with ``//``.

    Results are served from a bounded LRU keyed by the raw string; each
    call returns an independent deep copy, so callers that mutate the
    returned pattern (decomposition, normalization, answer re-marking)
    can never corrupt later parses of the same string.  Syntax errors
    are not cached.
    """
    return _parse_cached(expression).copy()


def parse_cache_info() -> functools._CacheInfo:
    """``functools.lru_cache`` statistics of the parse cache."""
    return _parse_cached.cache_info()


def parse_cache_clear() -> None:
    """Empty the parse cache (tests and memory-sensitive callers)."""
    _parse_cached.cache_clear()


@lru_cache(maxsize=_PARSE_CACHE_SIZE)
def _parse_cached(expression: str) -> TreePattern:
    scanner = _Scanner(expression)
    if scanner.eof():
        raise XPathSyntaxError("empty expression", expression)
    axis = _parse_axis(scanner)
    if axis is None:
        # Paper-style abbreviation: "s[t]/p" denotes a pattern anchored
        # anywhere, i.e. //s[t]/p.
        axis = Axis.DESCENDANT
    node = _parse_step(scanner, None, axis)
    root = node
    while True:
        next_axis = _parse_axis(scanner)
        if next_axis is None:
            break
        node = _parse_step(scanner, node, next_axis)
    if not scanner.eof():
        raise scanner.fail("unexpected trailing input")
    return TreePattern(root, node)


def parse_path(expression: str) -> "TreePattern":
    """Parse an expression that must be branchless; returns the pattern.

    Raises :class:`~repro.errors.XPathSyntaxError` when the expression
    contains predicates.
    """
    pattern = parse_xpath(expression)
    if not pattern.is_path():
        raise XPathSyntaxError("expected a branchless path", expression)
    if any(node.constraints for node in pattern.iter_nodes()):
        raise XPathSyntaxError("expected a path without predicates", expression)
    return pattern
