"""Fluent construction of tree patterns.

A small builder DSL for assembling patterns programmatically — test
suites and view-generation code read better than string concatenation:

    from repro.xpath.builder import step

    pattern = (
        step("s")                       # //s  (anchored anywhere)
        .where(step.child("t"))         # [t]
        .child("p")                     # /p   (answer node = path tail)
        .build()
    )
    assert pattern == parse_xpath("s[t]/p")

``step(label)`` starts a descendant-anchored pattern (paper convention);
``step.root(label)`` anchors at the document root.  ``.child`` /
``.descendant`` extend the spine, ``.where`` attaches branch
predicates, ``.attr`` attaches attribute constraints, and ``.build``
returns the :class:`~repro.xpath.pattern.TreePattern` with the spine
tail as answer node (``.returning()`` marks an earlier spine node
instead).
"""

from __future__ import annotations

from .ast import Axis, AttributeConstraint
from .pattern import PatternNode, TreePattern

__all__ = ["step", "StepBuilder"]


class StepBuilder:
    """Immutable-ish builder; every call returns ``self`` for chaining.

    Internally maintains the spine (list of nodes) plus the index of the
    designated answer node.
    """

    def __init__(self, label: str, axis: Axis) -> None:
        self._root = PatternNode(label, axis)
        self._spine = [self._root]
        self._ret_index: int | None = None

    # -- spine ----------------------------------------------------------
    def child(self, label: str) -> "StepBuilder":
        """Extend the spine with a ``/``-step."""
        self._spine.append(self._spine[-1].new_child(label, Axis.CHILD))
        return self

    def descendant(self, label: str) -> "StepBuilder":
        """Extend the spine with a ``//``-step."""
        self._spine.append(self._spine[-1].new_child(label, Axis.DESCENDANT))
        return self

    # -- predicates ------------------------------------------------------
    def where(self, branch: "StepBuilder") -> "StepBuilder":
        """Attach another builder's tree as a branch predicate of the
        current spine tail.  The branch's root axis is preserved
        (``step.child(...)`` → ``[x]``, ``step(...)`` → ``[.//x]``)."""
        self._spine[-1].add_child(branch._root)
        return self

    def attr(
        self, name: str, op: str | None = None, value: str | None = None
    ) -> "StepBuilder":
        """Attach an attribute constraint to the current spine tail."""
        tail = self._spine[-1]
        tail.constraints = tail.constraints + (
            AttributeConstraint(name, op, value),
        )
        return self

    # -- answer node -----------------------------------------------------
    def returning(self) -> "StepBuilder":
        """Mark the *current* spine tail as the answer node (default:
        the final tail at :meth:`build` time)."""
        self._ret_index = len(self._spine) - 1
        return self

    def build(self) -> TreePattern:
        """Produce the pattern.  The builder must not be reused after."""
        index = self._ret_index if self._ret_index is not None else -1
        return TreePattern(self._root, self._spine[index])


class _StepFactory:
    """``step("a")`` / ``step.child("a")`` / ``step.root("a")``."""

    def __call__(self, label: str) -> StepBuilder:
        """Start a ``//``-anchored pattern (the paper's convention for
        bare view definitions)."""
        return StepBuilder(label, Axis.DESCENDANT)

    @staticmethod
    def child(label: str) -> StepBuilder:
        """Start a ``/``-axis builder — as a ``.where`` branch this is a
        plain child predicate ``[label]``."""
        return StepBuilder(label, Axis.CHILD)

    @staticmethod
    def root(label: str) -> StepBuilder:
        """Start an absolute ``/label`` pattern."""
        return StepBuilder(label, Axis.CHILD)


step = _StepFactory()
