"""TJFast-style holistic twig join over extended Dewey leaf streams.

The paper's multi-view join is "similar to TJFast that uses extended
Dewey-code" (Lu et al., reference [22]): because every extended Dewey
code encodes its node's complete root-to-node label path, a tree
pattern can be matched by reading **only the streams of its leaf
labels** — interior pattern nodes never touch the data.

This module implements that evaluation strategy as a third base-data
algorithm (besides the set-DP evaluator and the BN/BF indexed variants):

1. For every root-to-leaf path of the pattern, scan the stream of codes
   whose label matches the path's leaf (all nodes for a wildcard leaf).
   Each code's FST-derived label path yields its *instantiations*: the
   consistent assignments of the path's pattern nodes to code prefixes
   (:func:`repro.core.twig_join.instantiate_path` — the same machinery
   the view join uses).
2. Join the per-path solutions on the pattern's *branching* nodes: two
   paths agree when they assign every shared pattern node the same
   concrete prefix.  A hash join keyed on the shared-node assignment
   tuple merges path solutions left to right.
3. Project the answer node's assignments.

Streams and assignments carry *packed* codes — order-preserving byte
strings (:func:`repro.xmltree.dewey.pack_code`) — so stream sorts, hash
joins and prefix bindings all compare flat bytes; only the final answer
set is unpacked back to Dewey tuples.  A prebuilt
:class:`repro.storage.index.DeweyStreamIndex` can supply the sorted
streams directly (the ``TJ`` baseline caches one per document).

Used as ground-truth cross-check in tests and as the ``TJ`` baseline.
Complexity is output-sensitive: each leaf stream is scanned once, and
merging is hash-based on branching-node keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..xmltree.builder import EncodedDocument
from ..xmltree.dewey import DeweyCode, PackedCode, packed_prefixes, unpack_code
from ..xpath.ast import WILDCARD
from ..xpath.pattern import PatternNode, TreePattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (storage →
    # matching at runtime; the index is only an annotation here)
    from ..storage.index import DeweyStreamIndex

__all__ = ["tjfast_evaluate", "leaf_streams"]


def leaf_streams(
    pattern: TreePattern,
    document: EncodedDocument,
    index: "DeweyStreamIndex | None" = None,
) -> dict[int, list[PackedCode]]:
    """Sorted packed-code stream per pattern leaf (by leaf node id).

    With ``index`` the presorted per-label streams are shared; without
    it the streams are built from the document's label index.
    """
    streams: dict[int, list[PackedCode]] = {}
    tree = document.tree
    for leaf in pattern.leaves():
        if index is not None:
            codes = (
                index.all_codes()
                if leaf.label == WILDCARD
                else index.stream(leaf.label)
            )
        else:
            if leaf.label == WILDCARD:
                nodes = list(tree.iter_nodes())
            else:
                nodes = tree.nodes_with_label(leaf.label)
            codes = sorted(
                node.dewey_packed
                for node in nodes
                if node.dewey_packed is not None
            )
        streams[id(leaf)] = codes
    return streams


def _path_solutions(
    leaf: PatternNode,
    stream: list[PackedCode],
    document: EncodedDocument,
    interesting: set[int],
) -> list[tuple[tuple[PackedCode, ...], dict[int, PackedCode]]]:
    """All (key, assignment) path solutions for one leaf stream.

    ``key`` is the assignment restricted to ``interesting`` pattern
    nodes (the branching nodes shared with other paths), in a canonical
    order, used as the join key.
    """
    # Imported lazily: twig_join sits in repro.core, which imports this
    # package during its own initialization.
    from ..core.twig_join import instantiate_path

    path_nodes = leaf.root_path()
    shared = [node for node in path_nodes if id(node) in interesting]
    solutions = []
    fst = document.fst
    for code in stream:
        labels = fst.decode_packed(code)
        prefixes = packed_prefixes(code)
        for bound in instantiate_path(path_nodes, prefixes, labels, {}):
            key = tuple(bound[id(node)] for node in shared)
            solutions.append((key, bound))
    return solutions


def _attributes_ok(
    pattern: TreePattern,
    assignment: dict[int, PackedCode],
    document: EncodedDocument,
) -> bool:
    """Check attribute constraints on the assigned concrete nodes."""
    for node in pattern.iter_nodes():
        if not node.constraints:
            continue
        packed = assignment.get(id(node))
        if packed is None:  # pragma: no cover - all nodes are assigned
            return False
        concrete = document.node_by_code(unpack_code(packed))
        if concrete is None:
            return False
        if not all(c.matches(concrete.attributes) for c in node.constraints):
            return False
    return True


def tjfast_evaluate(
    pattern: TreePattern,
    document: EncodedDocument,
    index: "DeweyStreamIndex | None" = None,
) -> set[DeweyCode]:
    """Answer ``pattern`` from leaf streams + encodings only.

    Returns the set of answer-node codes; equals
    :func:`repro.matching.evaluate` on the same document (tested).
    """
    leaves = pattern.leaves()
    # Branching nodes: pattern nodes lying on more than one root-to-leaf
    # path — the join keys.  With a single path there is nothing to join.
    occurrence: dict[int, int] = {}
    for leaf in leaves:
        for node in leaf.root_path():
            occurrence[id(node)] = occurrence.get(id(node), 0) + 1
    interesting = {node_id for node_id, count in occurrence.items() if count > 1}
    # The answer node's assignment must survive the merge even when it
    # lies on a single path.
    for node in pattern.ret.root_path():
        interesting.add(id(node))

    streams = leaf_streams(pattern, document, index)
    has_constraints = any(node.constraints for node in pattern.iter_nodes())

    merged: list[dict[int, PackedCode]] | None = None
    for leaf in leaves:
        solutions = _path_solutions(
            leaf, streams[id(leaf)], document, interesting
        )
        if merged is None:
            merged = []
            for _key, bound in solutions:
                merged.append(bound)
            continue
        # Hash join on the shared interesting nodes between the merged
        # assignments and this path's solutions.
        shared_ids = [
            id(node)
            for node in leaf.root_path()
            if id(node) in interesting and id(node) in _assigned_ids(merged)
        ]
        table: dict[tuple[PackedCode, ...], list[dict[int, PackedCode]]] = {}
        for assignment in merged:
            key = tuple(assignment[node_id] for node_id in shared_ids)
            table.setdefault(key, []).append(assignment)
        next_merged: list[dict[int, PackedCode]] = []
        seen: set[tuple[tuple[int, PackedCode], ...]] = set()
        for _key, bound in solutions:
            key = tuple(bound[node_id] for node_id in shared_ids)
            for assignment in table.get(key, []):
                combined = dict(assignment)
                combined.update(bound)
                signature = tuple(sorted(combined.items()))
                if signature not in seen:
                    seen.add(signature)
                    next_merged.append(combined)
        merged = next_merged
        if not merged:
            return set()

    assert merged is not None
    answers: set[DeweyCode] = set()
    ret_id = id(pattern.ret)
    for assignment in merged:
        if has_constraints and not _attributes_ok(
            pattern, assignment, document
        ):
            continue
        answers.add(unpack_code(assignment[ret_id]))
    return answers


def _assigned_ids(merged: list[dict[int, PackedCode]]) -> set[int]:
    return set(merged[0]) if merged else set()
