"""Tree-pattern minimization (paper Section II, reference [24]).

The paper assumes all patterns are minimized; minimization "may impact
the efficiency but not the effectiveness" of the approach.  The
implemented procedure removes *redundant branches*: a child subtree
``c1`` of node ``n`` is redundant when a sibling subtree ``c2`` implies
it — i.e. there is an anchored homomorphism from ``c1`` into ``c2``
(same host ``n``).  Subtrees containing the answer node are never
removed.  The procedure iterates to a fixpoint bottom-up, which yields
the unique minimal pattern for ``XP{/, //, []}``; with wildcards it is a
sound reducer (never changes semantics) though not guaranteed minimum,
matching standard practice.
"""

from __future__ import annotations

from ..xpath.ast import Axis
from ..xpath.pattern import PatternNode, TreePattern
from .homomorphism import node_subsumes

__all__ = ["minimize", "minimized_copy"]


def _subtree_absorbs(absorber: PatternNode, absorbed: PatternNode) -> bool:
    """True when ``absorbed``'s subtree (with its incoming edge) maps
    into ``absorber``'s subtree hanging off the same host node.

    Mapping rules match homomorphisms: the absorbed branch is the more
    general side, so its presence is implied by the absorber's.
    """

    def maps_to(general: PatternNode, specific: PatternNode) -> bool:
        if not node_subsumes(general, specific):
            return False
        return all(_placeable(child, specific) for child in general.children)

    def _placeable(child: PatternNode, host: PatternNode) -> bool:
        if child.axis is Axis.CHILD:
            return any(
                candidate.axis is Axis.CHILD and maps_to(child, candidate)
                for candidate in host.children
            )
        stack = list(host.children)
        while stack:
            candidate = stack.pop()
            if maps_to(child, candidate):
                return True
            stack.extend(candidate.children)
        return False

    # Edge admissibility at the top: a /-branch is implied only by a
    # /-branch; a //-branch is implied by a branch reachable at any depth.
    if absorbed.axis is Axis.CHILD:
        return absorber.axis is Axis.CHILD and maps_to(absorbed, absorber)
    if maps_to(absorbed, absorber):
        return True
    stack = list(absorber.iter_subtree())
    return any(
        maps_to(absorbed, candidate) for candidate in stack if candidate is not absorber
    )


def minimize(pattern: TreePattern) -> TreePattern:
    """Minimize ``pattern`` in place and return it.

    Removes every branch implied by a sibling branch, repeatedly, never
    touching the spine to the answer node.
    """
    protected = {id(node) for node in pattern.ret.ancestors_or_self()}
    changed = True
    while changed:
        changed = False
        for node in list(pattern.iter_nodes()):
            children = node.children
            if len(children) < 2:
                continue
            for candidate in list(children):
                if id(candidate) in protected:
                    continue
                others = [child for child in children if child is not candidate]
                if any(
                    _subtree_absorbs(other, candidate) for other in others
                ):
                    candidate.parent = None
                    children.remove(candidate)
                    changed = True
                    break
            if changed:
                break
    return pattern


def minimized_copy(pattern: TreePattern) -> TreePattern:
    """Return a minimized deep copy, leaving the input untouched."""
    return minimize(pattern.copy())
