"""Pattern-to-pattern homomorphisms (paper Section II).

A homomorphism ``h`` from pattern ``P`` to pattern ``Q`` maps P-nodes to
Q-nodes such that

* ``LABEL(p) = LABEL(h(p))`` or ``LABEL(p) = *``,
* every attribute constraint on ``p`` also appears on ``h(p)``
  (the paper's "exactly the same" rule for comparison predicates),
* a ``/``-edge ``(p1, p2)`` maps to a ``/``-edge ``(h(p1), h(p2))``,
* a ``//``-edge ``(p1, p2)`` maps to any downward path of length ≥ 1.

Patterns are absolute, so both are treated as hanging off a shared
virtual document root: a ``/``-rooted ``P`` must map its root onto a
``/``-rooted ``Q``'s root, while a ``//``-rooted ``P`` may map its root
to any node of ``Q``.

Existence of ``h : P → Q`` witnesses containment ``Q ⊑ P`` (sound, and
complete when ``P`` is a path pattern — Theorem 3.1).  Besides the
boolean check, this module computes *feasible pairs*: for each P-node
``p``, the set of Q-nodes ``q`` for which some global homomorphism maps
``p`` to ``q``.  Anchor enumeration for view selection
(:mod:`repro.core.leaf_cover`) is built on that relation.

Complexity: ``O(|P| · |Q| · depth(Q))`` with small constants; pattern
sizes in this problem are tiny (≤ ~15 nodes).
"""

from __future__ import annotations

from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern

__all__ = [
    "label_subsumes",
    "constraints_subsume",
    "node_subsumes",
    "has_homomorphism",
    "feasible_pairs",
    "feasible_anchors",
    "branch_maps_into",
    "subtree_maps_to",
]


def label_subsumes(general: str, specific: str) -> bool:
    """True when a pattern label ``general`` may map onto ``specific``.

    ``*`` subsumes every label; otherwise labels must be equal.  Note the
    asymmetry: a concrete label does *not* subsume ``*``.
    """
    return general == WILDCARD or general == specific


def constraints_subsume(general: PatternNode, specific: PatternNode) -> bool:
    """True when every attribute constraint of ``general`` also binds
    ``specific`` (exact syntactic match, per the paper's Section V)."""
    if not general.constraints:
        return True
    specific_set = set(specific.constraints)
    return all(constraint in specific_set for constraint in general.constraints)


def node_subsumes(general: PatternNode, specific: PatternNode) -> bool:
    """Label + constraint admissibility of mapping ``general → specific``."""
    return label_subsumes(general.label, specific.label) and constraints_subsume(
        general, specific
    )


class _HomMatcher:
    """Shared machinery for downward/upward homomorphism DP."""

    def __init__(self, source: TreePattern, target: TreePattern):
        self.source = source
        self.target = target
        self.target_nodes = list(target.iter_nodes())
        # Bottom-up order for the downward pass.
        self.target_postorder = list(reversed(self.target_nodes))
        self._down: dict[tuple[int, int], bool] = {}

    # -- downward feasibility ------------------------------------------
    def down(self, p: PatternNode, q: PatternNode) -> bool:
        """Can ``subtree(p)`` map with ``p → q``?"""
        key = (id(p), id(q))
        cached = self._down.get(key)
        if cached is not None:
            return cached
        result = node_subsumes(p, q) and all(
            self._child_placeable(child, q) for child in p.children
        )
        self._down[key] = result
        return result

    def _child_placeable(self, child: PatternNode, q: PatternNode) -> bool:
        if child.axis is Axis.CHILD:
            return any(
                qc.axis is Axis.CHILD and self.down(child, qc)
                for qc in q.children
            )
        # Descendant edge: any strict descendant of q may host the child.
        stack = list(q.children)
        while stack:
            candidate = stack.pop()
            if self.down(child, candidate):
                return True
            stack.extend(candidate.children)
        return False

    # -- root admissibility --------------------------------------------
    def root_targets(self) -> list[PatternNode]:
        """Q-nodes the source root may map to, per the leading axis."""
        if self.source.root.axis is Axis.CHILD:
            if self.target.root.axis is Axis.CHILD:
                return [self.target.root]
            return []
        return self.target_nodes

    # -- upward feasibility --------------------------------------------
    def feasible(self) -> dict[int, list[PatternNode]]:
        """Map ``id(p) -> [q, ...]`` of globally feasible pairs."""
        down_ok: dict[int, list[PatternNode]] = {}
        for p in self.source.iter_nodes():
            down_ok[id(p)] = [q for q in self.target_nodes if self.down(p, q)]

        up_ok: dict[tuple[int, int], bool] = {}

        def up(p: PatternNode, q: PatternNode) -> bool:
            key = (id(p), id(q))
            cached = up_ok.get(key)
            if cached is not None:
                return cached
            up_ok[key] = False  # cycle guard (tree: no real cycles)
            parent = p.parent
            if parent is None:
                result = q in self.root_targets()
            else:
                result = any(
                    self.down(parent, q_parent)
                    and up(parent, q_parent)
                    for q_parent in self._parent_candidates(p, q)
                )
            up_ok[key] = result
            return result

        feasible: dict[int, list[PatternNode]] = {}
        for p in self.source.iter_nodes():
            feasible[id(p)] = [q for q in down_ok[id(p)] if up(p, q)]
        return feasible

    def _parent_candidates(self, p: PatternNode, q: PatternNode) -> list[PatternNode]:
        """Q-nodes that may host ``p.parent`` given ``p → q``."""
        if p.axis is Axis.CHILD:
            if q.parent is not None and q.axis is Axis.CHILD:
                return [q.parent]
            return []
        return [ancestor for ancestor in q.ancestors_or_self() if ancestor is not q]

    # -- boolean existence ---------------------------------------------
    def exists(self) -> bool:
        return any(self.down(self.source.root, q) for q in self.root_targets())


def has_homomorphism(source: TreePattern, target: TreePattern) -> bool:
    """True when a homomorphism ``source → target`` exists.

    Witnesses ``target ⊑ source`` (sound; complete when ``source`` is a
    path pattern).
    """
    return _HomMatcher(source, target).exists()


def feasible_pairs(
    source: TreePattern, target: TreePattern
) -> dict[int, list[PatternNode]]:
    """For each source node id, the target nodes reachable under some
    global homomorphism.  Empty lists everywhere when none exists."""
    return _HomMatcher(source, target).feasible()


def feasible_anchors(source: TreePattern, target: TreePattern) -> list[PatternNode]:
    """Target nodes that ``RET(source)`` can map to — the *anchors* used
    by view selection (``h(RET(V))`` candidates inside the query)."""
    return feasible_pairs(source, target).get(id(source.ret), [])


def subtree_maps_to(general: PatternNode, specific: PatternNode) -> bool:
    """Downward homomorphism between two anchored subtrees:
    ``general`` (and everything below it) maps with ``general →
    specific`` under the usual label/constraint/edge rules."""
    if not node_subsumes(general, specific):
        return False
    return all(_branch_placeable(child, specific) for child in general.children)


def _branch_placeable(branch: PatternNode, host: PatternNode) -> bool:
    """Can ``branch`` (with its incoming axis) hang somewhere under
    ``host``?"""
    if branch.axis is Axis.CHILD:
        return any(
            candidate.axis is Axis.CHILD and subtree_maps_to(branch, candidate)
            for candidate in host.children
        )
    stack = list(host.children)
    while stack:
        candidate = stack.pop()
        if subtree_maps_to(branch, candidate):
            return True
        stack.extend(candidate.children)
    return False


def branch_maps_into(branch: PatternNode, host: PatternNode) -> bool:
    """Anchored *whole-branch* homomorphism used for predicate
    implication in leaf-cover computation.

    ``branch`` is a query subtree hanging off an anchor node mapped to
    ``host``; the entire branch (all its sub-branches, not just one
    root-to-leaf chain) must embed into ``host``'s subtree.  Requiring
    the whole branch keeps coverage sound when several obligations share
    an intermediate node below the join-verified region (see DESIGN.md
    §4).
    """
    return _branch_placeable(branch, host)
