"""Tree-pattern evaluation over XML trees (embeddings, paper Section II).

An *embedding* maps pattern nodes to tree nodes respecting labels
(pattern ``*`` matches anything), attribute constraints and edges
(``/`` → parent/child, ``//`` → proper ancestor/descendant).  Patterns
are absolute: a ``/``-rooted pattern maps its root to the document root,
a ``//``-rooted pattern to any node.

:func:`evaluate` returns the answer set ``{f(RET(P))}`` over all
embeddings ``f`` — the ground truth the rewriting engine is tested
against, and the engine behind view materialization and the BN/BF
baselines.  The algorithm is a two-pass set DP (bottom-up feasibility,
top-down answer projection), linear in ``|T|`` per pattern node.

:func:`evaluate_relative` evaluates a compensating pattern *inside* a
materialized fragment, anchoring the pattern root at the fragment root.
"""

from __future__ import annotations

from ..xmltree.tree import XMLNode, XMLTree
from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern

__all__ = [
    "SubtreeIndex",
    "evaluate",
    "evaluate_boolean",
    "evaluate_relative",
    "satisfies_relative",
]


class SubtreeIndex:
    """Node universe of one subtree with per-label postings.

    Built once per materialized fragment and cached on it, so repeated
    compensating-pattern evaluations (refinement, extraction) seed each
    pattern node from its label's posting list instead of rescanning
    and label-testing the whole subtree.  ``nodes[0]`` is the subtree
    root.  Postings are in document order; the evaluator only uses them
    as sets, so order is not load-bearing.
    """

    __slots__ = ("nodes", "_by_label")

    def __init__(self, root: XMLNode):
        self.nodes = list(root.iter_subtree())
        by_label: dict[str, list[XMLNode]] = {}
        for node in self.nodes:
            by_label.setdefault(node.label, []).append(node)
        self._by_label = by_label

    @property
    def root(self) -> XMLNode:
        return self.nodes[0]

    def with_label(self, label: str) -> list[XMLNode]:
        return self._by_label.get(label, [])


def _node_matches(pattern_node: PatternNode, tree_node: XMLNode) -> bool:
    if pattern_node.label != WILDCARD and pattern_node.label != tree_node.label:
        return False
    return all(
        constraint.matches(tree_node.attributes)
        for constraint in pattern_node.constraints
    )


def _pattern_postorder(root: PatternNode) -> list[PatternNode]:
    order: list[PatternNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        stack.extend(node.children)
    order.reverse()
    return order


def _ancestor_closure(nodes: set[XMLNode]) -> set[XMLNode]:
    """All proper ancestors of ``nodes`` (with early stop on overlap)."""
    closure: set[XMLNode] = set()
    for node in nodes:
        current = node.parent
        while current is not None and current not in closure:
            closure.add(current)
            current = current.parent
    return closure


class _Evaluator:
    """Bottom-up feasibility sets for one pattern over one node universe."""

    def __init__(
        self,
        pattern: TreePattern,
        universe: list[XMLNode],
        index: SubtreeIndex | None = None,
    ):
        self.pattern = pattern
        self.universe = universe
        #: Optional label postings over exactly ``universe``; callers
        #: passing one guarantee ``index.nodes`` equals the universe.
        self.index = index
        #: pattern-node id -> set of tree nodes hosting that subtree
        self.down: dict[int, set[XMLNode]] = {}
        #: pattern-node id -> ancestor closure of its down-set
        self._closures: dict[int, set[XMLNode]] = {}
        self._run()

    def _seed(self, pattern_node: PatternNode) -> set[XMLNode]:
        """Universe nodes matching the pattern node's label + constraints."""
        if self.index is not None and pattern_node.label != WILDCARD:
            posting = self.index.with_label(pattern_node.label)
            if not pattern_node.constraints:
                return set(posting)
            return {
                node
                for node in posting
                if all(
                    constraint.matches(node.attributes)
                    for constraint in pattern_node.constraints
                )
            }
        return {
            node for node in self.universe if _node_matches(pattern_node, node)
        }

    def _run(self) -> None:
        for pattern_node in _pattern_postorder(self.pattern.root):
            matched = self._seed(pattern_node)
            for child in pattern_node.children:
                if not matched:
                    break
                child_set = self.down[id(child)]
                if child.axis is Axis.CHILD:
                    parents = {
                        node.parent for node in child_set if node.parent is not None
                    }
                    matched &= parents
                else:
                    matched &= self._closure_of(child)
            self.down[id(pattern_node)] = matched

    def _closure_of(self, pattern_node: PatternNode) -> set[XMLNode]:
        key = id(pattern_node)
        closure = self._closures.get(key)
        if closure is None:
            closure = _ancestor_closure(self.down[key])
            self._closures[key] = closure
        return closure

    def root_hosts(self, tree_root: XMLNode) -> set[XMLNode]:
        """Feasible hosts of the pattern root under the leading axis."""
        hosts = self.down[id(self.pattern.root)]
        if self.pattern.root.axis is Axis.CHILD:
            return {tree_root} & hosts
        return hosts

    def answers_from(self, root_hosts: set[XMLNode]) -> set[XMLNode]:
        """Top-down projection: feasible hosts of ``RET`` given the
        feasible hosts of every spine ancestor."""
        spine = self.pattern.ret.root_path()
        current = root_hosts
        for pattern_node in spine[1:]:
            feasible = self.down[id(pattern_node)]
            if pattern_node.axis is Axis.CHILD:
                allowed = {
                    node
                    for node in feasible
                    if node.parent is not None and node.parent in current
                }
            else:
                allowed = {
                    node
                    for node in feasible
                    if any(anc in current for anc in node.ancestors())
                }
            current = allowed
            if not current:
                break
        return current


def evaluate(
    pattern: TreePattern,
    tree: XMLTree,
    universe: list[XMLNode] | None = None,
) -> set[XMLNode]:
    """Return the answer nodes of ``pattern`` over ``tree``.

    ``universe`` narrows the candidate node list (used by the indexed
    baselines); by default every node of the document is considered.
    """
    nodes = universe if universe is not None else list(tree.iter_nodes())
    evaluator = _Evaluator(pattern, nodes)
    return evaluator.answers_from(evaluator.root_hosts(tree.root))


def evaluate_boolean(pattern: TreePattern, tree: XMLTree) -> bool:
    """Return ``P(D)``: does any embedding of ``pattern`` exist?"""
    nodes = list(tree.iter_nodes())
    evaluator = _Evaluator(pattern, nodes)
    return bool(evaluator.root_hosts(tree.root))


def evaluate_relative(
    pattern: TreePattern,
    anchor: XMLNode,
    index: SubtreeIndex | None = None,
) -> set[XMLNode]:
    """Evaluate ``pattern`` anchored at ``anchor``.

    The pattern root must match ``anchor`` itself (labels and
    constraints); edges below are interpreted within the subtree of
    ``anchor``.  Used for compensating queries on materialized fragments.
    ``index``, when given, must be a :class:`SubtreeIndex` built over
    exactly ``anchor`` (fragments cache one); it replaces the per-call
    subtree scan.
    """
    if index is not None:
        subtree_nodes = index.nodes
    else:
        subtree_nodes = list(anchor.iter_subtree())
    evaluator = _Evaluator(pattern, subtree_nodes, index)
    hosts = evaluator.down[id(pattern.root)]
    if anchor not in hosts:
        return set()
    return evaluator.answers_from({anchor})


def satisfies_relative(
    pattern: TreePattern,
    anchor: XMLNode,
    index: SubtreeIndex | None = None,
) -> bool:
    """True when ``pattern`` (anchored at ``anchor``) has any embedding."""
    return bool(evaluate_relative(pattern, anchor, index))
