"""Exact tree-pattern containment via canonical models.

Containment of patterns in ``XP{/, //, *, []}`` is coNP-complete
(Miklau & Suciu — references [14], [15] of the paper).  The decision
procedure implemented here enumerates *canonical models* of the
candidate containee ``P``:

* every ``*`` label is replaced by a fresh label ``z`` outside the
  alphabet, and
* every ``//``-edge is expanded into a chain of 0..k ``z``-labeled
  nodes,

where ``k = w(Q) + 1`` and ``w(Q)`` is the length of the longest run of
consecutive wildcard steps in ``Q`` (the Miklau–Suciu bound).  Then
``P ⊑ Q`` iff ``Q`` matches every canonical model.

This is exponential in the number of ``//``-edges of ``P`` and exists to
*validate* the PTIME homomorphism pipeline in tests and to measure the
homomorphism-vs-containment gap (the paper's "rare in practice" claim);
production paths never call it.
"""

from __future__ import annotations

from itertools import product

from ..xmltree.tree import XMLNode, XMLTree
from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern
from .evaluate import evaluate_boolean

__all__ = ["contains", "equivalent", "wildcard_run_bound"]

#: Fresh label guaranteed outside workload alphabets.
_FRESH = "⁇z"


def wildcard_run_bound(pattern: TreePattern) -> int:
    """Return ``w(pattern) + 1``: the chain-length bound for canonical
    models, where ``w`` is the longest run of consecutive ``*`` steps on
    any root-to-leaf path."""
    best = 0

    def walk(node: PatternNode, run: int) -> None:
        nonlocal best
        run = run + 1 if node.label == WILDCARD else 0
        best = max(best, run)
        for child in node.children:
            walk(child, run)

    walk(pattern.root, 0)
    return best + 1


def _descendant_edges(pattern: TreePattern) -> list[PatternNode]:
    """Pattern nodes whose incoming edge is ``//`` (including the root
    when the pattern is ``//``-rooted)."""
    return [
        node for node in pattern.iter_nodes() if node.axis is Axis.DESCENDANT
    ]


def _build_canonical(
    pattern: TreePattern, chain_lengths: dict[int, int]
) -> XMLTree:
    """Materialize one canonical model of ``pattern``.

    ``chain_lengths[id(node)]`` gives the number of fresh nodes inserted
    above each ``//``-edge node.  A ``//``-rooted pattern gets a fresh
    super-root so the model is a proper single-rooted document.
    """

    def label_of(node: PatternNode) -> str:
        return _FRESH if node.label == WILDCARD else node.label

    def attach(pattern_node: PatternNode, parent: XMLNode | None) -> XMLNode:
        """Create the chain + element for ``pattern_node``; return the
        topmost created node (first chain link, or the element)."""
        attributes = {
            constraint.name: (
                constraint.value if constraint.value is not None else "1"
            )
            for constraint in pattern_node.constraints
        }
        element = XMLNode(label_of(pattern_node), attributes=attributes)
        chain = chain_lengths.get(id(pattern_node), 0)
        nodes = [XMLNode(_FRESH) for _ in range(chain)] + [element]
        for upper, lower in zip(nodes, nodes[1:]):
            upper.add_child(lower)
        if parent is not None:
            parent.add_child(nodes[0])
        for child in pattern_node.children:
            attach(child, element)
        return nodes[0]

    # For a //-rooted pattern, chain length 0 models the case where the
    # pattern root is the document root itself; longer chains bury it
    # under fresh ancestors.
    return XMLTree(attach(pattern.root, None))


def contains(containee: TreePattern, container: TreePattern) -> bool:
    """Exact boolean containment test: ``containee ⊑ container``.

    Enumerates canonical models of ``containee`` with chain lengths
    ``0..k`` per ``//``-edge (``k`` from :func:`wildcard_run_bound` on
    ``container``) and checks ``container`` matches each.
    """
    bound = wildcard_run_bound(container)
    desc_nodes = _descendant_edges(containee)
    lengths = range(0, bound + 1)
    for combo in product(lengths, repeat=len(desc_nodes)):
        chain_lengths = {
            id(node): count for node, count in zip(desc_nodes, combo)
        }
        model = _build_canonical(containee, chain_lengths)
        if not evaluate_boolean(container, model):
            return False
    return True


def equivalent(first: TreePattern, second: TreePattern) -> bool:
    """Exact boolean equivalence: mutual containment."""
    return contains(first, second) and contains(second, first)
