"""Pattern algorithms: homomorphism, evaluation, containment, minimization."""

from .containment import contains, equivalent, wildcard_run_bound
from .evaluate import (
    evaluate,
    evaluate_boolean,
    evaluate_relative,
    satisfies_relative,
)
from .homomorphism import (
    constraints_subsume,
    feasible_anchors,
    feasible_pairs,
    has_homomorphism,
    branch_maps_into,
    subtree_maps_to,
    label_subsumes,
    node_subsumes,
)
from .minimize import minimize, minimized_copy
from .tjfast import leaf_streams, tjfast_evaluate

__all__ = [
    "constraints_subsume",
    "contains",
    "equivalent",
    "evaluate",
    "evaluate_boolean",
    "evaluate_relative",
    "feasible_anchors",
    "feasible_pairs",
    "has_homomorphism",
    "branch_maps_into",
    "subtree_maps_to",
    "label_subsumes",
    "leaf_streams",
    "tjfast_evaluate",
    "minimize",
    "minimized_copy",
    "node_subsumes",
    "satisfies_relative",
    "wildcard_run_bound",
]
