"""Wire protocol: JSON request parsing, response encoding, error maps.

Kept separate from the HTTP server so the in-process load driver and
the tests can exercise exactly the encoding the server ships, without
sockets.  Status mapping:

========================================  ======
:class:`ProtocolError` (malformed body)   400
:class:`~repro.errors.XPathSyntaxError`   400
:class:`~repro.errors.PatternError`       400
duplicate view id (``ValueError``)        409
``ViewNotAnswerableError``                422
:class:`AdmissionRejectedError`           503 (+ ``Retry-After``)
:class:`DeadlineExceededError`            504 (+ ``Retry-After``)
edit-path ``ValueError``/``EncodingError``  400
any other :class:`~repro.errors.ReproError`  500
========================================  ======
"""

from __future__ import annotations

import json
from typing import Any

from ..core.system import AnswerOutcome
from ..errors import (
    EncodingError,
    PatternError,
    ReproError,
    ViewNotAnswerableError,
    XPathSyntaxError,
)
from ..xmltree.dewey import DeweyCode, format_code, parse_code
from ..xmltree.tree import XMLNode
from .scheduler import AdmissionRejectedError, DeadlineExceededError

__all__ = [
    "ProtocolError",
    "encode_outcome",
    "error_payload",
    "parse_edit_request",
    "parse_query_request",
    "parse_register_request",
]

_STRATEGIES = ("HV", "MV", "MN", "CB")


class ProtocolError(ReproError):
    """A request the protocol layer rejects before touching the engine."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _parse_json_object(raw: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"request body is not JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    return payload


def _required_string(payload: dict[str, Any], field: str) -> str:
    value = payload.get(field)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(f"field {field!r} must be a non-empty string")
    return value.strip()


def parse_query_request(raw: bytes) -> tuple[str, str, float | None]:
    """``{"query": ..., "strategy"?: ..., "timeout_ms"?: ...}`` →
    (query, strategy, timeout seconds or None)."""
    payload = _parse_json_object(raw)
    query = _required_string(payload, "query")
    strategy = payload.get("strategy", "HV")
    if strategy not in _STRATEGIES:
        raise ProtocolError(
            f"unknown strategy {strategy!r}; use one of {_STRATEGIES}"
        )
    timeout_ms = payload.get("timeout_ms")
    timeout: float | None = None
    if timeout_ms is not None:
        if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
            raise ProtocolError("timeout_ms must be a positive number")
        timeout = float(timeout_ms) / 1e3
    return query, strategy, timeout


def _parse_subtree(payload: Any, depth: int = 0) -> XMLNode:
    """Build an :class:`XMLNode` subtree from its JSON rendering:
    ``{"label": ..., "text"?: ..., "attributes"?: {...},
    "children"?: [...]}``."""
    if depth > 64:
        raise ProtocolError("subtree nesting exceeds 64 levels")
    if not isinstance(payload, dict):
        raise ProtocolError("subtree must be a JSON object")
    label = payload.get("label")
    if not isinstance(label, str) or not label:
        raise ProtocolError("subtree field 'label' must be a non-empty string")
    text = payload.get("text")
    if text is not None and not isinstance(text, str):
        raise ProtocolError("subtree field 'text' must be a string")
    attributes = payload.get("attributes")
    if attributes is not None:
        if not isinstance(attributes, dict) or not all(
            isinstance(key, str) and isinstance(value, str)
            for key, value in attributes.items()
        ):
            raise ProtocolError(
                "subtree field 'attributes' must map strings to strings"
            )
    node = XMLNode(label, text, attributes)
    children = payload.get("children", [])
    if not isinstance(children, list):
        raise ProtocolError("subtree field 'children' must be a list")
    for child in children:
        node.add_child(_parse_subtree(child, depth + 1))
    return node


def parse_edit_request(raw: bytes) -> tuple[str, DeweyCode, XMLNode | None]:
    """``{"op": "insert", "parent": <code>, "subtree": {...}}`` or
    ``{"op": "delete", "node": <code>}`` →
    (op, anchor code, subtree or None).

    Dewey codes use the dotted form ``/query`` answers already emit
    (e.g. ``"0.8.6"``).
    """
    payload = _parse_json_object(raw)
    op = payload.get("op")
    if op not in ("insert", "delete"):
        raise ProtocolError("field 'op' must be 'insert' or 'delete'")
    anchor_field = "parent" if op == "insert" else "node"
    try:
        code = parse_code(_required_string(payload, anchor_field))
    except EncodingError as error:
        raise ProtocolError(str(error)) from None
    if op == "delete":
        return op, code, None
    if "subtree" not in payload:
        raise ProtocolError("insert requests require a 'subtree' object")
    return op, code, _parse_subtree(payload["subtree"])


def parse_register_request(raw: bytes) -> tuple[str, str]:
    """``{"view_id": ..., "expression": ...}`` → (view_id, expression)."""
    payload = _parse_json_object(raw)
    return (
        _required_string(payload, "view_id"),
        _required_string(payload, "expression"),
    )


def encode_outcome(outcome: AnswerOutcome) -> dict[str, Any]:
    """JSON-safe rendering of an answer (codes as dotted strings)."""
    return {
        "codes": [format_code(code) for code in outcome.codes],
        "count": len(outcome.codes),
        "strategy": outcome.strategy,
        "views": outcome.view_ids,
        "plan_cache_hit": outcome.plan_cache_hit,
        "epoch": outcome.epoch_seq,
        "elapsed_ms": outcome.total_seconds * 1e3,
    }


def error_payload(
    error: BaseException,
) -> tuple[int, dict[str, Any], dict[str, str]]:
    """(HTTP status, JSON body, extra headers) for a failure."""
    headers: dict[str, str] = {}
    body: dict[str, Any] = {
        "error": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, ProtocolError):
        status = error.status
    elif isinstance(error, (XPathSyntaxError, PatternError)):
        status = 400
    elif isinstance(error, ViewNotAnswerableError):
        status = 422
        body["uncovered"] = sorted(
            str(obligation) for obligation in error.uncovered
        )
    elif isinstance(error, AdmissionRejectedError):
        status = 503
        headers["Retry-After"] = f"{error.retry_after:.3f}"
        body["retry_after"] = error.retry_after
    elif isinstance(error, DeadlineExceededError):
        status = 504
        retry_after = max(error.retry_after, 0.01)
        headers["Retry-After"] = f"{retry_after:.3f}"
        body["retry_after"] = retry_after
    elif isinstance(error, ValueError) and "duplicate view id" in str(error):
        status = 409
    elif isinstance(error, (ValueError, EncodingError)):
        # Edit-path caller errors: unknown Dewey code, root deletion,
        # already-attached subtree.
        status = 400
    else:
        status = 500
    return status, body, headers
