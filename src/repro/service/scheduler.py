"""Admission control, deadlines and request coalescing.

:class:`QueryScheduler` owns a pool of worker threads draining a
*bounded* queue.  Three service-level policies live here:

* **Backpressure** — when the queue is full, ``submit`` fails fast
  with :class:`AdmissionRejectedError` carrying a ``retry_after`` hint
  (an EWMA of recent service time scaled by queue depth), instead of
  letting latency grow without bound.
* **Deadlines** — every request carries a monotonic deadline.  A
  waiter that times out raises :class:`DeadlineExceededError`; a
  request whose whole flight expired while still queued is dropped by
  the worker without being evaluated (its waiters see the same error).
  Both flavors carry a ``retry_after`` hint, mirrored into the 504's
  ``Retry-After`` header by the protocol layer.
* **Coalescing** — concurrent requests for the same
  ``(canonical query, strategy)`` key fold into one *flight*: a single
  derivation/evaluation fans its outcome out to every waiter.  Each
  waiter receives its own shallow copy (callers mutate ``codes``), and
  replayed :class:`ViewNotAnswerableError` failures are re-raised as
  fresh instances so tracebacks are not shared across threads.

**Telemetry.**  The scheduler is the trace root: admission creates a
:class:`~repro.obs.trace.Trace` for each flight's leader, the worker
activates it around the engine call (so every span the derivation
pipeline opens lands in that trace), and completion feeds the slow-
query log.  Counters and latency histograms live in the system's
shared :class:`~repro.obs.registry.MetricsRegistry` — the same cells
``GET /metrics`` exposes — with a construction-time baseline so
:meth:`stats` stays per-scheduler even though the registry is shared.

Deadline and queue arithmetic intentionally stay on the *real*
``time.monotonic`` (they parameterize real ``Event.wait`` timeouts);
service-time measurement and slow-log timestamps go through the
injected telemetry clock so tests can fake them.

The scheduler never interprets results — correctness is entirely the
engine's business; this layer only decides *when* and *once*.
"""

from __future__ import annotations

import queue
import threading
import time

from ..core.system import AnswerOutcome
from ..errors import ReproError, ViewNotAnswerableError
from ..obs import SlowQueryRecord, Telemetry, Trace
from ..xpath.parser import parse_xpath
from ..xpath.pattern import TreePattern
from .engine import SnapshotEngine

__all__ = [
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "QueryScheduler",
]

#: EWMA smoothing for observed service time (higher = more history).
_EWMA_KEEP = 0.8
#: Optimistic prior for the first retry-after estimate, seconds.
_EWMA_PRIOR = 0.005

#: Request lifecycle events counted in ``repro_requests_total``.
_EVENTS = ("submitted", "coalesced", "completed", "failed")
#: Rejection reasons counted in ``repro_requests_rejected_total``:
#: ``queue_full`` → 503, ``deadline`` (waiter timed out) → 504,
#: ``expired_in_queue`` (worker dropped the flight unevaluated).
_REASONS = ("queue_full", "deadline", "expired_in_queue")


class AdmissionRejectedError(ReproError):
    """The bounded admission queue is full; retry after a backoff.

    ``retry_after`` is the scheduler's estimate (seconds) of when a
    slot is likely to be free: EWMA service time scaled by the number
    of requests ahead of the rejected one.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """The request was not served within its deadline.

    ``retry_after`` hints (seconds) when a retry is likely to be both
    admitted and served in time — the same EWMA-based estimate the
    admission rejection carries.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _copy_outcome(outcome: AnswerOutcome) -> AnswerOutcome:
    """Per-waiter copy of a fanned-out outcome.  Mutable containers
    (``codes``, ``candidates``, ``stage_seconds``) are copied; the
    immutable-in-practice intermediate artifacts are shared."""
    return AnswerOutcome(
        codes=list(outcome.codes),
        strategy=outcome.strategy,
        selection=outcome.selection,
        rewrite_result=outcome.rewrite_result,
        filter_result=outcome.filter_result,
        lookup_seconds=outcome.lookup_seconds,
        total_seconds=outcome.total_seconds,
        candidates=list(outcome.candidates),
        plan_cache_hit=outcome.plan_cache_hit,
        stage_seconds=dict(outcome.stage_seconds),
        epoch_seq=outcome.epoch_seq,
    )


def _copy_error(error: BaseException) -> BaseException:
    if isinstance(error, ViewNotAnswerableError):
        return ViewNotAnswerableError(
            str(error), uncovered=error.uncovered
        )
    if isinstance(error, DeadlineExceededError):
        return DeadlineExceededError(
            str(error), retry_after=error.retry_after
        )
    return error


class _Flight:
    """One coalesced unit of work plus its fan-out latch."""

    __slots__ = ("key", "pattern", "strategy", "deadline", "done",
                 "outcome", "error", "waiters", "trace", "created")

    def __init__(
        self,
        key: tuple[str, str],
        pattern: TreePattern,
        strategy: str,
        deadline: float,
        trace: Trace,
    ) -> None:
        self.key = key
        self.pattern = pattern
        self.strategy = strategy
        self.deadline = deadline
        self.done = threading.Event()
        self.outcome: AnswerOutcome | None = None
        self.error: BaseException | None = None
        self.waiters = 1
        #: The per-request trace; spans opened anywhere downstream of
        #: the worker's engine call nest into it.
        self.trace = trace
        #: Real-monotonic admission instant (queue-wait measurement).
        self.created = time.monotonic()


class QueryScheduler:
    """Bounded worker pool with coalescing over a snapshot engine."""

    def __init__(
        self,
        engine: SnapshotEngine,
        workers: int = 4,
        queue_limit: int = 64,
        default_timeout: float = 10.0,
        coalesce: bool = True,
        telemetry: Telemetry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._engine = engine
        self._default_timeout = default_timeout
        self._coalesce = coalesce
        if telemetry is None:
            system = getattr(engine, "system", None)
            telemetry = getattr(system, "telemetry", None)
        if telemetry is None:
            telemetry = Telemetry.create()
        #: The bundle shared with the engine's system (one registry,
        #: one slow log) — or a private one when the engine carries no
        #: system (test fakes).
        self.telemetry = telemetry
        self._clock = telemetry.clock
        self._tracer = telemetry.tracer
        self._slowlog = telemetry.slowlog
        self._queue: queue.Queue[_Flight | None] = queue.Queue(
            maxsize=max(1, queue_limit)
        )
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._flights: dict[tuple[str, str], _Flight] = {}
        #: guarded-by: _lock
        self._ewma = _EWMA_PRIOR
        #: guarded-by: _lock
        self._closed = False
        registry = telemetry.registry
        self._events_total = registry.counter(
            "repro_requests_total",
            "Scheduler request lifecycle events.",
            ("event",),
        )
        self._rejected_total = registry.counter(
            "repro_requests_rejected_total",
            "Requests refused or dropped by the scheduler "
            "(queue_full -> 503, deadline -> 504, expired_in_queue -> "
            "dropped unevaluated).",
            ("reason",),
        )
        self._request_hist = registry.histogram(
            "repro_request_seconds",
            "Engine service time of executed flights, by outcome.",
            ("status",),
        )
        registry.gauge(
            "repro_queue_depth",
            "Flights waiting in the admission queue.",
            fn=lambda: float(self._queue.qsize()),
        )
        registry.gauge(
            "repro_ewma_service_seconds",
            "EWMA of recent engine service time.",
            fn=self._ewma_value,
        )
        # stats() is per-scheduler; the registry cells are shared with
        # the system (and any earlier scheduler over it), so remember
        # the construction-time values and report deltas.
        self._events_base = {
            event: self._events_total.value(event) for event in _EVENTS
        }
        self._rejected_base = {
            reason: self._rejected_total.value(reason)
            for reason in _REASONS
        }
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-query-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str | TreePattern,
        strategy: str = "HV",
        timeout: float | None = None,
    ) -> AnswerOutcome:
        """Answer ``query`` through the pool, blocking the caller.

        Parses (and so syntax-validates) the query in the calling
        thread before admission, then either joins an in-flight
        request with the same canonical key or enqueues a new flight.
        """
        pattern = (
            query if isinstance(query, TreePattern) else parse_xpath(query)
        )
        budget = self._default_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        key = (pattern.canonical_string(), strategy)

        leader = False
        coalesced = False
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            flight = self._flights.get(key) if self._coalesce else None
            if flight is not None:
                flight.waiters += 1
                # The flight serves the furthest-out waiter; joiners
                # must not inherit an earlier leader's tighter budget.
                flight.deadline = max(flight.deadline, deadline)
                coalesced = True
            else:
                flight = _Flight(
                    key, pattern, strategy, deadline,
                    self._tracer.trace(),
                )
                leader = True
                if self._coalesce:
                    self._flights[key] = flight
        self._events_total.inc(1.0, "submitted")
        if coalesced:
            self._events_total.inc(1.0, "coalesced")

        if leader:
            try:
                self._queue.put_nowait(flight)
            except queue.Full:
                with self._lock:
                    if self._flights.get(key) is flight:
                        del self._flights[key]
                    retry_after = self._retry_after_locked()
                self._rejected_total.inc(1.0, "queue_full")
                raise AdmissionRejectedError(
                    f"admission queue full ({self._queue.maxsize} "
                    f"deep); retry after {retry_after:.3f}s",
                    retry_after=retry_after,
                ) from None

        remaining = deadline - time.monotonic()
        if not flight.done.wait(timeout=max(0.0, remaining)):
            with self._lock:
                retry_after = self._retry_after_locked()
            self._rejected_total.inc(1.0, "deadline")
            raise DeadlineExceededError(
                f"query not served within {budget:.3f}s",
                retry_after=retry_after,
            )
        if flight.error is not None:
            raise _copy_error(flight.error)
        assert flight.outcome is not None
        return _copy_outcome(flight.outcome)

    def stats(self) -> dict[str, object]:
        """Counter snapshot plus live queue depth.

        Values are deltas against the construction-time registry state,
        so they count *this* scheduler's traffic even though the
        underlying metric cells are shared with the system.
        """
        snapshot: dict[str, object] = {
            event: int(
                self._events_total.value(event) - self._events_base[event]
            )
            for event in _EVENTS
        }
        snapshot["rejected"] = int(
            self._rejected_total.value("queue_full")
            - self._rejected_base["queue_full"]
        )
        snapshot["expired"] = int(
            self._rejected_total.value("expired_in_queue")
            - self._rejected_base["expired_in_queue"]
        )
        snapshot["deadline_waits"] = int(
            self._rejected_total.value("deadline")
            - self._rejected_base["deadline"]
        )
        with self._lock:
            snapshot["ewma_service_seconds"] = self._ewma
            snapshot["in_flight"] = len(self._flights)
        snapshot["queue_depth"] = self._queue.qsize()
        snapshot["queue_limit"] = self._queue.maxsize
        snapshot["workers"] = len(self._threads)
        return snapshot

    def close(self) -> None:
        """Drain queued flights, stop the workers, reject new work."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _ewma_value(self) -> float:
        with self._lock:
            return self._ewma

    def _retry_after_locked(self) -> float:
        depth = self._queue.qsize() + 1
        return max(0.01, self._ewma * depth / len(self._threads))

    def _worker(self) -> None:
        while True:
            flight = self._queue.get()
            if flight is None:
                return
            if time.monotonic() >= flight.deadline:
                with self._lock:
                    retry_after = self._retry_after_locked()
                self._rejected_total.inc(1.0, "expired_in_queue")
                self._finish(
                    flight,
                    error=DeadlineExceededError(
                        "request expired while queued",
                        retry_after=retry_after,
                    ),
                )
                continue
            queue_wait = time.monotonic() - flight.created
            started = self._clock.monotonic()
            try:
                with flight.trace.activate():
                    with flight.trace.span(
                        "serve",
                        query=flight.key[0],
                        strategy=flight.strategy,
                    ) as span:
                        span.attributes["queue_wait_seconds"] = queue_wait
                        outcome = self._engine.answer(
                            flight.pattern, flight.strategy
                        )
            except BaseException as error:
                elapsed = self._clock.monotonic() - started
                self._request_hist.observe(elapsed, "error")
                self._record_slow(flight, None, error, elapsed)
                self._finish(flight, error=error)
            else:
                elapsed = self._clock.monotonic() - started
                with self._lock:
                    self._ewma = (
                        _EWMA_KEEP * self._ewma
                        + (1.0 - _EWMA_KEEP) * elapsed
                    )
                self._request_hist.observe(elapsed, "ok")
                self._record_slow(flight, outcome, None, elapsed)
                self._finish(flight, outcome=outcome)

    def _record_slow(
        self,
        flight: _Flight,
        outcome: AnswerOutcome | None,
        error: BaseException | None,
        elapsed: float,
    ) -> None:
        self._slowlog.record(SlowQueryRecord(
            trace_id=flight.trace.trace_id,
            query=flight.key[0],
            strategy=flight.strategy,
            status="ok" if error is None else type(error).__name__,
            total_seconds=elapsed,
            wall_time=self._clock.wall(),
            epoch=outcome.epoch_seq if outcome is not None else -1,
            plan_cache_hit=(
                outcome.plan_cache_hit if outcome is not None else False
            ),
            view_ids=(
                tuple(outcome.view_ids) if outcome is not None else ()
            ),
            stage_seconds=(
                dict(outcome.stage_seconds) if outcome is not None else {}
            ),
            spans=flight.trace.span_tree(),
        ))

    def _finish(
        self,
        flight: _Flight,
        outcome: AnswerOutcome | None = None,
        error: BaseException | None = None,
    ) -> None:
        flight.outcome = outcome
        flight.error = error
        with self._lock:
            # Unpublish before waking waiters so a new arrival starts a
            # fresh flight rather than joining a finished one.
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        self._events_total.inc(
            1.0, "completed" if error is None else "failed"
        )
        flight.done.set()
