"""Admission control, deadlines and request coalescing.

:class:`QueryScheduler` owns a pool of worker threads draining a
*bounded* queue.  Three service-level policies live here:

* **Backpressure** — when the queue is full, ``submit`` fails fast
  with :class:`AdmissionRejectedError` carrying a ``retry_after`` hint
  (an EWMA of recent service time scaled by queue depth), instead of
  letting latency grow without bound.
* **Deadlines** — every request carries a monotonic deadline.  A
  waiter that times out raises :class:`DeadlineExceededError`; a
  request whose whole flight expired while still queued is dropped by
  the worker without being evaluated (its waiters see the same error).
* **Coalescing** — concurrent requests for the same
  ``(canonical query, strategy)`` key fold into one *flight*: a single
  derivation/evaluation fans its outcome out to every waiter.  Each
  waiter receives its own shallow copy (callers mutate ``codes``), and
  replayed :class:`ViewNotAnswerableError` failures are re-raised as
  fresh instances so tracebacks are not shared across threads.

The scheduler never interprets results — correctness is entirely the
engine's business; this layer only decides *when* and *once*.
"""

from __future__ import annotations

import queue
import threading
import time

from ..core.system import AnswerOutcome
from ..errors import ReproError, ViewNotAnswerableError
from ..xpath.parser import parse_xpath
from ..xpath.pattern import TreePattern
from .engine import SnapshotEngine

__all__ = [
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "QueryScheduler",
]

#: EWMA smoothing for observed service time (higher = more history).
_EWMA_KEEP = 0.8
#: Optimistic prior for the first retry-after estimate, seconds.
_EWMA_PRIOR = 0.005


class AdmissionRejectedError(ReproError):
    """The bounded admission queue is full; retry after a backoff.

    ``retry_after`` is the scheduler's estimate (seconds) of when a
    slot is likely to be free: EWMA service time scaled by the number
    of requests ahead of the rejected one.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """The request was not served within its deadline."""


def _copy_outcome(outcome: AnswerOutcome) -> AnswerOutcome:
    """Per-waiter copy of a fanned-out outcome.  Mutable containers
    (``codes``, ``candidates``, ``stage_seconds``) are copied; the
    immutable-in-practice intermediate artifacts are shared."""
    return AnswerOutcome(
        codes=list(outcome.codes),
        strategy=outcome.strategy,
        selection=outcome.selection,
        rewrite_result=outcome.rewrite_result,
        filter_result=outcome.filter_result,
        lookup_seconds=outcome.lookup_seconds,
        total_seconds=outcome.total_seconds,
        candidates=list(outcome.candidates),
        plan_cache_hit=outcome.plan_cache_hit,
        stage_seconds=dict(outcome.stage_seconds),
        epoch_seq=outcome.epoch_seq,
    )


def _copy_error(error: BaseException) -> BaseException:
    if isinstance(error, ViewNotAnswerableError):
        return ViewNotAnswerableError(
            str(error), uncovered=error.uncovered
        )
    if isinstance(error, DeadlineExceededError):
        return DeadlineExceededError(str(error))
    return error


class _Flight:
    """One coalesced unit of work plus its fan-out latch."""

    __slots__ = ("key", "pattern", "strategy", "deadline", "done",
                 "outcome", "error", "waiters")

    def __init__(
        self,
        key: tuple[str, str],
        pattern: TreePattern,
        strategy: str,
        deadline: float,
    ) -> None:
        self.key = key
        self.pattern = pattern
        self.strategy = strategy
        self.deadline = deadline
        self.done = threading.Event()
        self.outcome: AnswerOutcome | None = None
        self.error: BaseException | None = None
        self.waiters = 1


class QueryScheduler:
    """Bounded worker pool with coalescing over a snapshot engine."""

    def __init__(
        self,
        engine: SnapshotEngine,
        workers: int = 4,
        queue_limit: int = 64,
        default_timeout: float = 10.0,
        coalesce: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._engine = engine
        self._default_timeout = default_timeout
        self._coalesce = coalesce
        self._queue: queue.Queue[_Flight | None] = queue.Queue(
            maxsize=max(1, queue_limit)
        )
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._flights: dict[tuple[str, str], _Flight] = {}
        #: guarded-by: _lock
        self._ewma = _EWMA_PRIOR
        #: guarded-by: _lock
        self._closed = False
        #: guarded-by: _lock
        self._counters = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "expired": 0,
        }
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-query-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str | TreePattern,
        strategy: str = "HV",
        timeout: float | None = None,
    ) -> AnswerOutcome:
        """Answer ``query`` through the pool, blocking the caller.

        Parses (and so syntax-validates) the query in the calling
        thread before admission, then either joins an in-flight
        request with the same canonical key or enqueues a new flight.
        """
        pattern = (
            query if isinstance(query, TreePattern) else parse_xpath(query)
        )
        budget = self._default_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        key = (pattern.canonical_string(), strategy)

        leader = False
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._counters["submitted"] += 1
            flight = self._flights.get(key) if self._coalesce else None
            if flight is not None:
                flight.waiters += 1
                # The flight serves the furthest-out waiter; joiners
                # must not inherit an earlier leader's tighter budget.
                flight.deadline = max(flight.deadline, deadline)
                self._counters["coalesced"] += 1
            else:
                flight = _Flight(key, pattern, strategy, deadline)
                leader = True
                if self._coalesce:
                    self._flights[key] = flight

        if leader:
            try:
                self._queue.put_nowait(flight)
            except queue.Full:
                with self._lock:
                    if self._flights.get(key) is flight:
                        del self._flights[key]
                    self._counters["rejected"] += 1
                    retry_after = self._retry_after_locked()
                raise AdmissionRejectedError(
                    f"admission queue full ({self._queue.maxsize} "
                    f"deep); retry after {retry_after:.3f}s",
                    retry_after=retry_after,
                ) from None

        remaining = deadline - time.monotonic()
        if not flight.done.wait(timeout=max(0.0, remaining)):
            raise DeadlineExceededError(
                f"query not served within {budget:.3f}s"
            )
        if flight.error is not None:
            raise _copy_error(flight.error)
        assert flight.outcome is not None
        return _copy_outcome(flight.outcome)

    def stats(self) -> dict[str, object]:
        """Counter snapshot plus live queue depth."""
        with self._lock:
            snapshot: dict[str, object] = dict(self._counters)
            snapshot["ewma_service_seconds"] = self._ewma
            snapshot["in_flight"] = len(self._flights)
        snapshot["queue_depth"] = self._queue.qsize()
        snapshot["queue_limit"] = self._queue.maxsize
        snapshot["workers"] = len(self._threads)
        return snapshot

    def close(self) -> None:
        """Drain queued flights, stop the workers, reject new work."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "QueryScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _retry_after_locked(self) -> float:
        depth = self._queue.qsize() + 1
        return max(0.01, self._ewma * depth / len(self._threads))

    def _worker(self) -> None:
        while True:
            flight = self._queue.get()
            if flight is None:
                return
            if time.monotonic() >= flight.deadline:
                with self._lock:
                    self._counters["expired"] += 1
                self._finish(
                    flight,
                    error=DeadlineExceededError(
                        "request expired while queued"
                    ),
                )
                continue
            started = time.monotonic()
            try:
                outcome = self._engine.answer(
                    flight.pattern, flight.strategy
                )
            except BaseException as error:
                self._finish(flight, error=error)
            else:
                elapsed = time.monotonic() - started
                with self._lock:
                    self._ewma = (
                        _EWMA_KEEP * self._ewma
                        + (1.0 - _EWMA_KEEP) * elapsed
                    )
                self._finish(flight, outcome=outcome)

    def _finish(
        self,
        flight: _Flight,
        outcome: AnswerOutcome | None = None,
        error: BaseException | None = None,
    ) -> None:
        flight.outcome = outcome
        flight.error = error
        with self._lock:
            # Unpublish before waking waiters so a new arrival starts a
            # fresh flight rather than joining a finished one.
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            if error is None:
                self._counters["completed"] += 1
            else:
                self._counters["failed"] += 1
        flight.done.set()
