"""Stdlib-only HTTP/JSON front end: ``python -m repro serve``.

Endpoints:

* ``POST /query``    — ``{"query", "strategy"?, "timeout_ms"?}`` →
  answer codes via the scheduler (admission control + coalescing).
* ``POST /register`` — ``{"view_id", "expression"}`` → 201 on
  success, 409 on a duplicate id.
* ``POST /edit``     — ``{"op": "insert", "parent", "subtree"}`` or
  ``{"op": "delete", "node"}`` → the maintenance report.  Runs under
  the engine's writer gate, so in-flight answers drain first and the
  edit is a single linearization point.
* ``GET /stats``     — engine + scheduler counter snapshot.
* ``GET /metrics``   — Prometheus text exposition (version 0.0.4) of
  the system's shared metrics registry.
* ``GET /debug/slow[?limit=N]`` — slow-query log, slowest first, each
  record carrying its stage timings and (when sampled) span tree.
* ``GET /healthz``   — liveness plus the current epoch sequence.

The handler delegates every status decision to
:func:`repro.service.protocol.error_payload`, so the HTTP layer stays
a thin socket adapter that tests can bypass entirely.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from ..delta import DocumentEditor, MaintenanceReport
from ..obs import render_prometheus
from .engine import SnapshotEngine
from .protocol import (
    ProtocolError,
    encode_outcome,
    error_payload,
    parse_edit_request,
    parse_query_request,
    parse_register_request,
)
from .scheduler import QueryScheduler

__all__ = ["QueryServiceServer"]

#: Request bodies past this size are rejected before reading (413).
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1.0"
    #: Injected by :class:`QueryServiceServer` via subclassing.
    service: "QueryServiceServer"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if self.service.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, error: BaseException) -> None:
        status, body, headers = error_payload(error)
        self._send_json(status, body, headers)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ProtocolError("request body too large", status=413)
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def do_POST(self) -> None:
        try:
            raw = self._read_body()
            if self.path == "/query":
                query, strategy, timeout = parse_query_request(raw)
                outcome = self.service.scheduler.submit(
                    query, strategy, timeout=timeout
                )
                self._send_json(200, encode_outcome(outcome))
            elif self.path == "/register":
                view_id, expression = parse_register_request(raw)
                fits = self.service.engine.register_view(
                    view_id, expression
                )
                self._send_json(
                    201, {"view_id": view_id, "materialized": fits}
                )
            elif self.path == "/edit":
                op, code, subtree = parse_edit_request(raw)
                editor = self.service.editor

                def run(system: Any) -> MaintenanceReport:
                    if op == "insert":
                        assert subtree is not None
                        return editor.insert_subtree(code, subtree)
                    return editor.delete_subtree(code)

                report = self.service.engine.maintain(run)
                self._send_json(200, report.as_dict())
            else:
                self._send_json(404, {"error": "NotFound",
                                      "message": self.path})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except BaseException as error:
            self._send_error(error)

    def _send_metrics(self) -> None:
        telemetry = self.service.engine.system.telemetry
        payload = render_prometheus(
            telemetry.registry.collect()
        ).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_slowlog(self, query_string: str) -> None:
        params = parse_qs(query_string)
        limit: int | None = None
        raw_limit = params.get("limit", [""])[0]
        if raw_limit:
            try:
                limit = int(raw_limit)
            except ValueError:
                limit = 0
            if limit < 1:
                raise ProtocolError("limit must be a positive integer")
        slowlog = self.service.engine.system.telemetry.slowlog
        body: dict[str, Any] = dict(slowlog.stats())
        body["slow_queries"] = [
            record.as_dict() for record in slowlog.entries(limit)
        ]
        self._send_json(200, body)

    def do_GET(self) -> None:
        path, _, query_string = self.path.partition("?")
        try:
            if path == "/stats":
                self._send_json(
                    200,
                    {
                        "engine": self.service.engine.stats(),
                        "scheduler": self.service.scheduler.stats(),
                    },
                )
            elif path == "/metrics":
                self._send_metrics()
            elif path == "/debug/slow":
                self._send_slowlog(query_string)
            elif path == "/healthz":
                epoch = self.service.engine.system.current_epoch()
                self._send_json(
                    200, {"status": "ok", "epoch": epoch.seq}
                )
            else:
                self._send_json(404, {"error": "NotFound",
                                      "message": self.path})
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except BaseException as error:
            self._send_error(error)


class QueryServiceServer:
    """Owns the listening socket; start/serve/shutdown lifecycle."""

    def __init__(
        self,
        engine: SnapshotEngine,
        scheduler: QueryScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler
        self.verbose = verbose
        #: One editor per server: its metrics handles and fragment
        #: patcher are reused across edits; ``maintain`` serializes use.
        self.editor = DocumentEditor(engine.system)
        service = self

        class _BoundHandler(_Handler):
            pass

        _BoundHandler.service = service
        self._httpd = ThreadingHTTPServer((host, port), _BoundHandler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, bound port) — the port is concrete even when 0 was
        requested (ephemeral bind)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Serve in a daemon thread (tests / smoke mode)."""
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-http",
            daemon=True,
        )
        thread.start()
        self._thread = thread

    def serve_forever(self) -> None:
        """Serve on the calling thread until ``shutdown``/interrupt."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, join the serve thread, close the socket and
        the scheduler's worker pool."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
        self.scheduler.close()

    def __enter__(self) -> "QueryServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
