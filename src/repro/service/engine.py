"""Snapshot engine: concurrent reads over an epoch-published registry.

:class:`~repro.core.system.MaterializedViewSystem` publishes every
registry mutation as a fresh immutable :class:`RegistryEpoch`, so a
reader that pins the current epoch once sees one consistent (views,
VFILTER, plan cache) triple for the whole answer — registration never
blocks readers and readers never block registration.

The one operation snapshots cannot cover is **in-place document
maintenance** (:class:`repro.delta.maintenance.DocumentEditor` mutates
the shared base document and its codes directly).  For that the engine
keeps a readers/writer gate: ``answer`` and ``register_view`` enter as
shared participants, ``maintain`` waits until every in-flight
participant drains, runs with exclusive access, and then reopens the
gate.  Maintenance requests also *bar the door* — new participants
queue behind a waiting maintainer so a steady read stream cannot
starve it.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

from ..core.system import AnswerOutcome, MaterializedViewSystem
from ..obs import current_trace
from ..xpath.pattern import TreePattern

__all__ = ["SnapshotEngine"]

T = TypeVar("T")


class SnapshotEngine:
    """Thread-safe facade over one :class:`MaterializedViewSystem`."""

    def __init__(self, system: MaterializedViewSystem) -> None:
        self._system = system  #: state: hard
        self._gate = threading.Condition(threading.Lock())
        #: guarded-by: _gate
        self._active = 0  #: state: counter
        #: guarded-by: _gate
        self._maintenance_waiting = 0  #: state: counter
        #: guarded-by: _gate
        self._maintaining = False  #: state: hard

    # ------------------------------------------------------------------
    # shared-side gate
    # ------------------------------------------------------------------
    def _enter_shared(self) -> None:
        with self._gate:
            while self._maintaining or self._maintenance_waiting:
                self._gate.wait()
            self._active += 1

    def _exit_shared(self) -> None:
        with self._gate:
            self._active -= 1
            if self._active == 0:
                self._gate.notify_all()

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    @property
    def system(self) -> MaterializedViewSystem:
        return self._system

    def answer(
        self, query: str | TreePattern, strategy: str = "HV"
    ) -> AnswerOutcome:
        """Answer ``query`` against the epoch current at call time.

        The underlying system pins the epoch on entry; the outcome's
        ``epoch_seq`` records which registry state served it (the
        linearization point used by the concurrency tests).
        """
        # The gate wait is where reader/maintenance contention shows
        # up; give it its own span so slow-log entries distinguish
        # "blocked behind maintenance" from "derivation was slow".
        with current_trace().span("engine_gate"):
            self._enter_shared()
        try:
            return self._system.answer(query, strategy)
        finally:
            self._exit_shared()

    def register_view(
        self, view_id: str, expression: str | TreePattern
    ) -> bool:
        """Register and materialize a view; concurrent answers keep
        reading their pinned epochs and are never blocked."""
        self._enter_shared()
        try:
            return self._system.register_view(view_id, expression)
        finally:
            self._exit_shared()

    #: state: mutator
    def maintain(
        self, operation: Callable[[MaterializedViewSystem], T]
    ) -> T:
        """Run ``operation`` with exclusive access to the system.

        Waits for in-flight answers/registrations to drain (new ones
        queue behind us), then calls ``operation(system)`` — typically
        a :class:`~repro.delta.maintenance.DocumentEditor` update.
        """
        with current_trace().span("maintenance_drain"):
            with self._gate:
                self._maintenance_waiting += 1
                while self._maintaining or self._active:
                    self._gate.wait()
                self._maintenance_waiting -= 1
                self._maintaining = True
        try:
            return operation(self._system)
        finally:
            with self._gate:
                self._maintaining = False
                self._gate.notify_all()

    def stats(self) -> dict[str, object]:
        """Deep-snapshot statistics of the underlying system."""
        return self._system.stats()
