"""Concurrent query-serving subsystem.

Stacks four layers on top of :class:`repro.core.system.MaterializedViewSystem`:

* :mod:`repro.service.engine` — epoch-pinned snapshot reads plus a
  readers/writer gate so in-place document maintenance (the one
  non-snapshot operation) gets exclusive access;
* :mod:`repro.service.scheduler` — worker pool with bounded admission,
  per-request deadlines and single-flight request coalescing;
* :mod:`repro.service.protocol` / :mod:`repro.service.server` — a
  stdlib-only HTTP/JSON front end (``python -m repro serve``);
* :mod:`repro.service.loadgen` — closed- and open-loop load drivers
  for the throughput benchmark.
"""

from __future__ import annotations

from .engine import SnapshotEngine
from .loadgen import (
    HTTPClient,
    InProcessClient,
    LoadReport,
    build_query_mix,
    run_closed_loop,
    run_open_loop,
    zipf_weights,
)
from .protocol import ProtocolError, encode_outcome, error_payload
from .scheduler import (
    AdmissionRejectedError,
    DeadlineExceededError,
    QueryScheduler,
)
from .server import QueryServiceServer

__all__ = [
    "AdmissionRejectedError",
    "DeadlineExceededError",
    "HTTPClient",
    "InProcessClient",
    "LoadReport",
    "ProtocolError",
    "QueryScheduler",
    "QueryServiceServer",
    "SnapshotEngine",
    "build_query_mix",
    "encode_outcome",
    "error_payload",
    "run_closed_loop",
    "run_open_loop",
    "zipf_weights",
]
