"""Load drivers for the query service.

Two client shapes and two loop disciplines:

* :class:`InProcessClient` submits straight to a
  :class:`~repro.service.scheduler.QueryScheduler` (no sockets — what
  the throughput benchmark uses); :class:`HTTPClient` speaks the real
  wire protocol over ``http.client`` (what the CLI smoke test uses).
  Both report plain HTTP status codes, failures mapped through
  :func:`repro.service.protocol.error_payload`, so reports are
  comparable across transports.
* :func:`run_closed_loop` keeps ``concurrency`` workers each issuing
  the next request as soon as the previous answer lands (throughput at
  full utilisation); :func:`run_open_loop` fires requests on a fixed
  Poisson-less arrival schedule regardless of completion (latency
  under a target offered load, queueing time included).

Query mixes come from the system's own materialized views
(:func:`build_query_mix`), weighted uniformly or by a Zipf law
(:func:`zipf_weights`) — the skew that makes request coalescing and
the plan cache earn their keep.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence

from ..core.system import MaterializedViewSystem
from .protocol import error_payload
from .scheduler import QueryScheduler

__all__ = [
    "HTTPClient",
    "InProcessClient",
    "LoadReport",
    "build_query_mix",
    "run_closed_loop",
    "run_open_loop",
    "zipf_weights",
]


class ServiceClient(Protocol):
    """Anything that can issue one query and report an HTTP status."""

    def query(
        self, expression: str, strategy: str = "HV",
        timeout: float | None = None,
    ) -> int: ...


@dataclass(slots=True)
class LoadReport:
    """Aggregate outcome of one load run."""

    requests: int = 0
    elapsed_seconds: float = 0.0
    status_counts: dict[int, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)

    @property
    def ok(self) -> int:
        return self.status_counts.get(200, 0)

    @property
    def server_errors(self) -> int:
        return sum(
            count for status, count in self.status_counts.items()
            if status >= 500 and status not in (503, 504)
        )

    @property
    def throughput(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.ok / self.elapsed_seconds

    def percentile(self, fraction: float) -> float:
        """Latency percentile in milliseconds (0 when empty)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(
            len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5)
        )
        return ordered[index]

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "status_counts": {
                str(status): count
                for status, count in sorted(self.status_counts.items())
            },
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
        }

    def merge(self, status: int, latency_ms: float) -> None:
        self.requests += 1
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        self.latencies_ms.append(latency_ms)


class InProcessClient:
    """Straight to the scheduler — measures the service minus HTTP."""

    def __init__(self, scheduler: QueryScheduler) -> None:
        self._scheduler = scheduler

    def query(
        self, expression: str, strategy: str = "HV",
        timeout: float | None = None,
    ) -> int:
        try:
            self._scheduler.submit(expression, strategy, timeout=timeout)
        except BaseException as error:
            return error_payload(error)[0]
        return 200


class HTTPClient:
    """One persistent connection speaking the real wire protocol.

    Not thread-safe (``http.client`` connections are serial); give
    each load worker its own instance via the factory argument."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._connection = http.client.HTTPConnection(
            host, port, timeout=timeout
        )

    def query(
        self, expression: str, strategy: str = "HV",
        timeout: float | None = None,
    ) -> int:
        body: dict[str, Any] = {
            "query": expression, "strategy": strategy,
        }
        if timeout is not None:
            body["timeout_ms"] = timeout * 1e3
        try:
            self._connection.request(
                "POST", "/query", json.dumps(body),
                {"Content-Type": "application/json"},
            )
            response = self._connection.getresponse()
            response.read()
            return response.status
        except (http.client.HTTPException, OSError):
            self._connection.close()
            return 599

    def close(self) -> None:
        self._connection.close()


def zipf_weights(count: int, exponent: float = 1.1) -> list[float]:
    """Rank-frequency weights ``1/rank**exponent`` for ``count`` items."""
    return [1.0 / (rank ** exponent) for rank in range(1, count + 1)]


def build_query_mix(
    system: MaterializedViewSystem, limit: int | None = None
) -> list[str]:
    """Query pool drawn from the system's own materialized views —
    every query is answerable, so failures in a run indicate service
    behaviour (backpressure, deadlines), not workload noise."""
    expressions = [
        view.pattern.to_xpath() for view in system.materialized_views()
    ]
    if limit is not None:
        expressions = expressions[:limit]
    if not expressions:
        raise ValueError("system has no materialized views to query")
    return expressions


def _draw(
    rng: random.Random,
    queries: Sequence[str],
    cumulative: list[float] | None,
) -> str:
    if cumulative is None:
        return queries[rng.randrange(len(queries))]
    point = rng.random() * cumulative[-1]
    low, high = 0, len(cumulative) - 1
    while low < high:
        mid = (low + high) // 2
        if cumulative[mid] < point:
            low = mid + 1
        else:
            high = mid
    return queries[low]


def _cumulative(weights: Sequence[float] | None) -> list[float] | None:
    if weights is None:
        return None
    total = 0.0
    out: list[float] = []
    for weight in weights:
        total += weight
        out.append(total)
    return out


def run_closed_loop(
    client_factory: Callable[[], ServiceClient],
    queries: Sequence[str],
    total_requests: int,
    concurrency: int,
    weights: Sequence[float] | None = None,
    seed: int = 0,
    strategy: str = "HV",
    timeout: float | None = None,
) -> LoadReport:
    """``concurrency`` workers, each firing its next request the
    moment the previous one completes, until ``total_requests`` have
    been issued in total."""
    if weights is not None and len(weights) != len(queries):
        raise ValueError("weights must match queries")
    cumulative = _cumulative(weights)
    report = LoadReport()
    report_lock = threading.Lock()
    shares = [
        total_requests // concurrency
        + (1 if index < total_requests % concurrency else 0)
        for index in range(concurrency)
    ]

    def worker(index: int, share: int) -> None:
        rng = random.Random(seed * 7919 + index)
        client = client_factory()
        for _ in range(share):
            expression = _draw(rng, queries, cumulative)
            started = time.perf_counter()
            status = client.query(expression, strategy, timeout=timeout)
            latency_ms = (time.perf_counter() - started) * 1e3
            with report_lock:
                report.merge(status, latency_ms)

    threads = [
        threading.Thread(target=worker, args=(index, share), daemon=True)
        for index, share in enumerate(shares)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    return report


def run_open_loop(
    client_factory: Callable[[], ServiceClient],
    queries: Sequence[str],
    rate: float,
    duration: float,
    weights: Sequence[float] | None = None,
    seed: int = 0,
    strategy: str = "HV",
    timeout: float | None = None,
    max_outstanding: int = 256,
) -> LoadReport:
    """Fire requests at ``rate``/s for ``duration`` seconds regardless
    of completions; latency includes time spent queued behind slow
    answers.  ``max_outstanding`` caps runaway thread growth when the
    service cannot keep up (drops are recorded as status 503)."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    cumulative = _cumulative(weights)
    rng = random.Random(seed)
    report = LoadReport()
    report_lock = threading.Lock()
    outstanding = threading.Semaphore(max_outstanding)
    threads: list[threading.Thread] = []

    def fire(expression: str, scheduled: float) -> None:
        client = client_factory()
        status = client.query(expression, strategy, timeout=timeout)
        latency_ms = (time.perf_counter() - scheduled) * 1e3
        with report_lock:
            report.merge(status, latency_ms)
        outstanding.release()

    interval = 1.0 / rate
    started = time.perf_counter()
    next_at = started
    while next_at - started < duration:
        delay = next_at - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        expression = _draw(rng, queries, cumulative)
        if outstanding.acquire(blocking=False):
            thread = threading.Thread(
                target=fire, args=(expression, next_at), daemon=True
            )
            thread.start()
            threads.append(thread)
        else:
            with report_lock:
                report.merge(503, 0.0)
        next_at += interval
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    return report
