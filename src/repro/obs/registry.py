"""Thread-safe metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per :class:`~repro.core.system.
MaterializedViewSystem` is the single source of truth for operational
counters — ``stats()``, the ``/metrics`` endpoint and the benchmark
reports all read the same cells instead of keeping parallel tallies.

Design constraints, in order:

* **Cheap on the hot path.**  ``Counter.inc`` / ``Histogram.observe``
  are one short lock acquisition around two float adds; labeled
  children are resolved once and cached by the caller as plain
  objects.  No allocation after the first touch of a label set.
* **Lock discipline** (xmvrlint L10–L14): every mutable cell is
  ``#: guarded-by:`` its own leaf lock; nothing blocking ever runs
  under one, and no registry lock is held while user callbacks run
  (callback gauges are snapshotted outside the registry lock).
* **Consistent scrapes.**  :meth:`MetricsRegistry.collect` snapshots
  each metric under its lock, so a rendered exposition never shows a
  histogram whose bucket counts disagree with its ``_count``.

Names follow Prometheus conventions (``repro_*_total`` counters,
``repro_*_seconds`` histograms); rendering to the text exposition
format lives in :mod:`repro.obs.expo`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramView",
    "MetricSample",
    "MetricSnapshot",
    "MetricsRegistry",
]

#: Fixed latency buckets (seconds): ~100 µs parse hits through multi-
#: second cold derivations, log-ish spacing, 14 buckets + ``+Inf``.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


@dataclass(frozen=True, slots=True)
class MetricSample:
    """One exposition line: ``name{labels} value`` (suffix already part
    of ``name`` for histogram ``_bucket``/``_sum``/``_count`` rows)."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


@dataclass(frozen=True, slots=True)
class MetricSnapshot:
    """A consistent point-in-time copy of one metric family."""

    name: str
    kind: str
    help: str
    samples: tuple[MetricSample, ...]


def _label_items(
    labelnames: tuple[str, ...], labelvalues: tuple[str, ...]
) -> tuple[tuple[str, str], ...]:
    return tuple(zip(labelnames, labelvalues))


class _Metric:
    """Shared base: name, help text, label plumbing.

    Each concrete metric creates its own leaf ``_lock`` in its own
    ``__init__`` (not here): the static lock-set checker identifies
    locks class-wide by ``(defining class, attr)``, so the guard on
    e.g. ``Counter._values`` must be ``Counter._lock``, not an
    inherited ``_Metric._lock``.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)

    def _check_labels(self, labelvalues: tuple[str, ...]) -> None:
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {labelvalues!r}"
            )

    def snapshot(self) -> MetricSnapshot:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing float, optionally labeled."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, *labelvalues: str) -> None:
        """Add ``amount`` (must be >= 0) to the cell for
        ``labelvalues`` (empty for an unlabeled counter)."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = labelvalues
        self._check_labels(key)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *labelvalues: str) -> float:
        self._check_labels(labelvalues)
        with self._lock:
            return self._values.get(labelvalues, 0.0)

    def snapshot(self) -> MetricSnapshot:
        with self._lock:
            cells = dict(self._values)
        samples = tuple(
            MetricSample(
                self.name, _label_items(self.labelnames, key), value
            )
            for key, value in sorted(cells.items())
        )
        return MetricSnapshot(self.name, self.kind, self.help, samples)


class Gauge(_Metric):
    """A settable value, or a callback read at scrape time.

    Callback gauges (``fn`` given) hold no state of their own; the
    callback runs *outside* every registry/metric lock, so it may take
    its owner's locks freely (e.g. a queue-depth gauge reading a
    scheduler's internals).
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        fn: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if fn is not None and labelnames:
            raise ValueError("callback gauges cannot be labeled")
        self._fn = fn
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, *labelvalues: str) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is a callback gauge")
        self._check_labels(labelvalues)
        with self._lock:
            self._values[labelvalues] = value

    def value(self, *labelvalues: str) -> float:
        if self._fn is not None:
            return float(self._fn())
        self._check_labels(labelvalues)
        with self._lock:
            return self._values.get(labelvalues, 0.0)

    def snapshot(self) -> MetricSnapshot:
        if self._fn is not None:
            samples: tuple[MetricSample, ...] = (
                MetricSample(self.name, (), float(self._fn())),
            )
            return MetricSnapshot(self.name, self.kind, self.help, samples)
        with self._lock:
            cells = dict(self._values)
        samples = tuple(
            MetricSample(
                self.name, _label_items(self.labelnames, key), value
            )
            for key, value in sorted(cells.items())
        )
        return MetricSnapshot(self.name, self.kind, self.help, samples)


@dataclass(slots=True)
class _HistogramCell:
    """Bucket counts + running sum for one label set."""

    counts: list[int]
    total: float = 0.0
    count: int = 0


@dataclass(frozen=True, slots=True)
class HistogramView:
    """An immutable per-label-set histogram reading."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` (0..1) by linear
        interpolation inside the containing bucket.  Observations in
        the overflow bucket report the largest finite bound (a floor,
        stated rather than extrapolated)."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = quantile * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            upper = (
                self.bounds[index]
                if index < len(self.bounds)
                else self.bounds[-1]
            )
            if bucket_count:
                if cumulative + bucket_count >= rank:
                    if index >= len(self.bounds):
                        return self.bounds[-1]
                    fraction = (
                        (rank - cumulative) / bucket_count
                        if bucket_count
                        else 0.0
                    )
                    return lower + (upper - lower) * min(1.0, fraction)
                cumulative += bucket_count
            lower = upper if index < len(self.bounds) else lower
        return self.bounds[-1]


class Histogram(_Metric):
    """Fixed-bucket latency histogram with p50/p95/p99 readouts.

    ``sum`` is accumulated exactly (plain float addition, not
    re-derived from buckets), which is what lets ``stats()``'s
    ``stage_seconds`` be *identical* to the exposed histogram sums
    rather than merely close.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._cells: dict[tuple[str, ...], _HistogramCell] = {}

    def observe(self, value: float, *labelvalues: str) -> None:
        self._check_labels(labelvalues)
        with self._lock:
            cell = self._cells.get(labelvalues)
            if cell is None:
                cell = _HistogramCell([0] * (len(self.bounds) + 1))
                self._cells[labelvalues] = cell
            index = len(self.bounds)
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    index = position
                    break
            cell.counts[index] += 1
            cell.total += value
            cell.count += 1

    def view(self, *labelvalues: str) -> HistogramView:
        """A consistent reading for one label set (zeros if unseen)."""
        self._check_labels(labelvalues)
        with self._lock:
            cell = self._cells.get(labelvalues)
            if cell is None:
                return HistogramView(
                    self.bounds, (0,) * (len(self.bounds) + 1), 0.0, 0
                )
            return HistogramView(
                self.bounds, tuple(cell.counts), cell.total, cell.count
            )

    def sums(self) -> dict[tuple[str, ...], float]:
        """Exact per-label-set sums (the ``stage_seconds`` source)."""
        with self._lock:
            return {
                key: cell.total for key, cell in self._cells.items()
            }

    def snapshot(self) -> MetricSnapshot:
        with self._lock:
            cells = {
                key: (tuple(cell.counts), cell.total, cell.count)
                for key, cell in self._cells.items()
            }
        samples: list[MetricSample] = []
        for key in sorted(cells):
            counts, total, count = cells[key]
            base = _label_items(self.labelnames, key)
            cumulative = 0
            for index, bound in enumerate(self.bounds):
                cumulative += counts[index]
                samples.append(
                    MetricSample(
                        self.name + "_bucket",
                        base + (("le", _format_bound(bound)),),
                        float(cumulative),
                    )
                )
            samples.append(
                MetricSample(
                    self.name + "_bucket",
                    base + (("le", "+Inf"),),
                    float(count),
                )
            )
            samples.append(
                MetricSample(self.name + "_sum", base, total)
            )
            samples.append(
                MetricSample(self.name + "_count", base, float(count))
            )
        return MetricSnapshot(self.name, self.kind, self.help, samples)


def _format_bound(bound: float) -> str:
    """Shortest exact-ish rendering ("0.005", not "0.005000")."""
    text = repr(bound)
    return text[:-2] if text.endswith(".0") else text


class MetricsRegistry:
    """Named metric families; get-or-create semantics per name.

    Re-requesting a name returns the existing family (so two scheduler
    instances over one system share counters) but raises if the kind
    or label names disagree — silently forking a metric is how double
    counting starts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
        if (
            existing.kind != metric.kind
            or existing.labelnames != metric.labelnames
        ):
            raise ValueError(
                f"metric {metric.name!r} already registered as "
                f"{existing.kind}{existing.labelnames}"
            )
        return existing

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._get_or_create(Counter(name, help_text, labelnames))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        metric = self._get_or_create(Gauge(name, help_text, labelnames, fn))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram(name, help_text, labelnames, buckets)
        )
        assert isinstance(metric, Histogram)
        return metric

    def collect(self) -> list[MetricSnapshot]:
        """Snapshot every family, sorted by name.  The registry lock is
        released before any per-metric snapshotting (and so before any
        gauge callback) runs."""
        with self._lock:
            metrics = sorted(
                self._metrics.values(), key=lambda metric: metric.name
            )
        return [metric.snapshot() for metric in metrics]

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(self._metrics)
