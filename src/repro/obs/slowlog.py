"""Ring-buffer slow-query log: keep the worst N requests, in full.

Aggregates (histograms) answer *"how slow are we"*; the slow log
answers *"what exactly did the worst requests do"* — the canonical
query, which views the rewrite chose, every stage timing, and (when
the trace was sampled) the complete span tree.  Capacity is small and
fixed, eviction is min-by-duration replacement, so under sustained
load the log converges to the top-N slowest requests seen since start
rather than merely the most recent ones.

Served at ``GET /debug/slow`` and via ``python -m repro slowlog``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SlowQueryLog", "SlowQueryRecord"]

DEFAULT_CAPACITY = 32


@dataclass(frozen=True, slots=True)
class SlowQueryRecord:
    """Everything worth keeping about one finished request."""

    trace_id: str
    query: str
    strategy: str
    status: str
    total_seconds: float
    wall_time: float
    epoch: int
    plan_cache_hit: bool
    view_ids: tuple[str, ...] = ()
    stage_seconds: dict[str, float] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "query": self.query,
            "strategy": self.strategy,
            "status": self.status,
            "total_seconds": self.total_seconds,
            "wall_time": self.wall_time,
            "epoch": self.epoch,
            "plan_cache_hit": self.plan_cache_hit,
            "view_ids": list(self.view_ids),
            "stage_seconds": dict(self.stage_seconds),
            "spans": list(self.spans),
        }


class SlowQueryLog:
    """Fixed-capacity top-N-by-duration record store (thread-safe)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("slow log capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._records: list[SlowQueryRecord] = []
        #: guarded-by: _lock
        self._recorded = 0

    def record(self, entry: SlowQueryRecord) -> bool:
        """Keep ``entry`` if the log has room or the entry is slower
        than the current fastest resident; returns whether it was kept.
        """
        with self._lock:
            self._recorded += 1
            if len(self._records) < self.capacity:
                self._records.append(entry)
                return True
            fastest = min(
                range(len(self._records)),
                key=lambda index: self._records[index].total_seconds,
            )
            if entry.total_seconds <= self._records[fastest].total_seconds:
                return False
            self._records[fastest] = entry
            return True

    def entries(self, limit: int | None = None) -> list[SlowQueryRecord]:
        """Resident records, slowest first."""
        with self._lock:
            snapshot = list(self._records)
        snapshot.sort(key=lambda record: record.total_seconds, reverse=True)
        return snapshot if limit is None else snapshot[:limit]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "resident": len(self._records),
                "recorded": self._recorded,
            }

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
