"""The telemetry bundle: one object wiring clock, metrics, traces, log.

Every instrumented component takes a :class:`Telemetry` (or has one
made for it) instead of four separate objects.  The bundle is plain
and immutable — construction order and sharing are decided by the
caller: a :class:`~repro.core.system.MaterializedViewSystem` builds
one by default, the service layer reuses the system's bundle so the
scheduler's counters and the derivation histograms land in the same
registry, and tests build one around a
:class:`~repro.obs.clock.ManualClock`.

:meth:`Telemetry.create` reads the two environment knobs:

* ``REPRO_TRACE_SAMPLE=N`` — record full span trees for one query in
  every ``N`` (default 1: trace everything; 0 disables span bodies).
* ``REPRO_SLOWLOG_CAPACITY=N`` — resident slow-log entries
  (default 32).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .clock import SYSTEM_CLOCK, Clock
from .registry import MetricsRegistry
from .slowlog import DEFAULT_CAPACITY, SlowQueryLog
from .trace import Tracer

__all__ = ["Telemetry"]


def _env_int(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(minimum, value)


@dataclass(frozen=True)
class Telemetry:
    """Clock + registry + tracer + slow log, wired together."""

    clock: Clock = SYSTEM_CLOCK
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(
        default_factory=lambda: Tracer(SYSTEM_CLOCK, sample_every=1)
    )
    slowlog: SlowQueryLog = field(default_factory=SlowQueryLog)

    @classmethod
    def create(cls, clock: Clock | None = None) -> "Telemetry":
        """A bundle configured from the environment."""
        resolved: Clock = clock if clock is not None else SYSTEM_CLOCK
        sample_every = _env_int("REPRO_TRACE_SAMPLE", default=1, minimum=0)
        capacity = _env_int(
            "REPRO_SLOWLOG_CAPACITY", default=DEFAULT_CAPACITY, minimum=1
        )
        return cls(
            clock=resolved,
            registry=MetricsRegistry(),
            tracer=Tracer(resolved, sample_every=sample_every),
            slowlog=SlowQueryLog(capacity=capacity),
        )
