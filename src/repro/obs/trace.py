"""Span-based tracing: one trace per query, spans per pipeline stage.

A :class:`Trace` is created by the service layer at admission time
(:class:`~repro.service.scheduler.QueryScheduler`) and *activated*
around the engine call on whichever worker thread picks the flight up.
Deep pipeline code — VFILTER, the twig join, epoch publication — never
sees a tracer object: it asks :func:`current_trace` (a
:class:`contextvars.ContextVar`) for the active trace and opens spans
on it.  When no trace is active, or the trace was sampled out,
:func:`current_trace` hands back a shared null object whose ``span``
is a reusable no-op context manager — the cost of instrumentation at
rest is one context-variable read and one method call.

**Sampling** (``REPRO_TRACE_SAMPLE=N``): the tracer records full span
trees for one trace in every ``N`` (1 = every trace, the default;
0 disables span recording entirely).  Trace *ids* are assigned to
every query regardless, so log lines and slow-log entries correlate
even for unsampled traces; only the span bodies are skipped.

Spans form a tree via an explicit per-trace stack: the query pipeline
is sequential (one thread at a time works on a given query, even
though *which* thread changes at the scheduler hand-off), so the
enclosing span is simply the top of the stack.  A small lock guards
the stack anyway — correctness never rests on that usage pattern.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from .clock import SYSTEM_CLOCK, Clock

__all__ = [
    "NULL_TRACE",
    "Span",
    "Trace",
    "Tracer",
    "current_trace",
]


@dataclass(slots=True)
class Span:
    """One timed, attributed operation inside a trace."""

    name: str
    span_id: int
    parent_id: int | None
    started_wall: float
    #: Monotonic start — internal, used to compute ``duration``.
    started_monotonic: float
    duration_seconds: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_wall": self.started_wall,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }


class Trace:
    """A recorded trace: id, sampled flag, and the finished span list.

    ``spans`` is append-only and ordered by span *completion*;
    :meth:`span_tree` re-nests it by parent id for display.
    """

    __slots__ = ("trace_id", "sampled", "_clock", "_lock", "_stack",
                 "_next_span", "spans")

    def __init__(
        self, trace_id: str, sampled: bool, clock: Clock
    ) -> None:
        self.trace_id = trace_id
        self.sampled = sampled
        self._clock = clock
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._stack: list[int] = []
        #: guarded-by: _lock
        self._next_span = 1
        #: guarded-by: _lock (writes)
        self.spans: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Record one span; nests under the innermost open span."""
        if not self.sampled:
            yield _NULL_SPAN
            return
        with self._lock:
            span_id = self._next_span
            self._next_span += 1
            parent = self._stack[-1] if self._stack else None
            self._stack.append(span_id)
        record = Span(
            name=name,
            span_id=span_id,
            parent_id=parent,
            started_wall=self._clock.wall(),
            started_monotonic=self._clock.monotonic(),
            attributes=dict(attributes),
        )
        try:
            yield record
        finally:
            record.duration_seconds = (
                self._clock.monotonic() - record.started_monotonic
            )
            with self._lock:
                # The stack discipline is LIFO per thread of control;
                # remove by value so a mis-nested exit degrades to a
                # wrong parent rather than a corrupted stack.
                if span_id in self._stack:
                    self._stack.remove(span_id)
                self.spans.append(record)

    @contextmanager
    def activate(self) -> Iterator["Trace"]:
        """Make this trace the thread-of-control's current trace."""
        token = _CURRENT_TRACE.set(self)
        try:
            yield self
        finally:
            _CURRENT_TRACE.reset(token)

    def span_dicts(self) -> list[dict[str, Any]]:
        with self._lock:
            return [span.as_dict() for span in self.spans]

    def span_tree(self) -> list[dict[str, Any]]:
        """Spans re-nested by parent id (roots first, children under
        a ``children`` key), for the slow log and ``repro slowlog``."""
        with self._lock:
            flat = [span.as_dict() for span in self.spans]
        by_id: dict[int, dict[str, Any]] = {}
        for entry in flat:
            entry["children"] = []
            by_id[entry["span_id"]] = entry
        roots: list[dict[str, Any]] = []
        for entry in flat:
            parent = entry["parent_id"]
            if parent is not None and parent in by_id:
                by_id[parent]["children"].append(entry)
            else:
                roots.append(entry)

        def sort_recursive(entries: list[dict[str, Any]]) -> None:
            entries.sort(key=lambda entry: entry["span_id"])
            for entry in entries:
                sort_recursive(entry["children"])

        sort_recursive(roots)
        return roots


class _NullTrace(Trace):
    """The no-trace trace: every operation is a cheap no-op."""

    def __init__(self) -> None:
        super().__init__("", sampled=False, clock=SYSTEM_CLOCK)


#: Placeholder span yielded by unsampled ``span()`` calls so callers
#: may unconditionally set attributes on the yielded object.
_NULL_SPAN = Span(
    name="", span_id=0, parent_id=None,
    started_wall=0.0, started_monotonic=0.0,
)

NULL_TRACE = _NullTrace()

_CURRENT_TRACE: ContextVar[Trace] = ContextVar(
    "repro_current_trace", default=NULL_TRACE
)


def current_trace() -> Trace:
    """The active trace of this thread of control (never ``None``)."""
    return _CURRENT_TRACE.get()


class Tracer:
    """Creates traces and applies the sampling policy."""

    def __init__(self, clock: Clock, sample_every: int = 1) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.clock = clock
        self.sample_every = sample_every
        # itertools.count.__next__ is atomic in CPython; no lock needed.
        self._ids = itertools.count(1)

    def trace(self, name: str = "query") -> Trace:
        """A new trace; ``sampled`` per the 1-in-N policy."""
        sequence = next(self._ids)
        sampled = (
            self.sample_every > 0
            and (sequence - 1) % self.sample_every == 0
        )
        return Trace(f"{name}-{sequence:08x}", sampled, self.clock)
