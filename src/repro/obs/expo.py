"""Prometheus text exposition: rendering and a well-formedness parser.

:func:`render_prometheus` turns a registry's snapshots into the text
exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers per
family, one ``name{labels} value`` line per sample, histogram families
emitting cumulative ``_bucket{le=...}`` rows capped by ``+Inf`` plus
``_sum`` and ``_count``.

:func:`parse_exposition` is the inverse used by the CI smoke job and
the tests: it re-parses a payload, *validating* as it goes (HELP/TYPE
before samples, escaped label values, bucket monotonicity, ``+Inf``
agreeing with ``_count``) and returns the samples grouped by family so
callers can assert on values.  A deliberately independent
implementation — it shares no code with the renderer, so a rendering
bug cannot hide behind a matching parsing bug.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from .registry import MetricSnapshot

__all__ = ["ExpositionError", "ParsedFamily", "parse_exposition",
           "render_prometheus"]


class ExpositionError(ValueError):
    """The payload is not well-formed text exposition format."""


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshots: list[MetricSnapshot]) -> str:
    """Render metric snapshots to text exposition format 0.0.4."""
    lines: list[str] = []
    for snap in snapshots:
        lines.append(f"# HELP {snap.name} {_escape_help(snap.help)}")
        lines.append(f"# TYPE {snap.name} {snap.kind}")
        for sample in snap.samples:
            if sample.labels:
                rendered = ",".join(
                    f'{key}="{_escape_label_value(value)}"'
                    for key, value in sample.labels
                )
                lines.append(
                    f"{sample.name}{{{rendered}}} "
                    f"{_format_value(sample.value)}"
                )
            else:
                lines.append(
                    f"{sample.name} {_format_value(sample.value)}"
                )
    return "\n".join(lines) + "\n"


@dataclass(slots=True)
class ParsedFamily:
    """One metric family recovered from an exposition payload."""

    name: str
    kind: str
    help: str
    #: (sample_name, labels) -> value
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = field(
        default_factory=dict
    )

    def value(
        self, name: str | None = None, **labels: str
    ) -> float | None:
        """The sample value for ``name`` (defaults to the family name)
        and exactly the given labels, or ``None`` if absent."""
        key = (name or self.name, tuple(sorted(labels.items())))
        for (sample_name, sample_labels), value in self.samples.items():
            if (sample_name, tuple(sorted(sample_labels))) == key:
                return value
        return None


_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="'
    r'(?P<value>(?:[^"\\]|\\.)*)"\s*(?P<sep>,|$)'
)

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise ExpositionError(f"{where}: bad value {text!r}") from exc


def _parse_labels(
    text: str, where: str
) -> tuple[tuple[str, str], ...]:
    items: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _LABEL_RE.match(text, position)
        if match is None:
            raise ExpositionError(f"{where}: bad label syntax {text!r}")
        raw = match.group("value")
        value = (
            raw.replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\\\", "\\")
        )
        items.append((match.group("key"), value))
        position = match.end()
        if match.group("sep") == "" and position < len(text):
            raise ExpositionError(f"{where}: trailing {text[position:]!r}")
    return tuple(items)


def _family_of(sample_name: str, kind_by_name: dict[str, str]) -> str:
    """Map a sample name back to its family (histogram suffixes)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if kind_by_name.get(base) == "histogram":
                return base
    return sample_name


def _check_histogram(family: ParsedFamily) -> None:
    """Bucket rows must be cumulative and ``+Inf`` must equal
    ``_count`` for every label set of a histogram family."""
    series: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]]
    series = {}
    counts: dict[tuple[tuple[str, str], ...], float] = {}
    for (sample_name, labels), value in family.samples.items():
        if sample_name == family.name + "_bucket":
            bound_text = dict(labels).get("le")
            if bound_text is None:
                raise ExpositionError(
                    f"{family.name}: bucket row missing le label"
                )
            rest = tuple(
                item for item in labels if item[0] != "le"
            )
            bound = (
                math.inf
                if bound_text == "+Inf"
                else _parse_value(bound_text, family.name)
            )
            series.setdefault(rest, []).append((bound, value))
        elif sample_name == family.name + "_count":
            counts[labels] = value
    for labels, rows in series.items():
        rows.sort(key=lambda row: row[0])
        if not rows or rows[-1][0] != math.inf:
            raise ExpositionError(
                f"{family.name}: histogram series missing +Inf bucket"
            )
        previous = -math.inf
        for bound, value in rows:
            if value < previous:
                raise ExpositionError(
                    f"{family.name}: bucket counts not cumulative at "
                    f"le={bound}"
                )
            previous = value
        expected = counts.get(labels)
        if expected is None or rows[-1][1] != expected:
            raise ExpositionError(
                f"{family.name}: +Inf bucket disagrees with _count"
            )


def parse_exposition(payload: str) -> dict[str, ParsedFamily]:
    """Parse + validate a text exposition payload.

    Raises :class:`ExpositionError` on any malformation; returns the
    families keyed by name otherwise.
    """
    if not payload.endswith("\n"):
        raise ExpositionError("payload must end with a newline")
    families: dict[str, ParsedFamily] = {}
    kind_by_name: dict[str, str] = {}
    help_seen: set[str] = set()
    for number, line in enumerate(payload.splitlines(), start=1):
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _NAME_RE.fullmatch(name):
                raise ExpositionError(f"{where}: bad metric name {name!r}")
            if name in help_seen:
                raise ExpositionError(f"{where}: duplicate HELP for {name}")
            help_seen.add(name)
            families[name] = ParsedFamily(
                name=name,
                kind="untyped",
                help=parts[1] if len(parts) > 1 else "",
            )
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise ExpositionError(f"{where}: malformed TYPE line")
            name, kind = parts
            if kind not in {"counter", "gauge", "histogram", "summary",
                            "untyped"}:
                raise ExpositionError(f"{where}: unknown type {kind!r}")
            if name not in families:
                families[name] = ParsedFamily(name=name, kind=kind, help="")
            families[name].kind = kind
            kind_by_name[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"{where}: unparseable sample {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", where)
        value = _parse_value(match.group("value"), where)
        family_name = _family_of(sample_name, kind_by_name)
        family = families.get(family_name)
        if family is None:
            raise ExpositionError(
                f"{where}: sample {sample_name!r} precedes its "
                f"HELP/TYPE header"
            )
        key = (sample_name, labels)
        if key in family.samples:
            raise ExpositionError(
                f"{where}: duplicate sample {sample_name}{labels!r}"
            )
        family.samples[key] = value
    for family in families.values():
        if family.kind == "histogram":
            _check_histogram(family)
    return families
