"""Injectable time sources.

Every component that measures or decides on time takes a
:class:`Clock` instead of calling :mod:`time` directly.  This is what
keeps ``core/`` deterministic under xmvrlint rule L4 — the rule bans
*direct* clock calls there, and the only sanctioned way for core code
to read time is through the clock object its system was built with.
Production wiring injects :data:`SYSTEM_CLOCK`; tests inject a
:class:`ManualClock` and advance it explicitly, which makes latency
histograms and slow-log contents exactly reproducible.

Two distinct readings are exposed because they answer different
questions:

* :meth:`Clock.monotonic` — duration measurement (span lengths, stage
  timings, deadlines).  Never jumps backwards; unrelated to calendar
  time.
* :meth:`Clock.wall` — event timestamps for humans (slow-log entries,
  benchmark run metadata).  May jump on NTP adjustment; never used for
  measuring or deciding.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "ManualClock", "SYSTEM_CLOCK", "SystemClock"]


class Clock(Protocol):
    """The time interface the rest of the system programs against."""

    def monotonic(self) -> float:
        """Seconds on a monotonically non-decreasing scale."""
        ...

    def wall(self) -> float:
        """Seconds since the Unix epoch (display only)."""
        ...


class SystemClock:
    """The real clocks: ``perf_counter`` for spans, ``time`` for wall."""

    def monotonic(self) -> float:
        return time.perf_counter()

    def wall(self) -> float:
        return time.time()


class ManualClock:
    """A hand-advanced clock for deterministic tests.

    Not thread-safe by design: tests that advance time from several
    threads are testing the wrong thing.
    """

    def __init__(self, start: float = 0.0, wall_start: float = 0.0) -> None:
        self._monotonic = start
        self._wall = wall_start

    def monotonic(self) -> float:
        return self._monotonic

    def wall(self) -> float:
        return self._wall

    def advance(self, seconds: float) -> None:
        """Move both readings forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        self._monotonic += seconds
        self._wall += seconds


#: Shared default instance — stateless, so one is enough.
SYSTEM_CLOCK = SystemClock()
