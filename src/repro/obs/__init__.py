"""Observability: injectable clocks, metrics, traces, the slow log.

The lowest internal layer after ``errors`` — it imports nothing else
from :mod:`repro`, so every other layer (core, service, bench, cli)
may depend on it without cycles.  See DESIGN.md §14 for the metric
name catalog and trace span tree.
"""

from .clock import SYSTEM_CLOCK, Clock, ManualClock, SystemClock
from .expo import ExpositionError, parse_exposition, render_prometheus
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramView,
    MetricSample,
    MetricSnapshot,
    MetricsRegistry,
)
from .slowlog import SlowQueryLog, SlowQueryRecord
from .telemetry import Telemetry
from .trace import NULL_TRACE, Span, Trace, Tracer, current_trace

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "HistogramView",
    "ManualClock",
    "MetricSample",
    "MetricSnapshot",
    "MetricsRegistry",
    "NULL_TRACE",
    "SYSTEM_CLOCK",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "SystemClock",
    "Telemetry",
    "Trace",
    "Tracer",
    "current_trace",
    "parse_exposition",
    "render_prometheus",
]
