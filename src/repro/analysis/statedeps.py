"""Derived-state ownership analysis for xmvrlint (rules L15-L19).

The GnitzDB-style split the codebase has been converging on since the
plan cache landed: every field of the answering system is either
**hard** state (the authoritative copy — the document, the registered
views, the log file handle), **soft** state (rebuildable caches and
indexes — plan cache, coverage memo, VFILTER wildcard tables, compiled
NFAs, dewey indexes, fragment manifests), a **counter** (monotonic
telemetry, never consulted for answers), or a lock.  Soft state
declares what it is derived from and how it is rebuilt via the
``#: state:`` annotation grammar parsed in :mod:`.dataflow`::

    self.document = document        #: state: hard
    self._node_index = None         #: state: soft(derived-from=document; rebuild=_ensure_node_index)
    self.plans_served = 0           #: state: counter

    #: state: mutator
    def insert_subtree(self, ...):  # a sanctioned hard-state entry point

From those records this module builds the explicit **derivation DAG**
over ``(classname, attr)`` tokens and checks it whole-program, on top
of the PR 6 call-graph/dataflow IR:

* **L15 — invalidation completeness.**  Any interprocedural write that
  reaches a ``derived-from`` source must, on every non-raising exit
  path of every public entry point, invalidate or patch every strict
  dependent.  This is the L1 abstract interpretation generalized from
  ``_invalidate_plans()`` to an arbitrary DAG edge, with the same
  *monotone* patch semantics L1 documents: one patch of the dependent
  anywhere in the call covers every source mutation of that call,
  before or after it (``PathNFA.insert`` nulls ``_compiled`` *first*;
  that is sound because nothing answers from ``_compiled`` mid-call).
  Edges marked with a trailing ``?`` (``derived-from=document?``) are
  *weak*: acknowledged provenance that is refreshed by coarser
  protocols (epoch swap, explicit eviction) and exempt from L15 —
  they still appear in L16 cycle checks and ``--graph`` output.
* **L16 — DAG shape.**  Derivation must be acyclic; hard state and
  counters may not declare ``derived-from`` (hard state is never
  derived, so a soft→hard edge cannot even be expressed); counters may
  not serve as derivation sources; every source must resolve to an
  annotated field.
* **L17 — rebuild-path existence.**  Every soft field names a rebuild
  function that exists and is reachable from the public API or a
  lifecycle method (``rebuild=__init__`` declares
  rebuild-by-reconstruction and is always accepted).
* **L18 — hard-state write scoping.**  Hard fields are mutated only
  inside lifecycle methods or code reachable from a ``#: state:
  mutator`` entry point — the surface WAL logging will later hook.
* **L19 — annotation coverage.**  On any class that declares at least
  one state field, every other mutable instance attribute must carry a
  state annotation too (locks are exempt); otherwise the DAG silently
  goes stale as fields are added.

Alias resolution mirrors :mod:`.concurrency`: write chains are mapped
to tokens deepest-known-collaborator-first (``self.system._node_index``
→ ``(MaterializedViewSystem, _node_index)``), then through ``self``,
then through bare locals named like a known collaborator
(``document.schema = ...`` inside the editor dirties
``(MaterializedViewSystem, document)``).  Container-mutator calls
(``.append``/``.clear``/``.put``...) mutate the annotated field they
are invoked through; calls resolved to project functions contribute
their callee's summarized (patches-on-all-exits, may-dirty) facts.
Document surgery (``detach``/``add_child`` inside the maintenance or
system modules) writes the document token regardless of receiver
spelling, exactly like L1's seed analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .callgraph import ATTR_CLASSES, Project
from .dataflow import (
    CallRef,
    FunctionSummary,
    StateRec,
    Step,
    reachable,
    solve_fixpoint,
)
from .effects import GENERIC_MUTATORS

__all__ = [
    "DOC_MODULES",
    "DOC_SURGERY",
    "DOC_TOKEN",
    "FIELD_MUTATORS",
    "LIFECYCLE_NAMES",
    "Edge",
    "StateFacts",
    "analyze_statedeps",
]

Token = tuple[str, str]
#: (relpath, lineno, message)
Finding = tuple[str, int, str]

#: Tree-surgery calls that mutate the base document whatever the
#: receiver is spelled like (``parent.add_child``, ``node.detach``) —
#: the same seed rule L1 uses, scoped to the modules that own
#: maintenance so unrelated trees elsewhere do not alias the document.
DOC_SURGERY = frozenset({"detach", "add_child"})
DOC_MODULES = frozenset({"repro.delta.maintenance", "repro.core.system"})
DOC_TOKEN: Token = ("MaterializedViewSystem", "document")

#: Unresolvable method names that mutate the object they are invoked
#: through: the generic container mutators plus the storage/VFILTER
#: mutation verbs of this codebase.
FIELD_MUTATORS = GENERIC_MUTATORS | {
    "write", "truncate", "materialize", "materialize_encoded", "drop",
    "evict_views", "put", "delete", "add_view", "add_views",
    "insert_subtree", "remove_subtree", "remove_range", "invalidate_views",
    "note_subtree", "forget_subtree",
}

#: Construction/teardown methods: exempt from L15 entry obligations and
#: L18 scoping (a constructor writes hard fields by definition), and
#: roots for L17 rebuild reachability.
LIFECYCLE_NAMES = frozenset({
    "__init__", "__new__", "__post_init__", "__enter__", "__exit__",
    "__del__", "close", "shutdown", "stop",
})

#: Callees whose facts are never propagated to callers: calling a
#: constructor builds fresh state, it does not dirty the caller's.
_CONSTRUCTION_NAMES = frozenset({"__init__", "__new__", "__post_init__"})


# ======================================================================
# events
# ======================================================================
@dataclass(frozen=True, slots=True)
class _Mutate:
    """A direct mutation of an annotated field."""

    token: Token
    lineno: int


@dataclass(frozen=True, slots=True)
class _CallFacts:
    """A call whose resolved callee's (gpatch, gdirty) facts apply."""

    callee: str
    lineno: int


@dataclass(frozen=True, slots=True)
class Edge:
    """One derivation edge: ``target`` is derived from ``source``."""

    source: Token
    target: Token
    weak: bool
    relpath: str
    lineno: int


@dataclass(frozen=True, slots=True)
class _PathState:
    """Abstract state of one control path for one DAG edge.

    ``patched`` — the dependent has been invalidated/patched on this
    path (monotone: covers source writes before *and* after it within
    the same call).  ``dirty`` — the source was written while not
    patched.  ``line`` — witness line of the first uncovered write.
    """

    patched: bool
    dirty: bool
    line: int

    def mutate_source(self, lineno: int) -> "_PathState":
        if self.patched or self.dirty:
            return self
        return _PathState(False, True, lineno)

    def patch_target(self) -> "_PathState":
        return _PathState(True, False, self.line)


def _join(
    a: "_PathState | None", b: "_PathState | None"
) -> "_PathState | None":
    if a is None:
        return b
    if b is None:
        return a
    return _PathState(
        a.patched and b.patched,
        a.dirty or b.dirty,
        (a.line if a.dirty else 0) or (b.line if b.dirty else 0),
    )


#: Per-function summary for one edge: (patches dependent on every
#: non-raising exit, some non-raising exit leaves the source dirty,
#: witness line).  gpatch ⇒ ¬gdirty by construction of the walker.
_FnFact = tuple[bool, bool, int]
_FACT_BOTTOM: _FnFact = (True, False, 0)


# ======================================================================
# facts
# ======================================================================
@dataclass
class StateFacts:
    """Everything the L15-L19 rules need, computed once per project."""

    project: Project
    relpath_by_module: dict[str, str]
    #: annotated fields (kind hard/soft/counter) by token
    fields: dict[Token, StateRec] = field(default_factory=dict)
    #: relpath of the file annotating each token
    field_files: dict[Token, str] = field(default_factory=dict)
    #: fqnames of ``#: state: mutator`` entry points
    mutators: set[str] = field(default_factory=set)
    #: resolved derivation edges (strict + weak)
    edges: list[Edge] = field(default_factory=list)
    #: derived-from spellings that resolve to no annotated field
    unresolved_sources: list[tuple[StateRec, str, str]] = field(
        default_factory=list
    )
    #: attr name → owner classes annotating a field of that name
    attr_owners: dict[str, tuple[str, ...]] = field(default_factory=dict)

    #: keeps every id()-keyed Step alive for the life of the memo (L3)
    _step_refs: list[Step] = field(default_factory=list)
    _step_events: dict[int, tuple[object, ...]] = field(default_factory=dict)
    _fn_mutated: dict[str, dict[Token, int]] = field(default_factory=dict)
    _reverse_adjacency: dict[str, list[str]] = field(default_factory=dict)
    _lifecycle_fns: set[str] = field(default_factory=set)

    # -- construction ----------------------------------------------------
    def __post_init__(self) -> None:
        self._collect_records()
        self._collect_events()
        self._resolve_edges()

    def _collect_records(self) -> None:
        owners: dict[str, set[str]] = {}
        for relpath, summary in self.project.files.items():
            for rec in summary.states:
                if rec.kind == "mutator":
                    continue
                token = (rec.classname, rec.attr)
                self.fields[token] = rec
                self.field_files[token] = relpath
                owners.setdefault(rec.attr, set()).add(rec.classname)
        self.attr_owners = {
            attr: tuple(sorted(classes)) for attr, classes in owners.items()
        }
        # Mutator entry points, resolved to fqnames.
        mutator_keys: set[tuple[str, str]] = set()
        for summary in self.project.files.values():
            for rec in summary.states:
                if rec.kind == "mutator":
                    mutator_keys.add((rec.classname, rec.attr))
        for fqname, function in self.project.iter_functions():
            key = (function.classname or "", function.name)
            if key in mutator_keys:
                self.mutators.add(fqname)
            if function.name in LIFECYCLE_NAMES:
                self._lifecycle_fns.add(fqname)

    def _collect_events(self) -> None:
        reverse: dict[str, list[str]] = {}
        for fqname, function in self.project.iter_functions():
            mutated: dict[Token, int] = {}
            for step in function.iter_steps():
                for event in self._events(step, fqname, function):
                    if isinstance(event, _Mutate):
                        mutated.setdefault(event.token, event.lineno)
                    else:
                        reverse.setdefault(event.callee, []).append(fqname)
            self._fn_mutated[fqname] = mutated
        self._reverse_adjacency = reverse

    def _resolve_edges(self) -> None:
        for token, rec in sorted(self.fields.items()):
            relpath = self.field_files[token]
            for raw in rec.derived_from:
                spelling = raw.rstrip("?")
                weak = raw.endswith("?")
                source = self._resolve_source(rec, spelling)
                if source is None:
                    self.unresolved_sources.append((rec, raw, relpath))
                    continue
                self.edges.append(
                    Edge(source, token, weak, relpath, rec.lineno)
                )

    def _resolve_source(self, rec: StateRec, spelling: str) -> Token | None:
        if "." in spelling:
            classname, _, attr = spelling.rpartition(".")
            token = (classname, attr)
            return token if token in self.fields else None
        same_class = (rec.classname, spelling)
        if same_class in self.fields:
            return same_class
        owners = self.attr_owners.get(spelling, ())
        if len(owners) == 1:
            return (owners[0], spelling)
        return None

    # -- token resolution ------------------------------------------------
    def field_tokens(
        self, chain: tuple[str, ...], classname: str | None
    ) -> tuple[Token, ...]:
        """Map a write/receiver chain to the annotated fields it
        mutates, deepest known collaborator first."""
        if len(chain) < 2:
            return ()
        for i in range(len(chain) - 2, 0, -1):
            for owner in ATTR_CLASSES.get(chain[i], ()):
                token = (owner, chain[i + 1])
                if token in self.fields:
                    return (token,)
        root = chain[0]
        if root in ("self", "cls"):
            if classname is not None:
                token = (classname, chain[1])
                if token in self.fields:
                    return (token,)
            return ()
        for owner in ATTR_CLASSES.get(root, ()):
            token = (owner, chain[1])
            if token in self.fields:
                return (token,)
        if root in ATTR_CLASSES:
            # A bare local named like a known collaborator field:
            # ``document.schema = ...`` in the editor mutates the
            # system's ``document`` through an alias.
            return tuple(
                (owner, root) for owner in self.attr_owners.get(root, ())
            )
        return ()

    def _receiver_tokens(
        self, receiver: tuple[str, ...], classname: str | None
    ) -> tuple[Token, ...]:
        """Annotated fields mutated by a container-mutator call on
        ``receiver``.  A receiver that *is* a known collaborator object
        (``plan_cache.clear()``) mutates that object's soft/counter
        content wholesale — container mutators touch contents, never
        the object's own configuration references."""
        if not receiver:
            return ()
        if receiver[-1] in ATTR_CLASSES and receiver[-1] not in (
            "self",
            "cls",
        ):
            tokens: list[Token] = []
            for owner in ATTR_CLASSES[receiver[-1]]:
                tokens.extend(
                    token
                    for token, rec in self.fields.items()
                    if token[0] == owner and rec.kind != "hard"
                )
            if tokens:
                return tuple(sorted(set(tokens)))
        if len(receiver) < 2:
            return ()
        return self.field_tokens(receiver, classname)

    # -- per-step events -------------------------------------------------
    def _events(
        self, step: Step, fqname: str, function: FunctionSummary
    ) -> tuple[object, ...]:
        cached = self._step_events.get(id(step))
        if cached is not None:
            return cached
        module = self.project.module_of.get(fqname, "")
        classname = function.classname
        events: list[object] = []
        for write in step.writes:
            if write.fresh or write.global_write:
                continue
            for token in self.field_tokens(write.chain, classname):
                events.append(_Mutate(token, write.lineno))
        for call in step.calls:
            events.extend(self._call_events(call, fqname, module, classname))
        frozen = tuple(events)
        self._step_refs.append(step)
        self._step_events[id(step)] = frozen
        return frozen

    def _call_events(
        self,
        call: CallRef,
        fqname: str,
        module: str,
        classname: str | None,
    ) -> list[object]:
        if call.receiver_fresh:
            return []
        if call.name in DOC_SURGERY and module in DOC_MODULES:
            return [_Mutate(DOC_TOKEN, call.lineno)]
        if call.name in GENERIC_MUTATORS:
            # Never resolved: a unique method named ``clear``/``update``
            # elsewhere in the project must not hijack a dict mutation.
            return [
                _Mutate(token, call.lineno)
                for token in self._receiver_tokens(call.receiver, classname)
            ]
        callee = self.project.resolve(fqname, call)
        if callee is not None and callee in self.project.functions:
            if self.project.functions[callee].name in _CONSTRUCTION_NAMES:
                return []
            return [_CallFacts(callee, call.lineno)]
        if call.name in FIELD_MUTATORS:
            return [
                _Mutate(token, call.lineno)
                for token in self._receiver_tokens(call.receiver, classname)
            ]
        return []

    # ==================================================================
    # L15 — invalidation completeness, per strict edge
    # ==================================================================
    def invalidation_violations(self) -> list[Finding]:
        findings: list[Finding] = []
        for edge in self.edges:
            if edge.weak:
                continue
            findings.extend(self._check_edge(edge))
        return sorted(set(findings))

    def _check_edge(self, edge: Edge) -> list[Finding]:
        involved = {
            fqname
            for fqname, mutated in self._fn_mutated.items()
            if edge.source in mutated or edge.target in mutated
        }
        if not involved:
            return []
        relevant = reachable(self._reverse_adjacency, involved)
        facts = solve_fixpoint(
            sorted(relevant),
            _FACT_BOTTOM,
            lambda fqname, get: self._transfer(fqname, edge, relevant, get),
        )
        findings: list[Finding] = []
        for fqname in sorted(relevant):
            function = self.project.functions[fqname]
            if not function.is_public:
                continue
            if function.name in LIFECYCLE_NAMES:
                continue
            if "<locals>" in function.qualname:
                continue
            _, gdirty, line = facts[fqname]
            if not gdirty:
                continue
            module = self.project.module_of.get(fqname, "")
            relpath = self.relpath_by_module.get(module, module)
            findings.append(
                (
                    relpath,
                    line or function.lineno,
                    f"{function.qualname} (line {function.lineno}) can "
                    f"exit with {_fmt(edge.source)} modified (line "
                    f"{line or function.lineno}) but "
                    f"{_fmt(edge.target)} neither invalidated nor patched "
                    f"[derived-from edge at {edge.relpath}:{edge.lineno}]",
                )
            )
        return findings

    def _transfer(
        self,
        fqname: str,
        edge: Edge,
        relevant: set[str],
        get: Callable[[str], _FnFact],
    ) -> _FnFact:
        function = self.project.functions.get(fqname)
        if function is None:
            return _FACT_BOTTOM
        exits: list[_PathState] = []
        entry = _PathState(False, False, 0)

        fall, _ = self._walk_block(
            function.steps, entry, fqname, function, edge, relevant, get, exits
        )
        if fall is not None:
            exits.append(fall)
        if not exits:
            return _FACT_BOTTOM  # every path raises: vacuously covered
        gpatch = all(state.patched for state in exits)
        gdirty = any(state.dirty for state in exits)
        line = next((s.line for s in exits if s.dirty), 0)
        return (gpatch, gdirty, line)

    def _apply_events(
        self,
        step: Step,
        state: _PathState,
        fqname: str,
        function: FunctionSummary,
        edge: Edge,
        relevant: set[str],
        get: Callable[[str], _FnFact],
    ) -> tuple[_PathState, bool]:
        """Apply one step's own events; returns (state, may_dirty)."""
        may_dirty = False
        for event in self._events(step, fqname, function):
            if isinstance(event, _Mutate):
                if event.token == edge.target:
                    state = state.patch_target()
                if event.token == edge.source:
                    may_dirty = True
                    state = state.mutate_source(event.lineno)
            elif isinstance(event, _CallFacts):
                if event.callee not in relevant:
                    continue
                gpatch, gdirty, _ = get(event.callee)
                if gdirty:
                    may_dirty = True
                    state = state.mutate_source(event.lineno)
                if gpatch:
                    state = state.patch_target()
        return state, may_dirty

    def _walk_block(
        self,
        block: tuple[Step, ...],
        state: "_PathState | None",
        fqname: str,
        function: FunctionSummary,
        edge: Edge,
        relevant: set[str],
        get: Callable[[str], _FnFact],
        exits: list[_PathState],
    ) -> tuple["_PathState | None", bool]:
        """Walk one block; returns (fall-through state or None, any
        source mutation possible anywhere inside)."""
        may_dirty = False
        for step in block:
            if state is None:
                break
            state, step_dirty = self._apply_events(
                step, state, fqname, function, edge, relevant, get
            )
            may_dirty = may_dirty or step_dirty
            if step.kind == "return":
                exits.append(state)
                state = None
            elif step.kind == "raise":
                state = None  # exceptional exit: exempt
            elif step.kind == "if":
                then_fall, d1 = self._walk_block(
                    step.body, state, fqname, function, edge, relevant, get,
                    exits,
                )
                else_fall, d2 = self._walk_block(
                    step.orelse, state, fqname, function, edge, relevant, get,
                    exits,
                )
                may_dirty = may_dirty or d1 or d2
                state = _join(then_fall, else_fall)
            elif step.kind == "loop":
                once, d1 = self._walk_block(
                    step.body, state, fqname, function, edge, relevant, get,
                    exits,
                )
                joined = _join(state, once)
                twice, d2 = self._walk_block(
                    step.body, joined, fqname, function, edge, relevant, get,
                    exits,
                )
                may_dirty = may_dirty or d1 or d2
                after = _join(state, twice)
                if step.orelse and after is not None:
                    after, d3 = self._walk_block(
                        step.orelse, after, fqname, function, edge, relevant,
                        get, exits,
                    )
                    may_dirty = may_dirty or d3
                state = after
            elif step.kind == "with":
                state, d1 = self._walk_block(
                    step.body, state, fqname, function, edge, relevant, get,
                    exits,
                )
                may_dirty = may_dirty or d1
            elif step.kind == "try":
                body_fall, body_dirty = self._walk_block(
                    step.body, state, fqname, function, edge, relevant, get,
                    exits,
                )
                may_dirty = may_dirty or body_dirty
                # A handler can be entered from any point of the body:
                # conservatively, with the body's possible dirt.
                handler_entry = _PathState(
                    state.patched,
                    state.dirty or (body_dirty and not state.patched),
                    state.line,
                )
                handler_merged: _PathState | None = None
                for handler in step.handlers:
                    handler_fall, d2 = self._walk_block(
                        handler, handler_entry, fqname, function, edge,
                        relevant, get, exits,
                    )
                    may_dirty = may_dirty or d2
                    handler_merged = _join(handler_merged, handler_fall)
                if step.orelse and body_fall is not None:
                    body_fall, d3 = self._walk_block(
                        step.orelse, body_fall, fqname, function, edge,
                        relevant, get, exits,
                    )
                    may_dirty = may_dirty or d3
                merged = _join(body_fall, handler_merged)
                if step.final and merged is not None:
                    merged, d4 = self._walk_block(
                        step.final, merged, fqname, function, edge, relevant,
                        get, exits,
                    )
                    may_dirty = may_dirty or d4
                state = merged
        return state, may_dirty

    # ==================================================================
    # L16 — DAG shape
    # ==================================================================
    def graph_violations(self) -> list[Finding]:
        findings: list[Finding] = []
        for token, rec in sorted(self.fields.items()):
            relpath = self.field_files[token]
            if rec.kind in ("hard", "counter") and rec.derived_from:
                findings.append(
                    (
                        relpath,
                        rec.lineno,
                        f"{rec.kind} state {_fmt(token)} declares "
                        f"derived-from={', '.join(rec.derived_from)}: only "
                        "soft state is derived (hard state may never be "
                        "rebuilt from caches)",
                    )
                )
        for rec, raw, relpath in self.unresolved_sources:
            findings.append(
                (
                    relpath,
                    rec.lineno,
                    f"{_fmt((rec.classname, rec.attr))} derived-from "
                    f"source {raw!r} does not resolve to an annotated "
                    "state field",
                )
            )
        for edge in self.edges:
            source_rec = self.fields.get(edge.source)
            if source_rec is not None and source_rec.kind == "counter":
                findings.append(
                    (
                        edge.relpath,
                        edge.lineno,
                        f"{_fmt(edge.target)} derives from counter "
                        f"{_fmt(edge.source)}: counters are telemetry, "
                        "never derivation sources",
                    )
                )
        findings.extend(self._cycle_findings())
        return sorted(set(findings))

    def _cycle_findings(self) -> list[Finding]:
        graph: dict[Token, list[Token]] = {}
        for edge in self.edges:
            graph.setdefault(edge.source, []).append(edge.target)
        color: dict[Token, int] = {}
        stack: list[Token] = []
        cycles: list[tuple[Token, ...]] = []

        def visit(node: Token) -> None:
            color[node] = 1
            stack.append(node)
            for succ in graph.get(node, ()):
                mark = color.get(succ, 0)
                if mark == 0:
                    visit(succ)
                elif mark == 1:
                    loop = stack[stack.index(succ):] + [succ]
                    cycles.append(tuple(loop))
            stack.pop()
            color[node] = 2

        for node in sorted(graph):
            if color.get(node, 0) == 0:
                visit(node)
        findings: list[Finding] = []
        for loop in cycles:
            head = loop[0]
            relpath = self.field_files.get(head, "")
            rec = self.fields.get(head)
            findings.append(
                (
                    relpath,
                    rec.lineno if rec else 0,
                    "derivation cycle: "
                    + " -> ".join(_fmt(token) for token in loop),
                )
            )
        return findings

    # ==================================================================
    # L17 — rebuild-path existence
    # ==================================================================
    def rebuild_violations(self) -> list[Finding]:
        findings: list[Finding] = []
        roots = {
            fqname
            for fqname, function in self.project.iter_functions()
            if function.is_public or function.name in LIFECYCLE_NAMES
        }
        live = reachable(self.project.adjacency(), roots)
        for token, rec in sorted(self.fields.items()):
            if rec.kind != "soft":
                continue
            relpath = self.field_files[token]
            if not rec.rebuild:
                findings.append(
                    (
                        relpath,
                        rec.lineno,
                        f"soft state {_fmt(token)} declares no rebuild "
                        "function (rebuild=<fn> required: soft state must "
                        "be recomputable)",
                    )
                )
                continue
            if rec.rebuild == "__init__":
                continue  # rebuild-by-reconstruction
            resolved = self._resolve_rebuild(rec)
            if resolved is None:
                findings.append(
                    (
                        relpath,
                        rec.lineno,
                        f"soft state {_fmt(token)} rebuild "
                        f"{rec.rebuild!r} does not resolve to a project "
                        "function",
                    )
                )
            elif resolved not in live:
                findings.append(
                    (
                        relpath,
                        rec.lineno,
                        f"soft state {_fmt(token)} rebuild "
                        f"{rec.rebuild!r} ({resolved}) is unreachable from "
                        "any public or lifecycle entry point",
                    )
                )
        return sorted(set(findings))

    def _resolve_rebuild(self, rec: StateRec) -> str | None:
        project = self.project
        candidates = project.class_methods.get((rec.classname, rec.rebuild))
        if candidates:
            return candidates[0]
        by_name = project.by_method.get(rec.rebuild, [])
        if len(by_name) == 1:
            return by_name[0]
        bare = [
            fqname
            for fqname, function in project.iter_functions()
            if function.name == rec.rebuild and function.classname is None
        ]
        if len(bare) == 1:
            return bare[0]
        return None

    # ==================================================================
    # L18 — hard-state write scoping
    # ==================================================================
    def scope_violations(self) -> list[Finding]:
        hard = {
            token for token, rec in self.fields.items() if rec.kind == "hard"
        }
        sanctioned = reachable(
            self.project.adjacency(), self.mutators | self._lifecycle_fns
        )
        findings: list[Finding] = []
        for fqname in sorted(self._fn_mutated):
            function = self.project.functions[fqname]
            if function.name in LIFECYCLE_NAMES:
                continue
            if fqname in sanctioned:
                continue
            for token, lineno in sorted(self._fn_mutated[fqname].items()):
                if token not in hard:
                    continue
                module = self.project.module_of.get(fqname, "")
                relpath = self.relpath_by_module.get(module, module)
                findings.append(
                    (
                        relpath,
                        lineno,
                        f"{function.qualname} writes hard state "
                        f"{_fmt(token)} but is reachable from no "
                        "'#: state: mutator' entry point or lifecycle "
                        "method",
                    )
                )
        return sorted(set(findings))

    # ==================================================================
    # L19 — annotation coverage on stateful classes
    # ==================================================================
    def coverage_violations(self) -> list[Finding]:
        stateful = {token[0] for token in self.fields}
        frozen_classes = {
            rec.name
            for summary in self.project.files.values()
            for rec in summary.classes
            if rec.frozen
        }
        lock_attrs: set[Token] = set()
        for summary in self.project.files.values():
            for lock in summary.locks:
                lock_attrs.add((lock.classname, lock.attr))
        findings: list[Finding] = []
        for fqname, function in sorted(self.project.iter_functions()):
            classname = function.classname
            if classname not in stateful or classname in frozen_classes:
                continue
            if "<locals>" in function.qualname:
                continue
            module = self.project.module_of.get(fqname, "")
            relpath = self.relpath_by_module.get(module, module)
            for step in function.iter_steps():
                for write in step.writes:
                    if write.subscript or write.global_write:
                        continue
                    if len(write.chain) != 2 or write.chain[0] != "self":
                        continue
                    token = (classname, write.attr)
                    if token in self.fields or token in lock_attrs:
                        continue
                    findings.append(
                        (
                            relpath,
                            write.lineno,
                            f"{classname}.{write.attr} is assigned in "
                            f"{function.qualname} but carries no "
                            "'#: state:' annotation while the class "
                            "declares annotated state: the derivation DAG "
                            "cannot see it",
                        )
                    )
        return sorted(set(findings))

    # ==================================================================
    # graph export (for ``xmvrlint --graph``)
    # ==================================================================
    def derivation_graph(self) -> dict[str, object]:
        nodes = [
            {
                "id": _fmt(token),
                "kind": rec.kind,
                "rebuild": rec.rebuild,
            }
            for token, rec in sorted(self.fields.items())
        ]
        edges = [
            {
                "source": _fmt(edge.source),
                "target": _fmt(edge.target),
                "weak": edge.weak,
            }
            for edge in sorted(
                self.edges, key=lambda e: (e.source, e.target, e.weak)
            )
        ]
        return {"nodes": nodes, "edges": edges}


def _fmt(token: Token) -> str:
    return f"{token[0]}.{token[1]}"


def analyze_statedeps(project: Project) -> StateFacts:
    """Build the derivation DAG and per-function facts for a project."""
    relpath_by_module = {
        summary.module: relpath for relpath, summary in project.files.items()
    }
    return StateFacts(project=project, relpath_by_module=relpath_by_module)
