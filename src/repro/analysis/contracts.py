"""Compatibility shim: the runtime contract checks moved to
:mod:`repro.core.contracts`.

The checks guard the answering pipeline and are imported by
``core/system.py``; keeping them in the analysis layer forced core to
import upward across the layer DAG (xmvrlint L9).  The analysis layer
re-exports them here so existing ``repro.analysis.contracts`` imports
keep working.
"""

from ..core.contracts import (
    ContractViolation,
    check_document_order,
    check_plan_consistency,
    check_selection_covers,
    check_vfilter_sound,
    enabled,
    sample_every,
)

__all__ = [
    "ContractViolation",
    "enabled",
    "sample_every",
    "check_document_order",
    "check_selection_covers",
    "check_vfilter_sound",
    "check_plan_consistency",
]
