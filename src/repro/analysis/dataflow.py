"""Function summaries and the forward-dataflow engine for xmvrlint.

This module is the substrate of the whole-program half of the linter
(rules L6-L9).  Source files are lowered once into a small, pickleable
IR — per-function :class:`Step` trees carrying the calls, state writes
and raises each statement performs — and every later analysis (call
graph, effect inference, invalidation guarantees, exception-safety
windows) runs over that IR, never over raw ASTs.  That split is what
makes the on-disk fact cache possible: a warm re-lint of an unchanged
tree deserializes summaries and re-runs only the cheap fixpoints.

Three layers live here:

* **IR + extraction** — :class:`CallRef`, :class:`WriteRef`,
  :class:`Step`, :class:`FunctionSummary`, :class:`FileSummary` and
  :func:`summarize_module`.  Extraction performs a *local freshness*
  analysis: a name every one of whose assignments is a freshly
  constructed value (a literal, a comprehension, a ``cls(...)`` or
  CamelCase constructor call) provably refers to an object created
  inside the function, so writes through it cannot stale any cache
  that predates the call.  This is the analysis that proves
  ``MaterializedViewSystem.reopen`` safe without a suppression.
* **Generic solvers** — :func:`solve_fixpoint` (chaotic-iteration
  worklist over a monotone transfer function) and :func:`reachable`
  (graph reachability), shared by the call-graph and effect passes.
* **Guarantee scan** — :func:`scan_guarantee`, the abstract
  interpretation of a statement block ported from rule L1 onto the IR:
  does every normal exit path perform an "establishing" call?  Branch
  states merge at ``if``/``else``, loops are assumed to run zero
  times, ``finally`` propagates, ``raise`` exits are exempt.

The answering-state tables (which classes, attributes and methods
constitute "state the plan cache depends on") also live here so that
the per-file rule L1 and the whole-program passes share one
definition without an import cycle.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Mapping, TypeVar

__all__ = [
    "CallRef",
    "WriteRef",
    "ReadRef",
    "Step",
    "LockRec",
    "GuardRec",
    "ClassRec",
    "StateRec",
    "FunctionSummary",
    "ImportRec",
    "FileSummary",
    "STATE_CLASSES",
    "SYSTEM_CHAINS",
    "STATE_ATTRS",
    "DOCUMENT_ATTRS",
    "DOCUMENT_CHAINS",
    "FRAGMENT_METHODS",
    "VFILTER_METHODS",
    "LIST_METHODS",
    "DOCUMENT_METHODS",
    "ANY_RECEIVER_METHODS",
    "INVALIDATE_SEED",
    "attr_chain",
    "fresh_locals",
    "summarize_module",
    "module_name_for",
    "solve_fixpoint",
    "reachable",
    "scan_guarantee",
    "state_writes",
    "state_call",
]


# ======================================================================
# answering-state tables (shared by L1 and the whole-program passes)
# ======================================================================
#: Classes whose methods are held to the invalidation discipline.
STATE_CLASSES = {"MaterializedViewSystem", "XMVRSystem", "DocumentEditor"}
#: Expressions denoting "the system object" inside those classes.
SYSTEM_CHAINS = {("self",), ("system",), ("self", "system")}
#: Expressions denoting "the encoded document".
DOCUMENT_CHAINS = {("document",)} | {
    base + ("document",) for base in SYSTEM_CHAINS
}
#: System attributes whose (re)assignment is answering-state mutation.
STATE_ATTRS = {"_views", "_materialized", "vfilter", "fragments"}
#: Document attributes whose reassignment stales every plan.
DOCUMENT_ATTRS = {"schema", "fst"}
#: Mutating methods, keyed by the attribute they are reached through.
FRAGMENT_METHODS = {"materialize", "materialize_encoded", "drop"}
VFILTER_METHODS = {"add_view", "add_views"}
LIST_METHODS = {"append", "remove", "clear", "extend", "pop", "insert"}
DOCUMENT_METHODS = {"invalidate"}
#: Tree-surgery calls that mutate the base document on any receiver.
ANY_RECEIVER_METHODS = {"detach", "add_child"}
#: The call every mutation must be covered by.
INVALIDATE_SEED = "_invalidate_plans"


# ======================================================================
# IR
# ======================================================================
@dataclass(frozen=True, slots=True)
class CallRef:
    """One call site: the attribute chain of the callee expression.

    ``self.fragments.materialize(...)`` becomes
    ``chain=('self', 'fragments', 'materialize')``; a bare ``f(...)``
    becomes ``chain=('f',)``.  Calls whose callee is not a plain
    Name/Attribute chain (subscripts, lambdas) get the sentinel chain
    ``('<dynamic>',)``.  ``receiver_fresh`` marks calls whose receiver
    is a function-fresh local (see :func:`fresh_locals`).
    """

    chain: tuple[str, ...]
    lineno: int
    receiver_fresh: bool = False
    #: Per positional argument: its attribute chain when the argument
    #: is a plain name/attribute, ``('<call>', *chain)`` when it is
    #: itself a call, None otherwise.  Rule L8 uses this to trace what
    #: flows into plan-cache keys.
    arg_chains: tuple[tuple[str, ...] | None, ...] = ()

    @property
    def name(self) -> str:
        return self.chain[-1]

    @property
    def receiver(self) -> tuple[str, ...]:
        return self.chain[:-1]


@dataclass(frozen=True, slots=True)
class WriteRef:
    """One attribute / subscript / global write performed by a step."""

    chain: tuple[str, ...]
    lineno: int
    subscript: bool = False
    fresh: bool = False
    global_write: bool = False

    @property
    def attr(self) -> str:
        return self.chain[-1]

    @property
    def base(self) -> tuple[str, ...]:
        return self.chain[:-1]


@dataclass(frozen=True, slots=True)
class ReadRef:
    """One attribute-chain load performed by a step.

    Only *maximal* chains are recorded: ``self._epoch.plan_cache`` is
    one read of ``('self', '_epoch', 'plan_cache')``, not three nested
    reads.  The concurrency rules (L10/L12) match guarded fields
    against any position in the chain, so a read *through* a field
    still counts as a read *of* it.
    """

    chain: tuple[str, ...]
    lineno: int
    fresh: bool = False


@dataclass(frozen=True, slots=True)
class Step:
    """One abstract statement of the IR.

    ``kind`` is one of ``simple`` / ``return`` / ``raise`` / ``if`` /
    ``loop`` / ``with`` / ``try``.  ``calls`` and ``writes`` are the
    calls and writes the step's *own* eagerly-evaluated expressions
    perform (for compound statements: the test / iterable / context
    expressions, not the nested blocks).  ``has_value`` marks a
    ``return`` carrying an expression.
    """

    kind: str
    lineno: int
    calls: tuple[CallRef, ...] = ()
    writes: tuple[WriteRef, ...] = ()
    reads: tuple[ReadRef, ...] = ()
    #: ``x = f(...)`` bindings: (local name, callee chain) pairs, so L8
    #: can chase a cache key back to the call that produced it.
    binds: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: For ``with`` steps: the attribute chain of each plain
    #: Name/Attribute context expression (``with self._lock:`` →
    #: ``('self', '_lock')``).  The lock-set walker treats these as
    #: acquisitions scoped to the step's body.
    contexts: tuple[tuple[str, ...], ...] = ()
    has_value: bool = False
    body: tuple["Step", ...] = ()
    orelse: tuple["Step", ...] = ()
    handlers: tuple[tuple["Step", ...], ...] = ()
    final: tuple["Step", ...] = ()


@dataclass(frozen=True, slots=True)
class FunctionSummary:
    """Everything the whole-program passes need about one function."""

    name: str
    qualname: str
    lineno: int
    classname: str | None = None
    decorators: tuple[str, ...] = ()
    params: tuple[str, ...] = ()
    steps: tuple[Step, ...] = ()
    nested: tuple["FunctionSummary", ...] = ()
    reads_state: bool = False
    memoized: bool = False

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def iter_steps(self) -> Iterator[Step]:
        """Every step of this function, including nested blocks (but
        not nested function definitions)."""
        stack: list[Step] = list(self.steps)
        while stack:
            step = stack.pop()
            yield step
            stack.extend(step.body)
            stack.extend(step.orelse)
            stack.extend(step.final)
            for handler in step.handlers:
                stack.extend(handler)


@dataclass(frozen=True, slots=True)
class ImportRec:
    """One import binding: ``local`` name → absolute dotted ``target``."""

    local: str
    target: str
    lineno: int


@dataclass(frozen=True, slots=True)
class LockRec:
    """One ``threading.Lock/RLock/Condition`` instance attribute.

    Auto-detected from ``self.X = threading.Lock()``-style assignments;
    ``blocking_allowed`` comes from a ``#: lock: blocking-allowed``
    comment on (or just above) the declaration and exempts the lock
    from rule L14.
    """

    classname: str
    attr: str
    kind: str  # "Lock" | "RLock" | "Condition"
    blocking_allowed: bool = False
    lineno: int = 0


@dataclass(frozen=True, slots=True)
class GuardRec:
    """One ``#: guarded-by: <lock>`` field annotation.

    ``mode`` is ``"all"`` (every access must hold the lock) or
    ``"writes"`` (writes locked, lock-free reads are by design — the
    double-checked / monotonic-publish idiom).  ``pin_once`` marks
    fields under rule L12's bind-once discipline.
    """

    classname: str
    attr: str
    lock: str
    mode: str = "all"
    pin_once: bool = False
    lineno: int = 0


@dataclass(frozen=True, slots=True)
class ClassRec:
    """One class definition: name plus whether it is a frozen
    dataclass (rule L13's snapshot-immutability witness)."""

    name: str
    lineno: int
    frozen: bool = False


@dataclass(frozen=True, slots=True)
class StateRec:
    """One ``#: state:`` ownership annotation (rules L15-L19).

    ``kind`` is one of:

    * ``hard`` — primary state: config, injected collaborators, the
      base document.  Never derived from anything; mutated only inside
      designated mutator entry points (L18).
    * ``soft`` — derived state, rebuildable from its ``derived-from``
      sources via the named ``rebuild`` function.  Every write
      reaching a source must patch or invalidate it (L15).
    * ``counter`` — observational tallies / transient coordination
      flags; annotated for L19 completeness but outside the DAG.
    * ``mutator`` — a *function* annotation (the comment sits on a
      ``def`` line): this function is a sanctioned hard-state write
      scope, the surface WAL logging will later hook.  ``attr`` then
      holds the function name; ``classname`` is ``""`` for
      module-level functions.

    ``derived_from`` holds the raw source spellings: a bare field name
    (same class), ``Class.attr`` for a cross-class source, and a
    trailing ``?`` marks a *weak* edge — the dependency is documented
    (and drawn in ``--graph``) but exempt from L15's every-exit-path
    obligation, for selectively patched state like per-view memo
    eviction.
    """

    classname: str
    attr: str
    kind: str  # "hard" | "soft" | "counter" | "mutator"
    derived_from: tuple[str, ...] = ()
    rebuild: str = ""
    lineno: int = 0


@dataclass(frozen=True, slots=True)
class FileSummary:
    """Per-file facts consumed by the project-level passes."""

    relpath: str
    module: str
    imports: tuple[ImportRec, ...] = ()
    functions: tuple[FunctionSummary, ...] = ()
    class_names: tuple[str, ...] = ()
    locks: tuple[LockRec, ...] = ()
    guards: tuple[GuardRec, ...] = ()
    classes: tuple[ClassRec, ...] = ()
    states: tuple[StateRec, ...] = ()


# ======================================================================
# extraction helpers
# ======================================================================
def attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``self.system.fragments`` -> ('self', 'system', 'fragments');
    None when the expression is not a pure Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


_CAMEL = re.compile(r"^[A-Z]")


def _is_fresh_expr(value: ast.expr) -> bool:
    """Does this expression provably construct a new object?

    Literals, comprehensions and constructor calls (``cls(...)`` or a
    CamelCase callee, the project's class-naming convention) qualify.
    Anything else — attribute loads, arbitrary calls — may alias
    pre-existing state and is treated as non-fresh.
    """
    if isinstance(
        value,
        (
            ast.Constant,
            ast.List,
            ast.Tuple,
            ast.Dict,
            ast.Set,
            ast.ListComp,
            ast.SetComp,
            ast.DictComp,
            ast.GeneratorExp,
            ast.JoinedStr,
        ),
    ):
        return True
    if isinstance(value, ast.Call):
        callee = value.func
        if isinstance(callee, ast.Name):
            return callee.id == "cls" or bool(_CAMEL.match(callee.id))
        if isinstance(callee, ast.Attribute):
            return bool(_CAMEL.match(callee.attr))
    return False


def _own_nodes(function: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: list[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def fresh_locals(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names that provably hold function-fresh objects.

    A name qualifies iff *every* binding of it in the function is a
    fresh expression (:func:`_is_fresh_expr`); parameters, loop
    targets, ``with``-as names, exception names and ``global`` /
    ``nonlocal`` declarations disqualify.  Path-insensitive and
    therefore sound: whatever the control flow, the name can only ever
    refer to an object constructed inside this call.
    """
    fresh: set[str] = set()
    tainted: set[str] = set()
    arguments = function.args
    for arg in (
        arguments.posonlyargs
        + arguments.args
        + arguments.kwonlyargs
        + ([arguments.vararg] if arguments.vararg else [])
        + ([arguments.kwarg] if arguments.kwarg else [])
    ):
        tainted.add(arg.arg)

    def bind(target: ast.expr, is_fresh: bool) -> None:
        if isinstance(target, ast.Name):
            if is_fresh and target.id not in tainted:
                fresh.add(target.id)
            else:
                tainted.add(target.id)
                fresh.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element, False)
        elif isinstance(target, ast.Starred):
            bind(target.value, False)
        # Attribute/Subscript targets bind no local name.

    for node in _own_nodes(function):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, _is_fresh_expr(node.value))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None:
                bind(node.target, _is_fresh_expr(node.value))
        elif isinstance(node, ast.AugAssign):
            bind(node.target, False)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target, _is_fresh_expr(node.value))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, False)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars, False)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            tainted.add(node.name)
            fresh.discard(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            for name in node.names:
                tainted.add(name)
                fresh.discard(name)
    return fresh - tainted


class _FunctionLowerer:
    """Lowers one function body to the Step IR."""

    def __init__(
        self,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        declared_globals: set[str],
    ) -> None:
        self.fresh = fresh_locals(function)
        self.declared_globals = declared_globals

    # -- expression facts ------------------------------------------------
    def _expr_calls(self, exprs: Iterable[ast.expr]) -> tuple[CallRef, ...]:
        calls: list[CallRef] = []
        for expr in exprs:
            for probe in ast.walk(expr):
                if isinstance(probe, (ast.Lambda,)):
                    continue
                if isinstance(probe, ast.Call):
                    chain = (
                        attr_chain(probe.func)
                        if isinstance(probe.func, (ast.Attribute, ast.Name))
                        else None
                    )
                    if chain is None:
                        chain = ("<dynamic>",)
                    receiver_fresh = len(chain) > 1 and chain[0] in self.fresh
                    calls.append(
                        CallRef(
                            chain=chain,
                            lineno=getattr(probe, "lineno", 0),
                            receiver_fresh=receiver_fresh,
                            arg_chains=tuple(
                                self._arg_chain(arg) for arg in probe.args
                            ),
                        )
                    )
        return tuple(calls)

    def _expr_reads(self, exprs: Iterable[ast.expr]) -> tuple[ReadRef, ...]:
        """Maximal attribute-chain loads inside eager expressions."""
        reads: list[ReadRef] = []
        stack: list[ast.AST] = list(exprs)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Attribute):
                chain = attr_chain(node)
                if chain is not None and len(chain) >= 2:
                    reads.append(
                        ReadRef(
                            chain=chain,
                            lineno=getattr(node, "lineno", 0),
                            fresh=chain[0] in self.fresh,
                        )
                    )
                    continue  # maximal chain: do not record sub-chains
            stack.extend(ast.iter_child_nodes(node))
        return tuple(reads)

    @staticmethod
    def _arg_chain(arg: ast.expr) -> tuple[str, ...] | None:
        if isinstance(arg, (ast.Name, ast.Attribute)):
            return attr_chain(arg)
        if isinstance(arg, ast.Call) and isinstance(
            arg.func, (ast.Name, ast.Attribute)
        ):
            chain = attr_chain(arg.func)
            if chain is not None:
                return ("<call>",) + chain
        return None

    def _write_targets(self, stmt: ast.stmt) -> tuple[WriteRef, ...]:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        writes: list[WriteRef] = []
        for target in targets:
            probe = target
            subscript = False
            if isinstance(probe, ast.Subscript):
                subscript = True
                probe = probe.value
            if isinstance(probe, ast.Attribute):
                chain = attr_chain(probe)
                if chain is not None:
                    writes.append(
                        WriteRef(
                            chain=chain,
                            lineno=stmt.lineno,
                            subscript=subscript,
                            fresh=chain[0] in self.fresh,
                        )
                    )
            elif isinstance(probe, ast.Name):
                if subscript:
                    writes.append(
                        WriteRef(
                            chain=(probe.id,),
                            lineno=stmt.lineno,
                            subscript=True,
                            fresh=probe.id in self.fresh,
                            global_write=probe.id in self.declared_globals,
                        )
                    )
                elif probe.id in self.declared_globals:
                    writes.append(
                        WriteRef(
                            chain=(probe.id,),
                            lineno=stmt.lineno,
                            global_write=True,
                        )
                    )
            elif isinstance(probe, (ast.Tuple, ast.List)):
                for element in probe.elts:
                    if isinstance(element, (ast.Attribute, ast.Name, ast.Subscript)):
                        fake = ast.Assign(targets=[element], value=ast.Constant(value=None))
                        fake.lineno = stmt.lineno
                        writes.extend(self._write_targets(fake))
        return tuple(writes)

    def _eager_exprs(self, stmt: ast.stmt) -> list[ast.expr]:
        """Expressions a statement evaluates unconditionally."""
        if isinstance(stmt, ast.Expr):
            return [stmt.value]
        if isinstance(stmt, ast.Assign):
            return [stmt.value] + [
                t.slice for t in stmt.targets if isinstance(t, ast.Subscript)
            ]
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return [stmt.value]
        if isinstance(stmt, ast.AugAssign):
            return [stmt.value]
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Assert):
            return [stmt.test]
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return [stmt.value]
        if isinstance(stmt, ast.Raise):
            return [e for e in (stmt.exc, stmt.cause) if e is not None]
        if isinstance(stmt, ast.Delete):
            return [t.slice for t in stmt.targets if isinstance(t, ast.Subscript)]
        return []

    # -- statement lowering ----------------------------------------------
    def lower_block(self, stmts: list[ast.stmt]) -> tuple[Step, ...]:
        steps: list[Step] = []
        for stmt in stmts:
            step = self.lower_stmt(stmt)
            if step is not None:
                steps.append(step)
        return tuple(steps)

    def lower_stmt(self, stmt: ast.stmt) -> Step | None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return None
        calls = self._expr_calls(self._eager_exprs(stmt))
        writes = self._write_targets(stmt)
        reads = self._expr_reads(self._eager_exprs(stmt))
        lineno = stmt.lineno
        if isinstance(stmt, ast.Return):
            return Step(
                kind="return",
                lineno=lineno,
                calls=calls,
                reads=reads,
                has_value=stmt.value is not None,
            )
        if isinstance(stmt, ast.Raise):
            return Step(kind="raise", lineno=lineno, calls=calls, reads=reads)
        if isinstance(stmt, ast.If):
            return Step(
                kind="if",
                lineno=lineno,
                calls=calls,
                reads=reads,
                body=self.lower_block(stmt.body),
                orelse=self.lower_block(stmt.orelse),
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return Step(
                kind="loop",
                lineno=lineno,
                calls=calls,
                reads=reads,
                body=self.lower_block(stmt.body),
                orelse=self.lower_block(stmt.orelse),
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            contexts: list[tuple[str, ...]] = []
            for item in stmt.items:
                if isinstance(item.context_expr, (ast.Name, ast.Attribute)):
                    chain = attr_chain(item.context_expr)
                    if chain is not None:
                        contexts.append(chain)
            return Step(
                kind="with",
                lineno=lineno,
                calls=calls,
                reads=reads,
                contexts=tuple(contexts),
                body=self.lower_block(stmt.body),
            )
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return Step(
                kind="try",
                lineno=lineno,
                body=self.lower_block(stmt.body),
                orelse=self.lower_block(stmt.orelse),
                handlers=tuple(
                    self.lower_block(handler.body) for handler in stmt.handlers
                ),
                final=self.lower_block(stmt.finalbody),
            )
        binds: tuple[tuple[str, tuple[str, ...]], ...] = ()
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, (ast.Name, ast.Attribute))
        ):
            chain = attr_chain(stmt.value.func)
            if chain is not None:
                binds = ((stmt.targets[0].id, chain),)
        return Step(
            kind="simple",
            lineno=lineno,
            calls=calls,
            writes=writes,
            reads=reads,
            binds=binds,
        )


def _decorator_names(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[str, ...]:
    names: list[str] = []
    for decorator in function.decorator_list:
        probe: ast.expr = decorator
        if isinstance(probe, ast.Call):
            probe = probe.func
        chain = (
            attr_chain(probe)
            if isinstance(probe, (ast.Attribute, ast.Name))
            else None
        )
        if chain:
            names.append(chain[-1])
    return tuple(names)


_MEMO_DECORATORS = {"lru_cache", "cache", "cached_property"}


def _reads_state(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Does the body read any ``self`` / ``cls`` attribute or the
    process environment?  (The "reads" rung of the effect lattice.)"""
    for node in _own_nodes(function):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            chain = attr_chain(node)
            if chain and chain[0] in ("self", "cls"):
                return True
            if chain and chain[:2] == ("os", "environ"):
                return True
    return False


def _summarize_function(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
    qualprefix: str,
    classname: str | None,
) -> FunctionSummary:
    declared_globals: set[str] = set()
    for node in _own_nodes(function):
        if isinstance(node, ast.Global):
            declared_globals.update(node.names)
    lowerer = _FunctionLowerer(function, declared_globals)
    qualname = f"{qualprefix}{function.name}"
    nested: list[FunctionSummary] = []
    for node in ast.walk(function):
        if node is function:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Only direct children of this function's body blocks; a
            # deeper nest is summarized by its own parent recursion.
            if _is_directly_nested(function, node):
                nested.append(
                    _summarize_function(
                        node, f"{qualname}.<locals>.", classname
                    )
                )
    arguments = function.args
    params = tuple(
        arg.arg
        for arg in (
            arguments.posonlyargs
            + arguments.args
            + arguments.kwonlyargs
            + ([arguments.vararg] if arguments.vararg else [])
            + ([arguments.kwarg] if arguments.kwarg else [])
        )
    )
    decorators = _decorator_names(function)
    return FunctionSummary(
        name=function.name,
        qualname=qualname,
        lineno=function.lineno,
        classname=classname,
        decorators=decorators,
        params=params,
        steps=lowerer.lower_block(function.body),
        nested=tuple(nested),
        reads_state=_reads_state(function),
        memoized=bool(_MEMO_DECORATORS & set(decorators)),
    )


def _is_directly_nested(
    parent: ast.FunctionDef | ast.AsyncFunctionDef,
    child: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for node in _own_nodes(parent):
        if node is child:
            return True
    return False


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/core/system.py`` → ``repro.core.system``; a leading
    ``src/`` is dropped, ``__init__.py`` maps to its package.
    """
    parts = list(relpath.replace("\\", "/").split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = last
    return ".".join(part for part in parts if part)


def _resolve_import(module: str, target: str, level: int) -> str:
    """Absolute dotted target for a (possibly relative) import."""
    if level == 0:
        return target
    base = module.split(".")
    # ``from . import x`` inside package p.q (module p.q.m): level 1
    # strips the module segment itself.
    if len(base) >= level:
        base = base[: len(base) - level]
    else:
        base = []
    if target:
        base.append(target)
    return ".".join(base)


# ======================================================================
# concurrency-record extraction (locks, guarded-by annotations, classes)
# ======================================================================
_GUARDED_BY_RE = re.compile(
    r"#:\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:\(([^)]*)\))?"
)
_LOCK_FLAG_RE = re.compile(r"#:\s*lock:\s*blocking-allowed\b")
#: ``#: state: hard`` / ``#: state: counter`` /
#: ``#: state: soft(derived-from=a, Class.b?; rebuild=fn)`` /
#: ``#: state: mutator`` (the latter on a ``def`` line).
_STATE_RE = re.compile(
    r"#:\s*state:\s*(hard|soft|counter|mutator)\s*(?:\(([^)]*)\))?"
)
#: Restricted probe used near ``def`` lines so a mutator annotation is
#: never stolen by a field-assignment site a few lines below it.
_STATE_MUTATOR_RE = re.compile(r"#:\s*state:\s*mutator\b")
_LOCK_CTORS = {"Lock", "RLock", "Condition"}


def _parse_state_options(raw: str) -> tuple[tuple[str, ...], str]:
    """``derived-from=a, b?; rebuild=fn`` → (sources, rebuild name)."""
    derived: tuple[str, ...] = ()
    rebuild = ""
    for part in raw.split(";"):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        if key == "derived-from":
            derived = tuple(
                item.strip() for item in value.split(",") if item.strip()
            )
        elif key == "rebuild":
            rebuild = value.strip()
    return derived, rebuild


def _comment_lines(source: str) -> dict[int, str]:
    """Line → comment text, via tokenize (comments are invisible to
    the AST but carry the guarded-by grammar)."""
    comments: dict[int, str] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _lock_kind(value: ast.expr | None) -> str | None:
    """``threading.Lock()`` / ``Condition(...)`` → the ctor name."""
    if not isinstance(value, ast.Call):
        return None
    if not isinstance(value.func, (ast.Name, ast.Attribute)):
        return None
    chain = attr_chain(value.func)
    if chain is None or chain[-1] not in _LOCK_CTORS:
        return None
    return chain[-1]


def _concurrency_records(
    tree: ast.Module, source: str | None
) -> tuple[
    tuple[LockRec, ...],
    tuple[GuardRec, ...],
    tuple[ClassRec, ...],
    tuple[StateRec, ...],
]:
    """Extract lock declarations, guarded-by / state annotations and
    class records from one module.

    An annotation comment binds to the first ``self.X = ...``
    assignment (or, for ``state: mutator``, the first ``def`` line) on
    the same line or within the three following lines; each comment
    binds at most once, so runs of consecutively annotated fields
    resolve pairwise.  A field may stack one ``guarded-by`` and one
    ``state`` comment — the regexes consume independently.
    """
    comments = _comment_lines(source) if source else {}
    consumed: set[int] = set()

    def annotation_at(
        lineno: int, regex: re.Pattern[str]
    ) -> "re.Match[str] | None":
        for probe in range(lineno, lineno - 4, -1):
            if probe in consumed:
                continue
            text = comments.get(probe)
            if text is None:
                continue
            match = regex.search(text)
            if match is not None:
                consumed.add(probe)
                return match
        return None

    locks: list[LockRec] = []
    guards: dict[tuple[str, str], GuardRec] = {}
    classes: list[ClassRec] = []
    states: dict[tuple[str, str], StateRec] = {}

    # Mutator annotations bind to ``def`` lines and are scanned first,
    # so a field site in the method's opening lines can never steal
    # the comment.
    def probe_mutator(
        member: ast.FunctionDef | ast.AsyncFunctionDef, classname: str
    ) -> None:
        if annotation_at(member.lineno, _STATE_MUTATOR_RE) is None:
            return
        key = (classname, member.name)
        if key not in states:
            states[key] = StateRec(
                classname=classname,
                attr=member.name,
                kind="mutator",
                lineno=member.lineno,
            )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            probe_mutator(node, "")
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    probe_mutator(member, node.name)

    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        frozen = False
        for decorator in node.decorator_list:
            probe: ast.expr = decorator
            frozen_kw = False
            if isinstance(probe, ast.Call):
                frozen_kw = any(
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in probe.keywords
                )
                probe = probe.func
            chain = (
                attr_chain(probe)
                if isinstance(probe, (ast.Attribute, ast.Name))
                else None
            )
            if chain and chain[-1] == "dataclass" and frozen_kw:
                frozen = True
        classes.append(
            ClassRec(name=node.name, lineno=node.lineno, frozen=frozen)
        )
        sites: list[tuple[int, str, ast.expr | None]] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                targets: list[ast.expr] = list(sub.targets)
                value: ast.expr | None = sub.value
            elif isinstance(sub, ast.AnnAssign):
                targets = [sub.target]
                value = sub.value
            else:
                continue
            for target in targets:
                chain = (
                    attr_chain(target)
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if chain is None or len(chain) != 2 or chain[0] != "self":
                    continue
                sites.append((sub.lineno, chain[1], value))
        seen_locks: set[str] = set()
        for lineno, attr, value in sorted(sites):
            kind = _lock_kind(value)
            if kind is not None:
                if attr not in seen_locks:
                    seen_locks.add(attr)
                    flag = annotation_at(lineno, _LOCK_FLAG_RE) is not None
                    locks.append(
                        LockRec(
                            classname=node.name,
                            attr=attr,
                            kind=kind,
                            blocking_allowed=flag,
                            lineno=lineno,
                        )
                    )
                continue
            state_match = annotation_at(lineno, _STATE_RE)
            if state_match is not None and (node.name, attr) not in states:
                derived, rebuild = _parse_state_options(
                    state_match.group(2) or ""
                )
                states[(node.name, attr)] = StateRec(
                    classname=node.name,
                    attr=attr,
                    kind=state_match.group(1),
                    derived_from=derived,
                    rebuild=rebuild,
                    lineno=lineno,
                )
            match = annotation_at(lineno, _GUARDED_BY_RE)
            if match is None or (node.name, attr) in guards:
                continue
            mode = "all"
            pin_once = False
            for option in (match.group(2) or "").split(","):
                option = option.strip()
                if option == "writes":
                    mode = "writes"
                elif option == "pin-once":
                    pin_once = True
            guards[(node.name, attr)] = GuardRec(
                classname=node.name,
                attr=attr,
                lock=match.group(1),
                mode=mode,
                pin_once=pin_once,
                lineno=lineno,
            )
    return (
        tuple(locks),
        tuple(guards.values()),
        tuple(classes),
        tuple(states.values()),
    )


def summarize_module(
    tree: ast.Module, relpath: str, source: str | None = None
) -> FileSummary:
    """Lower one parsed module to its :class:`FileSummary`.

    ``source`` (when available) feeds the comment-level concurrency
    annotations; without it the lock/class records still extract from
    the AST but guarded-by annotations are absent.
    """
    module = module_name_for(relpath)
    imports: list[ImportRec] = []
    functions: list[FunctionSummary] = []
    class_names: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                imports.append(
                    ImportRec(local=local, target=alias.name, lineno=node.lineno)
                )
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_import(module, node.module or "", node.level)
            for alias in node.names:
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                imports.append(
                    ImportRec(local=local, target=target, lineno=node.lineno)
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_summarize_function(node, "", None))
        elif isinstance(node, ast.ClassDef):
            class_names.append(node.name)
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(
                        _summarize_function(
                            member, f"{node.name}.", node.name
                        )
                    )
    locks, guards, classes, states = _concurrency_records(tree, source)
    return FileSummary(
        relpath=relpath,
        module=module,
        imports=tuple(imports),
        functions=tuple(functions),
        class_names=tuple(class_names),
        locks=locks,
        guards=guards,
        classes=classes,
        states=states,
    )


# ======================================================================
# generic solvers
# ======================================================================
N = TypeVar("N", bound=Hashable)
T = TypeVar("T")


def solve_fixpoint(
    nodes: Iterable[N],
    bottom: T,
    transfer: Callable[[N, Callable[[N], T]], T],
) -> dict[N, T]:
    """Chaotic-iteration worklist solver.

    ``transfer(node, get)`` computes a new fact for ``node``; every
    ``get(other)`` it performs is recorded as a dependency, and when
    ``other``'s fact later changes, ``node`` is re-queued.  Terminates
    for monotone transfer functions over finite-height lattices (every
    analysis here uses booleans or small frozen sets).
    """
    facts: dict[N, T] = {node: bottom for node in nodes}
    dependents: dict[N, set[N]] = {node: set() for node in facts}
    worklist: list[N] = list(facts)
    queued: set[N] = set(worklist)
    while worklist:
        node = worklist.pop()
        queued.discard(node)
        touched: list[N] = []

        def get(other: N) -> T:
            if other not in facts:
                return bottom
            touched.append(other)
            return facts[other]

        updated = transfer(node, get)
        for other in touched:
            dependents.setdefault(other, set()).add(node)
        if updated != facts[node]:
            facts[node] = updated
            for dependent in dependents.get(node, ()):
                if dependent not in queued:
                    worklist.append(dependent)
                    queued.add(dependent)
    return facts


def reachable(
    graph: Mapping[N, Iterable[N]], roots: Iterable[N]
) -> set[N]:
    """Forward reachability over an adjacency mapping."""
    seen: set[N] = set()
    stack: list[N] = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(graph.get(node, ()))
    return seen


# ======================================================================
# answering-state predicates over the IR
# ======================================================================
def state_writes(step: Step) -> tuple[WriteRef, ...]:
    """The writes of ``step`` that mutate answering state (fresh
    receivers are exempt: a freshly constructed system has an empty
    plan cache, so writes through it cannot stale anything)."""
    hits: list[WriteRef] = []
    for write in step.writes:
        if write.fresh:
            continue
        if write.base in SYSTEM_CHAINS and write.attr in STATE_ATTRS:
            hits.append(write)
        elif write.base in DOCUMENT_CHAINS and write.attr in DOCUMENT_ATTRS:
            hits.append(write)
    return tuple(hits)


def state_call(call: CallRef, allow_any_receiver: bool = True) -> bool:
    """Does this call site mutate answering state per the L1 tables?

    ``allow_any_receiver`` gates the ``detach`` / ``add_child`` family:
    inside the watched classes (and the core layer) tree surgery on any
    receiver touches the live document, but in the construction layers
    the same calls build fresh trees and are harmless.
    """
    if call.name in ANY_RECEIVER_METHODS:
        return allow_any_receiver
    if call.receiver_fresh:
        return False
    chain = call.chain
    if call.name in DOCUMENT_METHODS and call.receiver in DOCUMENT_CHAINS:
        return True
    if len(chain) >= 3 and chain[:-2] in SYSTEM_CHAINS:
        holder = chain[-2]
        if holder == "fragments" and call.name in FRAGMENT_METHODS:
            return True
        if holder == "vfilter" and call.name in VFILTER_METHODS:
            return True
        if holder == "_materialized" and call.name in LIST_METHODS:
            return True
    return False


def step_mutates_state(step: Step) -> bool:
    """This single step writes answering state (writes or calls)."""
    if state_writes(step):
        return True
    return any(state_call(call) for call in step.calls)


# ======================================================================
# guarantee scan (L1's abstract interpretation, over the IR)
# ======================================================================
@dataclass(slots=True)
class ScanResult:
    falls_through: bool
    called: bool
    bad: bool


def scan_guarantee(
    steps: tuple[Step, ...],
    called: bool,
    establishes: Callable[[CallRef], bool],
) -> ScanResult:
    """Does every normal exit path perform an establishing call?

    Port of rule L1's abstract interpretation onto the IR: ``raise``
    exits are exempt, loops are assumed to run zero times, ``try`` is
    conservative (never *establishes* the call, but exits inside it
    are still checked), branch states merge at ``if``.
    """
    bad = False
    for step in steps:
        if any(establishes(call) for call in step.calls):
            called = True
        if step.kind == "return":
            ok = called or (
                step.has_value and any(establishes(call) for call in step.calls)
            )
            return ScanResult(False, called, bad or not ok)
        if step.kind == "raise":
            return ScanResult(False, called, bad)
        if step.kind == "if":
            body = scan_guarantee(step.body, called, establishes)
            orelse = scan_guarantee(step.orelse, called, establishes)
            bad = bad or body.bad or orelse.bad
            if not body.falls_through and not orelse.falls_through:
                return ScanResult(False, called, bad)
            falling = [
                result.called
                for result in (body, orelse)
                if result.falls_through
            ]
            called = bool(falling) and all(falling)
        elif step.kind == "loop":
            bad = bad or scan_guarantee(step.body, called, establishes).bad
            bad = bad or scan_guarantee(step.orelse, called, establishes).bad
        elif step.kind == "with":
            inner = scan_guarantee(step.body, called, establishes)
            bad = bad or inner.bad
            if not inner.falls_through:
                return ScanResult(False, called, bad)
            called = inner.called
        elif step.kind == "try":
            bad = bad or scan_guarantee(step.body, called, establishes).bad
            for handler in step.handlers:
                bad = bad or scan_guarantee(handler, called, establishes).bad
            bad = bad or scan_guarantee(step.orelse, called, establishes).bad
            final = scan_guarantee(step.final, called, establishes)
            bad = bad or final.bad
            if not final.falls_through:
                return ScanResult(False, called, bad)
            called = final.called
    return ScanResult(True, called, bad)
