"""Command-line front end for xmvrlint.

Two entry points share this module: ``python -m repro lint`` (the
subcommand registered in :mod:`repro.cli`) and the ``xmvrlint`` console
script declared in ``pyproject.toml``.  Both accept the same options
and honor the same exit-code contract (0 clean / 1 violations /
2 error).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from .engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    LintError,
    ProjectContext,
    all_rules,
    apply_baseline,
    apply_return_none_fixes,
    build_project_context,
    lint_paths,
    load_baseline,
    render_human,
    render_json,
    render_sarif,
    unused_baseline_entries,
    write_baseline,
)

__all__ = [
    "add_lint_arguments",
    "run_lint",
    "explain_rule",
    "graph_payload",
    "render_graph_dot",
    "main",
]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        metavar="RULES",
        help="comma-separated rule ids or ranges to run, e.g. "
        "'L1,L4' or 'L1-L9' (default: all)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="auto-insert '-> None' on obvious procedures flagged by L5",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print the DESIGN.md invariant entry for a rule id and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help="tolerate the violations recorded in this baseline file "
        "(mypy-style ratchet; regenerate with --write-baseline)",
    )
    parser.add_argument(
        "--baseline-strict",
        action="store_true",
        help="with --baseline: fail (exit 2) when the baseline holds "
        "entries that no longer fire, so stale slots cannot hide "
        "future regressions",
    )
    parser.add_argument(
        "--graph",
        choices=("dot", "json"),
        help="instead of linting, emit the `#: state:` derivation DAG "
        "and the L11 lock-acquisition graph for the given paths in "
        "DOT or JSON and exit",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        type=Path,
        help="write the current violations to a baseline file and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        type=Path,
        help="per-file fact cache directory "
        "(default: .xmvrlint-cache in the current directory)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file fact cache",
    )


def _design_path() -> Path | None:
    """DESIGN.md, looked up from the repo the linted tree lives in."""
    for candidate in (Path.cwd(), *Path.cwd().parents):
        probe = candidate / "DESIGN.md"
        if probe.is_file():
            return probe
    return None


def explain_rule(rule_id: str) -> str:
    """The DESIGN.md §10 invariant entry for ``rule_id``.

    Entries are the ``**Lk — title.** body`` bold paragraphs of the
    invariant catalog; falls back to the rule's one-line summary when
    DESIGN.md is not found.  Unknown ids raise :class:`LintError`.
    """
    wanted = rule_id.strip().upper()
    by_id = {rule.rule_id: rule for rule in all_rules()}
    if wanted not in by_id:
        raise LintError(
            f"unknown rule id {rule_id!r}; known: {', '.join(sorted(by_id))}"
        )
    design = _design_path()
    if design is not None:
        text = design.read_text(encoding="utf-8")
        pattern = re.compile(
            rf"^\*\*{re.escape(wanted)}\s.*?(?=^\*\*[A-Z]+\d+\s|^#|\Z)",
            re.MULTILINE | re.DOTALL,
        )
        match = pattern.search(text)
        if match is not None:
            return match.group(0).rstrip()
    return f"{wanted}: {by_id[wanted].summary}"


def graph_payload(pctx: ProjectContext) -> dict[str, object]:
    """The ``--graph`` document: the ``#: state:`` derivation DAG plus
    the L11 lock-acquisition graph, as one JSON-serializable dict."""
    derivation = pctx.statedeps.derivation_graph()
    concurrency = pctx.concurrency
    lock_nodes = [
        {"id": f"{token[0]}.{token[1]}", "kind": rec.kind}
        for token, rec in sorted(concurrency.locks.items())
    ]
    lock_edges = [
        {
            "source": f"{source[0]}.{source[1]}",
            "target": f"{target[0]}.{target[1]}",
        }
        for source, target in sorted(concurrency.edges)
    ]
    return {
        "derivation": derivation,
        "locks": {"nodes": lock_nodes, "edges": lock_edges},
    }


def render_graph_dot(payload: dict[str, object]) -> str:
    """Render a :func:`graph_payload` document as one DOT digraph with
    a cluster per graph.  Weak derivation edges are dashed; soft state
    is drawn as ellipses, hard state as boxes, counters as plaintext."""
    shapes = {"hard": "box", "soft": "ellipse", "counter": "plaintext"}
    lines = [
        "digraph xmvr_state {",
        "  rankdir=LR;",
        "  node [fontsize=10];",
        "  subgraph cluster_derivation {",
        '    label="derivation DAG (#: state:)";',
    ]
    derivation = payload["derivation"]
    assert isinstance(derivation, dict)
    for node in derivation["nodes"]:
        shape = shapes.get(str(node["kind"]), "ellipse")
        lines.append(f'    "{node["id"]}" [shape={shape}];')
    for edge in derivation["edges"]:
        style = " [style=dashed]" if edge["weak"] else ""
        lines.append(f'    "{edge["source"]}" -> "{edge["target"]}"{style};')
    lines.append("  }")
    locks = payload["locks"]
    assert isinstance(locks, dict)
    lines.append("  subgraph cluster_locks {")
    lines.append('    label="lock acquisition order (L11)";')
    for node in locks["nodes"]:
        lines.append(f'    "{node["id"]}" [shape=diamond];')
    for edge in locks["edges"]:
        lines.append(f'    "{edge["source"]}" -> "{edge["target"]}";')
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _run_graph(arguments: argparse.Namespace) -> int:
    pctx = build_project_context(
        arguments.paths, cache_dir=_cache_dir(arguments)
    )
    payload = graph_payload(pctx)
    if arguments.graph == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_graph_dot(payload), end="")
    return EXIT_CLEAN


def _cache_dir(arguments: argparse.Namespace) -> Path | None:
    if arguments.no_cache:
        return None
    if arguments.cache_dir is not None:
        return arguments.cache_dir
    return Path(".xmvrlint-cache")


def run_lint(arguments: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    try:
        if arguments.explain:
            print(explain_rule(arguments.explain))
            return EXIT_CLEAN
        if arguments.graph:
            return _run_graph(arguments)
        select = (
            arguments.select.split(",") if arguments.select else None
        )
        rules = all_rules(select)
        if arguments.list_rules:
            for rule in rules:
                print(f"{rule.rule_id}: {rule.summary}")
            return EXIT_CLEAN
        cache_dir = _cache_dir(arguments)
        violations = lint_paths(arguments.paths, rules, cache_dir=cache_dir)
        if arguments.fix:
            fixed = apply_return_none_fixes(violations)
            if fixed:
                print(f"xmvrlint: fixed {fixed} signature(s)", file=sys.stderr)
                violations = lint_paths(
                    arguments.paths, rules, cache_dir=cache_dir
                )
        if arguments.write_baseline is not None:
            write_baseline(violations, arguments.write_baseline)
            print(
                f"xmvrlint: wrote baseline for {len(violations)} "
                f"violation(s) to {arguments.write_baseline}",
                file=sys.stderr,
            )
            return EXIT_CLEAN
        if arguments.baseline is not None:
            baseline = load_baseline(arguments.baseline)
            if arguments.baseline_strict:
                stale = unused_baseline_entries(violations, baseline)
                if stale:
                    listing = ", ".join(
                        f"{key} (x{count})" for key, count in stale.items()
                    )
                    raise LintError(
                        f"{arguments.baseline}: stale baseline entries no "
                        f"longer fire: {listing}; prune them so the "
                        "ratchet cannot hide regressions"
                    )
            violations = apply_baseline(violations, baseline)
    except LintError as error:
        print(f"xmvrlint: error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if arguments.format == "json":
        print(render_json(violations))
    elif arguments.format == "sarif":
        print(render_sarif(violations, rules))
    else:
        print(render_human(violations))
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xmvrlint",
        description="Project-invariant static analysis for the XMVR "
                    "reproduction (rules L1-L19; see DESIGN.md §10, "
                    "§13 and §15)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
