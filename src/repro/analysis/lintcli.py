"""Command-line front end for xmvrlint.

Two entry points share this module: ``python -m repro lint`` (the
subcommand registered in :mod:`repro.cli`) and the ``xmvrlint`` console
script declared in ``pyproject.toml``.  Both accept the same options
and honor the same exit-code contract (0 clean / 1 violations /
2 error).
"""

from __future__ import annotations

import argparse
import sys

from .engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    LintError,
    all_rules,
    apply_return_none_fixes,
    lint_paths,
    render_human,
    render_json,
)

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint options on ``parser`` (shared with repro.cli)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="auto-insert '-> None' on obvious procedures flagged by L5",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def run_lint(arguments: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    try:
        select = (
            arguments.select.split(",") if arguments.select else None
        )
        rules = all_rules(select)
        if arguments.list_rules:
            for rule in rules:
                print(f"{rule.rule_id}: {rule.summary}")
            return EXIT_CLEAN
        violations = lint_paths(arguments.paths, rules)
        if arguments.fix:
            fixed = apply_return_none_fixes(violations)
            if fixed:
                print(f"xmvrlint: fixed {fixed} signature(s)", file=sys.stderr)
                violations = lint_paths(arguments.paths, rules)
    except LintError as error:
        print(f"xmvrlint: error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if arguments.format == "json":
        print(render_json(violations))
    else:
        print(render_human(violations))
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xmvrlint",
        description="Project-invariant static analysis for the XMVR "
                    "reproduction (rules L1-L5; see DESIGN.md §10)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
