"""The xmvrlint rule set (L1–L19).

Each rule encodes one repo-specific invariant that PR 1's caching layer
turned load-bearing; DESIGN.md §10 ties every rule to the mechanism it
protects.  The rules are intentionally conservative approximations —
they must never miss the failure mode they exist for, and the
suppression pragma exists for the rare justified exception.

L1–L5 are per-file AST rules.  L6–L9 are *whole-program* rules built on
the call graph (:mod:`repro.analysis.callgraph`) and the effect /
invalidation fixpoints (:mod:`repro.analysis.effects`): L6 generalizes
L1 interprocedurally, L7 checks exception safety of mutation windows,
L8 checks purity of everything feeding a cache key, and L9 enforces the
package layering DAG.

L10–L14 are the *concurrency* rules (DESIGN.md §13), built on the
lock-set / acquisition-graph facts of
:mod:`repro.analysis.concurrency`: L10 checks every access to a
``#: guarded-by:`` field holds the lock, L11 fails lock-order cycles
and non-reentrant re-acquisition, L12 enforces the pin-once epoch
discipline, L13 the deep immutability of published snapshots, and L14
forbids blocking calls under a core lock.  Line suppressions of these
five require a ``--`` justification; an unjustified pragma does not
suppress.

L15–L19 are the *derived-state ownership* rules (DESIGN.md §15), built
on the derivation DAG of :mod:`repro.analysis.statedeps` declared by
``#: state: hard | soft(derived-from=...; rebuild=...) | counter``
annotations: L15 generalizes L1/L6 from the plan cache to every DAG
edge (a write reaching a derivation source must invalidate or patch
every strict dependent on every non-raising exit), L16 checks the DAG
shape (acyclic, hard state never derived, counters never sources), L17
that every soft field has a reachable rebuild path, L18 that hard
state is only written under ``#: state: mutator`` entry points or
lifecycle methods, and L19 that stateful classes annotate every
mutable attribute.  The same mandatory-justification suppression
policy applies.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .callgraph import LAYER_RANKS, layer_of
from .dataflow import CallRef, fresh_locals
from .effects import _call_clock, _call_io, classify
from .engine import (
    FIX_RETURN_NONE,
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Violation,
    register,
)

__all__ = [
    "InvalidatePlansRule",
    "FrozenPatternRule",
    "IdKeyEscapeRule",
    "WallClockRule",
    "PublicAnnotationsRule",
    "InterproceduralInvalidateRule",
    "ExceptionSafetyRule",
    "CacheKeyPurityRule",
    "ImportLayeringRule",
    "LockSetRule",
    "LockOrderRule",
    "EpochPinningRule",
    "SnapshotImmutabilityRule",
    "BlockingUnderLockRule",
    "InvalidationCompletenessRule",
    "DerivationShapeRule",
    "RebuildPathRule",
    "HardWriteScopeRule",
    "StateCoverageRule",
]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _attr_chain(node: ast.expr) -> tuple[str, ...] | None:
    """``self.system.fragments`` -> ('self', 'system', 'fragments');
    None when the expression is not a pure Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _function_defs(tree: ast.Module) -> Iterator[tuple[ast.ClassDef | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Module-level and class-level function definitions (not nested)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, member


def _own_nodes(function: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested defs."""
    stack: list[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _contains_id_call(node: ast.AST) -> bool:
    return any(
        isinstance(probe, ast.Call)
        and isinstance(probe.func, ast.Name)
        and probe.func.id == "id"
        for probe in ast.walk(node)
    )


# ======================================================================
# L1 — cache-invalidation discipline
# ======================================================================
#: Classes whose methods are held to the invalidation discipline.
_L1_CLASSES = {"MaterializedViewSystem", "XMVRSystem", "DocumentEditor"}
#: Expressions denoting "the system object" inside those classes.
_L1_SYSTEM = {("self",), ("system",), ("self", "system")}
#: Expressions denoting "the encoded document".
_L1_DOCUMENT = {("document",)} | {base + ("document",) for base in _L1_SYSTEM}
#: System attributes whose (re)assignment is answering-state mutation.
_L1_STATE_ATTRS = {"_views", "_materialized", "vfilter", "fragments"}
#: Document attributes whose reassignment stales every plan.
_L1_DOCUMENT_ATTRS = {"schema", "fst"}
#: Mutating methods, keyed by the attribute they are reached through.
_L1_FRAGMENT_METHODS = {"materialize", "materialize_encoded", "drop"}
_L1_VFILTER_METHODS = {"add_view", "add_views"}
_L1_LIST_METHODS = {"append", "remove", "clear", "extend", "pop", "insert"}
_L1_DOCUMENT_METHODS = {"invalidate"}
#: Tree-surgery calls that mutate the base document on any receiver.
_L1_ANY_RECEIVER_METHODS = {"detach", "add_child"}
#: The call every mutation must be followed by (plus, transitively,
#: same-class methods proven to always perform it).
_L1_SEED = "_invalidate_plans"
_L1_EXEMPT = {"__init__", _L1_SEED}


def _l1_is_mutation(node: ast.AST, fresh: frozenset[str]) -> bool:
    """Does this single AST node write view/fragment/document state?

    Writes and calls whose receiver chain is rooted in a *fresh* local
    (see :func:`repro.analysis.dataflow.fresh_locals`) are exempt: an
    object constructed inside the function has an empty plan cache, so
    mutating it cannot stale anything that predates the call.
    """
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        probe = target
        if isinstance(probe, ast.Subscript):
            probe = probe.value
        if isinstance(probe, ast.Attribute):
            base = _attr_chain(probe.value)
            if base is not None and base[0] in fresh:
                continue
            if base in _L1_SYSTEM and probe.attr in _L1_STATE_ATTRS:
                return True
            if base in _L1_DOCUMENT and probe.attr in _L1_DOCUMENT_ATTRS:
                return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        method = node.func.attr
        receiver = node.func.value
        chain = _attr_chain(receiver)
        if chain is not None and chain[0] in fresh:
            return False
        if method in _L1_ANY_RECEIVER_METHODS:
            return True
        if chain is not None:
            if method in _L1_DOCUMENT_METHODS and chain in _L1_DOCUMENT:
                return True
            if len(chain) >= 2 and chain[:-1] in _L1_SYSTEM:
                holder = chain[-1]
                if holder == "fragments" and method in _L1_FRAGMENT_METHODS:
                    return True
                if holder == "vfilter" and method in _L1_VFILTER_METHODS:
                    return True
                if holder == "_materialized" and method in _L1_LIST_METHODS:
                    return True
    return False


def _l1_mutations(function: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.AST]:
    fresh = frozenset(fresh_locals(function))
    return [
        node for node in _own_nodes(function) if _l1_is_mutation(node, fresh)
    ]


def _l1_calls_guaranteed(node: ast.AST, guaranteed: set[str]) -> bool:
    """Does the expression (sub)tree call a guaranteed-invalidating
    method on the system object?"""
    for probe in ast.walk(node):
        if isinstance(probe, ast.Call) and isinstance(
            probe.func, ast.Attribute
        ):
            if probe.func.attr in guaranteed:
                chain = _attr_chain(probe.func.value)
                if chain in _L1_SYSTEM or chain == ("cls",):
                    return True
    return False


def _l1_eager_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """Expressions a statement evaluates unconditionally (before any
    branching or early exit it introduces)."""
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assert):
        return [stmt.test]
    return []


def _l1_scan(
    stmts: list[ast.stmt], called: bool, guaranteed: set[str]
) -> tuple[bool, bool, bool]:
    """Abstract interpretation of a statement block.

    Returns ``(falls_through, called_at_end, bad_exit)`` where
    ``bad_exit`` means some path ``return``s without the invalidation
    call having happened.  ``raise`` is an exempt exit (a failing
    operation is allowed to leave plans dropped or not — callers see
    the exception).  Loops are assumed to run zero times, ``try`` is
    handled conservatively: neither ever *establishes* the call, but
    exits inside them are still checked.
    """
    bad = False
    for stmt in stmts:
        for expr in _l1_eager_exprs(stmt):
            if _l1_calls_guaranteed(expr, guaranteed):
                called = True
        if isinstance(stmt, ast.Return):
            ok = called or (
                stmt.value is not None
                and _l1_calls_guaranteed(stmt.value, guaranteed)
            )
            return False, called, bad or not ok
        if isinstance(stmt, ast.Raise):
            return False, called, bad
        if isinstance(stmt, ast.If):
            body_ft, body_called, body_bad = _l1_scan(
                stmt.body, called, guaranteed
            )
            else_ft, else_called, else_bad = _l1_scan(
                stmt.orelse, called, guaranteed
            )
            bad = bad or body_bad or else_bad
            if not body_ft and not else_ft:
                return False, called, bad
            falling = [
                flag
                for through, flag in (
                    (body_ft, body_called),
                    (else_ft, else_called),
                )
                if through
            ]
            called = bool(falling) and all(falling)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            _, _, body_bad = _l1_scan(stmt.body, called, guaranteed)
            _, _, else_bad = _l1_scan(stmt.orelse, called, guaranteed)
            bad = bad or body_bad or else_bad
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            with_ft, with_called, with_bad = _l1_scan(
                stmt.body, called, guaranteed
            )
            bad = bad or with_bad
            if not with_ft:
                return False, called, bad
            called = with_called
        elif isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            _, _, body_bad = _l1_scan(stmt.body, called, guaranteed)
            bad = bad or body_bad
            for handler in stmt.handlers:
                _, _, handler_bad = _l1_scan(handler.body, called, guaranteed)
                bad = bad or handler_bad
            _, _, else_bad = _l1_scan(stmt.orelse, called, guaranteed)
            bad = bad or else_bad
            final_ft, final_called, final_bad = _l1_scan(
                stmt.finalbody, called, guaranteed
            )
            bad = bad or final_bad
            if not final_ft:
                return False, called, bad
            called = final_called
    return True, called, bad


def _l1_guarantee_set(classdef: ast.ClassDef) -> set[str]:
    """Fixpoint: same-class methods that perform the invalidation call
    on every normal exit path (so calling them counts as calling it)."""
    methods = {
        member.name: member
        for member in classdef.body
        if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    guaranteed = {_L1_SEED}
    changed = True
    while changed:
        changed = False
        for name, function in methods.items():
            if name in guaranteed:
                continue
            falls_through, called, bad = _l1_scan(
                function.body, False, guaranteed
            )
            if not bad and (not falls_through or called):
                guaranteed.add(name)
                changed = True
    return guaranteed


@register
class InvalidatePlansRule(Rule):
    """L1: state-writing system/maintenance methods must invalidate the
    plan cache on every exit path (PR 1's total-invalidation contract)."""

    rule_id = "L1"
    summary = (
        "methods of the answering system or document editor that write "
        "view/fragment/document state must call _invalidate_plans() on "
        "every normal exit path"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in context.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in _L1_CLASSES:
                continue
            guaranteed = _l1_guarantee_set(node)
            for member in node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if member.name in _L1_EXEMPT:
                    continue
                mutations = _l1_mutations(member)
                if not mutations:
                    continue
                if member.name in guaranteed:
                    continue
                falls_through, called, bad = _l1_scan(
                    member.body, False, guaranteed
                )
                if bad or (falls_through and not called):
                    first = min(
                        getattr(m, "lineno", member.lineno)
                        for m in mutations
                    )
                    yield self.violation(
                        context,
                        member,
                        f"{node.name}.{member.name} mutates answering "
                        f"state (first write at line {first}) but does "
                        "not call _invalidate_plans() on every exit "
                        "path",
                    )


# ======================================================================
# L2 — interned patterns are frozen after construction
# ======================================================================
#: Pattern-slot names unambiguous to PatternNode/TreePattern/PathPattern
#: (``label``/``parent``/``children`` are shared with XMLNode and would
#: flood the rule with false positives).
_L2_FROZEN_ATTRS = {"axis", "constraints", "ret", "steps"}
#: Construction modules allowed to write pattern slots.
_L2_ALLOWED_FILES = {"builder.py", "parser.py", "normalize.py", "pattern.py"}


@register
class FrozenPatternRule(Rule):
    """L2: no pattern-slot assignment outside the construction modules
    — CoverageMemo and the plan cache key on canonical strings and
    node identity of *interned* patterns."""

    rule_id = "L2"
    summary = (
        "PatternNode/TreePattern/PathPattern slots may only be assigned "
        "in xpath/{builder,parser,normalize,pattern}.py"
    )

    def applies_to(self, context: FileContext) -> bool:
        parts = context.parts
        return not (
            len(parts) >= 2
            and parts[-2] == "xpath"
            and parts[-1] in _L2_ALLOWED_FILES
        )

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _L2_FROZEN_ATTRS
                ):
                    yield self.violation(
                        context,
                        node,
                        f"assignment to pattern slot .{target.attr} "
                        "outside the construction modules; interned "
                        "patterns are frozen after construction",
                    )


# ======================================================================
# L3 — id()-keyed collections must not escape their strong reference
# ======================================================================
def _l3_id_keyed_construct(value: ast.AST) -> ast.AST | None:
    """A dict/set construction using ``id(...)`` in key position, if
    one occurs anywhere inside ``value``."""
    for probe in ast.walk(value):
        if isinstance(probe, ast.DictComp) and _contains_id_call(probe.key):
            return probe
        if isinstance(probe, ast.Dict) and any(
            key is not None and _contains_id_call(key) for key in probe.keys
        ):
            return probe
        if isinstance(probe, ast.SetComp) and _contains_id_call(probe.elt):
            return probe
        if isinstance(probe, ast.Set) and any(
            _contains_id_call(elt) for elt in probe.elts
        ):
            return probe
    return None


def _l3_class_retains(classdef: ast.ClassDef) -> bool:
    """The strong-reference convention: a class keeping the keyed
    objects alive declares a ``pattern`` slot/attribute or one ending
    in ``_refs`` (cf. ``leaf_cover._QueryMemo``)."""

    def retaining_name(name: str) -> bool:
        return name == "pattern" or name.endswith("_refs")

    for node in ast.walk(classdef):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    for probe in ast.walk(node.value):
                        if isinstance(probe, ast.Constant) and isinstance(
                            probe.value, str
                        ):
                            if retaining_name(probe.value):
                                return True
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and retaining_name(target.attr)
                ):
                    return True
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if retaining_name(node.target.id):
                return True
    return False


@register
class IdKeyEscapeRule(Rule):
    """L3: id()-keyed dicts/sets stored on ``self`` or returned from
    public functions dangle once the keyed objects are collected —
    unless the owning class retains a strong reference (the
    ``CoverageMemo``/``_QueryMemo`` pattern)."""

    rule_id = "L3"
    summary = (
        "id()-keyed dict/set stored on self or returned across a module "
        "boundary without a retained strong reference to the keyed "
        "objects"
    )

    def check(self, context: FileContext) -> Iterator[Violation]:
        retains: dict[str, bool] = {}
        for node in context.tree.body:
            if isinstance(node, ast.ClassDef):
                retains[node.name] = _l3_class_retains(node)
        for classdef, function in _function_defs(context.tree):
            class_retains = (
                retains.get(classdef.name, False) if classdef else False
            )
            public = not function.name.startswith("_")
            for node in _own_nodes(function):
                if isinstance(node, ast.Return) and node.value is not None:
                    if public and _l3_id_keyed_construct(node.value):
                        yield self.violation(
                            context,
                            node,
                            f"public function {function.name} returns an "
                            "id()-keyed collection; identity keys are "
                            "meaningless once the keyed objects are "
                            "garbage-collected",
                        )
                targets: list[ast.expr] = []
                value: ast.AST | None = None
                if isinstance(node, ast.Assign):
                    targets, value = list(node.targets), node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                for target in targets:
                    store = target
                    subscript_key: ast.AST | None = None
                    if isinstance(store, ast.Subscript):
                        subscript_key = store.slice
                        store = store.value
                    if not (
                        isinstance(store, ast.Attribute)
                        and isinstance(store.value, ast.Name)
                        and store.value.id == "self"
                    ):
                        continue
                    if class_retains:
                        continue
                    keyed = value is not None and _l3_id_keyed_construct(value)
                    by_subscript = (
                        subscript_key is not None
                        and _contains_id_call(subscript_key)
                    )
                    if keyed or by_subscript:
                        yield self.violation(
                            context,
                            node,
                            f"id()-keyed collection stored on "
                            f"self.{store.attr} without a retained "
                            "strong reference (declare a 'pattern' "
                            "slot/attribute or one ending in '_refs')",
                        )


# ======================================================================
# L4 — no wall clock / randomness in core/
# ======================================================================
_L4_BANNED_CALLS = {
    ("time", "time"),
    ("time", "clock"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
}
_L4_BANNED_FROM_TIME = frozenset(name for _, name in _L4_BANNED_CALLS)
_L4_NOW_NAMES = {"now", "utcnow", "today"}


@register
class WallClockRule(Rule):
    """L4: ``core/`` stays deterministic and benchmark-honest — no
    ``time.time()``, no ``random``, no ``datetime.now()`` outside
    ``bench/``.  Since the telemetry subsystem landed, the monotonic
    timers (``time.perf_counter``, ``time.monotonic`` and their ``_ns``
    variants) are banned too: core code measures time only through the
    injected :class:`repro.obs.Clock` (``self._clock.monotonic()``),
    so tests can substitute a manual clock and every reading lands in
    the shared metrics registry."""

    rule_id = "L4"
    summary = (
        "no time.*/random/datetime.now() in core/ outside bench/; "
        "the injected obs.Clock is the only sanctioned time source"
    )

    def applies_to(self, context: FileContext) -> bool:
        parts = context.parts
        return "core" in parts and "bench" not in parts

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.violation(
                            context, node, "import of random in core/"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        context, node, "import from random in core/"
                    )
                elif node.module == "time" and any(
                    alias.name in _L4_BANNED_FROM_TIME
                    for alias in node.names
                ):
                    yield self.violation(
                        context,
                        node,
                        "import of a time.* clock in core/ (use the "
                        "injected obs.Clock)",
                    )
            elif isinstance(node, ast.Call):
                chain = (
                    _attr_chain(node.func)
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if chain is None:
                    continue
                if chain in _L4_BANNED_CALLS:
                    yield self.violation(
                        context,
                        node,
                        f"wall-clock call {'.'.join(chain)}() in core/",
                    )
                elif (
                    chain[-1] in _L4_NOW_NAMES
                    and chain[0] in ("datetime", "date")
                ):
                    yield self.violation(
                        context,
                        node,
                        f"wall-clock call {'.'.join(chain)}() in core/",
                    )


# ======================================================================
# L5 — public API annotation coverage
# ======================================================================
_L5_DIRS = {"core", "xpath", "storage", "analysis", "service"}


def _l5_is_procedure(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function provably returns nothing: no ``return``
    with a value, no ``yield`` — the ``--fix`` criterion."""
    for node in _own_nodes(function):
        if isinstance(node, ast.Return) and node.value is not None:
            return False
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return False
    return True


@register
class PublicAnnotationsRule(Rule):
    """L5: every public function in core/, xpath/, storage/ (and
    analysis/ itself) carries complete type annotations — the strict
    typing gate's precondition."""

    rule_id = "L5"
    summary = (
        "public functions in core/xpath/storage/analysis need parameter "
        "and return annotations"
    )

    def applies_to(self, context: FileContext) -> bool:
        return bool(_L5_DIRS & set(context.parts))

    def check(self, context: FileContext) -> Iterator[Violation]:
        for classdef, function in _function_defs(context.tree):
            if function.name.startswith("_"):
                continue
            if any(
                isinstance(dec, ast.Name) and dec.id == "overload"
                for dec in function.decorator_list
            ):
                continue
            arguments = function.args
            ordered = arguments.posonlyargs + arguments.args
            skip_first = classdef is not None and not any(
                isinstance(dec, ast.Name) and dec.id == "staticmethod"
                for dec in function.decorator_list
            )
            if skip_first and ordered and ordered[0].arg in ("self", "cls"):
                ordered = ordered[1:]
            missing = [
                arg.arg
                for arg in (
                    ordered
                    + arguments.kwonlyargs
                    + ([arguments.vararg] if arguments.vararg else [])
                    + ([arguments.kwarg] if arguments.kwarg else [])
                )
                if arg.annotation is None
            ]
            owner = f"{classdef.name}." if classdef else ""
            if missing:
                yield self.violation(
                    context,
                    function,
                    f"public function {owner}{function.name} is missing "
                    f"annotations for parameter(s): {', '.join(missing)}",
                )
            if function.returns is None:
                yield self.violation(
                    context,
                    function,
                    f"public function {owner}{function.name} is missing "
                    "a return annotation",
                    fix=(
                        FIX_RETURN_NONE
                        if _l5_is_procedure(function)
                        else None
                    ),
                )


# ======================================================================
# L6 — interprocedural invalidation (whole-program L1)
# ======================================================================
@register
class InterproceduralInvalidateRule(ProjectRule):
    """L6: a state mutation *anywhere in the call graph* of a public
    system/editor/maintenance entry point must be covered by a call
    path that guarantees ``_invalidate_plans()`` — the interprocedural
    generalization of L1, which only sees same-class helpers."""

    rule_id = "L6"
    summary = (
        "public entry points of the answering system, document editor "
        "or maintenance modules whose call graph mutates answering "
        "state must guarantee _invalidate_plans() on every normal exit"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        facts = pctx.facts
        for fqname, function in facts.entry_points():
            if fqname not in facts.mutates_answering:
                continue
            if fqname in facts.guaranteed:
                continue
            path = facts.mutation_witness(fqname)
            via = f" (via {' -> '.join(path)})" if path else ""
            owner = (
                f"{function.classname}." if function.classname else ""
            )
            relpath, lineno = pctx.location_of(fqname)
            yield Violation(
                rule=self.rule_id,
                path=relpath,
                line=lineno,
                column=0,
                message=(
                    f"{owner}{function.name} mutates answering state"
                    f"{via} but no call path guarantees "
                    "_invalidate_plans() on every normal exit"
                ),
            )


# ======================================================================
# L7 — exception safety of mutation windows
# ======================================================================
@register
class ExceptionSafetyRule(ProjectRule):
    """L7: between the first answering-state write of an entry point
    and its ``_invalidate_plans()``, no possibly-raising call may
    execute — an escaping exception would leave the plan cache serving
    plans derived from state that no longer exists."""

    rule_id = "L7"
    summary = (
        "no possibly-raising call between an answering-state mutation "
        "and _invalidate_plans(); the error path must not leave a "
        "stale plan cache"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        facts = pctx.facts
        for fqname, function in facts.entry_points():
            owner = (
                f"{function.classname}." if function.classname else ""
            )
            relpath, _ = pctx.location_of(fqname)
            for window in facts.windows(fqname):
                yield Violation(
                    rule=self.rule_id,
                    path=relpath,
                    line=window.lineno,
                    column=0,
                    message=(
                        f"{owner}{function.name}: {window.reason} "
                        "(stale plan cache on the error path)"
                    ),
                )


# ======================================================================
# L8 — purity of cache inputs
# ======================================================================
#: Attribute names holding the plan cache / coverage memo.
_L8_CACHE_HOLDERS = {"_plan_cache", "plan_cache"}
_L8_MEMO_HOLDERS = {"_memo", "memo"}


def _l8_key_positions(call: CallRef) -> tuple[int, ...]:
    """Positional arguments of this call that become cache keys (or
    interned cache entries), per the PlanCache / CoverageMemo APIs."""
    if len(call.chain) < 2:
        return ()
    holder = call.chain[-2]
    if holder in _L8_CACHE_HOLDERS and call.name in ("get", "put"):
        return (0,)
    if holder in _L8_MEMO_HOLDERS:
        if call.name == "intern":
            return (0,)
        if call.name == "units":
            return (1,)
        if call.name == "evict_views":
            # Carry-over eviction: the view-id set selects which cached
            # entries survive an epoch; an impure producer would evict
            # the wrong views (or keep stale ones).
            return (0,)
    return ()


@register
class CacheKeyPurityRule(ProjectRule):
    """L8: whatever produces a plan-cache key or CoverageMemo entry
    must be inferred pure or reads-state — an impure producer (I/O,
    mutation, wall clock) makes the key nondeterministic, so equal
    queries stop hitting equal entries (generalizing L4)."""

    rule_id = "L8"
    summary = (
        "values flowing into plancache keys or CoverageMemo entries "
        "must come from pure/reads-state producers (no I/O, no "
        "mutation, no wall clock)"
    )

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        facts = pctx.facts
        project = pctx.project
        for fqname, function in project.iter_functions():
            module = project.module_of.get(fqname, "")
            imports = project.imports_of.get(module, {})
            relpath = pctx.relpath_by_module.get(module, module)
            # name -> producing callee chain; ambiguous rebinds drop out.
            binds: dict[str, tuple[str, ...] | None] = {}
            for step in function.iter_steps():
                for name, chain in step.binds:
                    binds[name] = (
                        chain if binds.get(name, chain) == chain else None
                    )
            for step in function.iter_steps():
                for call in step.calls:
                    for position in _l8_key_positions(call):
                        if position >= len(call.arg_chains):
                            continue
                        argument = call.arg_chains[position]
                        if argument is None:
                            continue
                        if argument[0] == "<call>":
                            producer = argument[1:]
                        elif len(argument) == 1:
                            producer = binds.get(argument[0]) or ()
                        else:
                            producer = ()
                        if not producer:
                            continue
                        probe = CallRef(chain=producer, lineno=call.lineno)
                        callee = project.resolve(fqname, probe)
                        if callee is not None:
                            effect = facts.effect_of(callee)
                            if effect.cache_safe:
                                continue
                            detail = classify(effect)
                        elif _call_io(probe, imports) or _call_clock(
                            probe, imports
                        ):
                            detail = "I/O or wall clock"
                        else:
                            continue
                        yield Violation(
                            rule=self.rule_id,
                            path=relpath,
                            line=call.lineno,
                            column=0,
                            message=(
                                f"cache input for "
                                f"{'.'.join(call.chain)}() is produced "
                                f"by '{'.'.join(producer)}()' which is "
                                f"{detail}; cache inputs must be pure "
                                "or reads-state"
                            ),
                        )


# ======================================================================
# L9 — import layering DAG
# ======================================================================
_L9_DAG = (
    "errors -> obs -> xmltree -> xpath -> matching -> storage -> "
    "core -> {analysis, workload} -> {bench, service}"
)


@register
class ImportLayeringRule(ProjectRule):
    """L9: imports must follow the layer DAG — no upward imports, no
    imports between same-rank layers.  The application shell (``cli``,
    ``__main__``) wires everything together and is exempt."""

    rule_id = "L9"
    summary = f"imports must follow the layer DAG {_L9_DAG}"

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        roots = {
            summary.module.split(".")[0]
            for summary in pctx.project.files.values()
            if summary.module
        }
        for relpath in sorted(pctx.project.files):
            summary = pctx.project.files[relpath]
            source = layer_of(summary.module)
            if source is None:
                continue
            for record in summary.imports:
                segments = record.target.split(".")
                internal = segments[0] in roots or any(
                    segment in LAYER_RANKS for segment in segments
                )
                if not internal:
                    continue
                target = layer_of(record.target)
                if target is None:
                    continue
                upward = target[1] > source[1]
                sideways = target[1] == source[1] and target[0] != source[0]
                if upward or sideways:
                    yield Violation(
                        rule=self.rule_id,
                        path=relpath,
                        line=record.lineno,
                        column=0,
                        message=(
                            f"layer '{source[0]}' imports "
                            f"{'higher' if upward else 'same-rank'} "
                            f"layer '{target[0]}' ({record.target}); "
                            f"the layer DAG is {_L9_DAG}"
                        ),
                    )


# ======================================================================
# L10–L14 — concurrency rules (lock discipline, DESIGN.md §13)
# ======================================================================
class _ConcurrencyRule(ProjectRule):
    """Shared shape of the five concurrency rules: each wraps one
    finding list of the :class:`ConcurrencyFacts` computed lazily on
    the project context."""

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        raise NotImplementedError

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        for relpath, lineno, message in self.findings(pctx):
            yield Violation(
                rule=self.rule_id,
                path=relpath,
                line=lineno,
                column=0,
                message=message,
            )


@register
class LockSetRule(_ConcurrencyRule):
    """L10: every access to a field annotated ``#: guarded-by: <lock>``
    must happen with that lock held — statically, via the entry-lock
    fixpoint (the intersection of locks held at every call site), so a
    helper only ever called under the lock needs no annotation of its
    own.  ``(writes)`` mode exempts reads (monotonic-publish fields)."""

    rule_id = "L10"
    summary = (
        "reads/writes of `#: guarded-by:` fields must hold the named "
        "lock (lock-set race detection over the call graph)"
    )
    description = (
        "Eraser/RacerD-style lock-set checking: a field annotated "
        "`#: guarded-by: <lock>` may only be accessed while its class's "
        "<lock> is held, either by an enclosing `with`, or at every "
        "call site of the enclosing function (greatest-fixpoint entry "
        "locks). `__init__` is exempt (the object is unpublished)."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.concurrency.lockset_violations()


@register
class LockOrderRule(_ConcurrencyRule):
    """L11: the global acquires-while-holding graph must be acyclic,
    and a held non-reentrant lock must never be re-acquired (that is
    not deadlock *potential*, it is deadlock)."""

    rule_id = "L11"
    summary = (
        "the lock acquisition-order graph must be acyclic and no held "
        "non-reentrant lock may be re-acquired"
    )
    description = (
        "Builds edges A -> B whenever some program point acquires lock "
        "B while holding A, directly or through a resolved call that "
        "transitively acquires B. A cycle means two threads can "
        "acquire the locks in opposite orders and deadlock; "
        "re-acquiring a held Lock/Condition self-deadlocks "
        "immediately (RLocks are reentrant and exempt)."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.concurrency.order_violations()


@register
class EpochPinningRule(_ConcurrencyRule):
    """L12: a function serving a request must read a ``pin-once``
    field (``self._epoch``) exactly once and thread the snapshot
    through — a second unlocked read may observe a different epoch and
    mix plans across registry generations."""

    rule_id = "L12"
    summary = (
        "`pin-once` snapshot fields must be read at most once per "
        "function (and never inside a loop) unless the writer lock is "
        "held"
    )
    description = (
        "Epoch-pinning discipline: fields annotated `#: guarded-by: "
        "<lock> (writes, pin-once)` are published atomically by "
        "mutators and read lock-free by request paths. Reading the "
        "field twice in one function (or once inside a loop) can "
        "observe two different epochs and produce answers mixing "
        "generations; reads under the writer lock are exempt "
        "(compare-and-publish)."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.concurrency.pin_violations()


@register
class SnapshotImmutabilityRule(_ConcurrencyRule):
    """L13: published snapshots are deeply immutable — the epoch class
    stays a frozen dataclass, and nothing mutates state reachable from
    a published epoch (its internally-synchronized plan cache is the
    one deliberate exception)."""

    rule_id = "L13"
    summary = (
        "published registry epochs must stay frozen and never be "
        "mutated through (swap a fresh epoch instead)"
    )
    description = (
        "Readers pin an epoch and use it without locks; that is only "
        "sound if nothing mutates the snapshot after publication. The "
        "rule checks RegistryEpoch remains a frozen dataclass, flags "
        "writes and mutator calls through `self._epoch` / a pinned "
        "`epoch` local (rebinding `self._epoch` itself is the publish "
        "and is allowed), and flags VFILTER mutation on receivers "
        "that are not freshly constructed."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.concurrency.snapshot_violations()


@register
class BlockingUnderLockRule(_ConcurrencyRule):
    """L14: no unbounded blocking — I/O, sleeps, queue waits, thread
    joins, lock acquisition — while holding a core lock, unless the
    lock is annotated ``#: lock: blocking-allowed``.  Uses the
    ``blocks`` rung of the effect lattice for resolved callees."""

    rule_id = "L14"
    summary = (
        "no blocking call (I/O, sleep, queue wait, join, acquire) "
        "while holding a lock not annotated blocking-allowed"
    )
    description = (
        "A blocking call under a contended lock stalls every thread "
        "that needs it; under the stats or index locks that means the "
        "whole answer path. Resolved callees use the interprocedural "
        "`blocks` effect; unresolved calls use name heuristics. "
        "`Condition.wait` on a held condition is the gate pattern "
        "(the wait releases the lock) and is exempt, as are locks "
        "annotated `#: lock: blocking-allowed`."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.concurrency.blocking_violations(pctx.facts.effects)


# ======================================================================
# L15–L19 — derived-state ownership rules (derivation DAG, DESIGN.md §15)
# ======================================================================
class _StateRule(ProjectRule):
    """Shared shape of the five derived-state rules: each wraps one
    finding list of the :class:`StateFacts` computed lazily on the
    project context."""

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        raise NotImplementedError

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        for relpath, lineno, message in self.findings(pctx):
            yield Violation(
                rule=self.rule_id,
                path=relpath,
                line=lineno,
                column=0,
                message=message,
            )


@register
class InvalidationCompletenessRule(_StateRule):
    """L15: rule L1 generalized to the whole derivation DAG — any
    interprocedural write reaching a ``derived-from`` source must, on
    every non-raising exit path of every public entry point,
    invalidate or patch every strict dependent of that source."""

    rule_id = "L15"
    summary = (
        "every write reaching a `derived-from` source must invalidate "
        "or patch all strict dependents on every non-raising exit path"
    )
    description = (
        "Per strict edge of the `#: state:` derivation DAG, an "
        "abstract interpretation over the whole-program IR tracks "
        "(patched, dirty) per control path with L1's monotone-patch "
        "semantics: one invalidation of the dependent anywhere in the "
        "call covers every source mutation of that call. Writes are "
        "resolved through aliases (self.system._node_index, a bare "
        "`document` local, container-mutator calls, document surgery); "
        "resolved callees contribute summarized facts via a fixpoint. "
        "Raising exits are exempt (L7 owns exception windows); weak "
        "`derived-from=field?` edges are exempt (refreshed by epoch "
        "swap or explicit eviction) but still drawn in --graph."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.statedeps.invalidation_violations()


@register
class DerivationShapeRule(_StateRule):
    """L16: the derivation DAG must actually be a DAG over soft state —
    acyclic, with hard state and counters never derived, counters
    never sources, and every declared source resolvable."""

    rule_id = "L16"
    summary = (
        "derivation must be acyclic; hard state and counters may not "
        "declare derived-from; counters may not be sources"
    )
    description = (
        "Hard state is the authoritative copy: deriving it from soft "
        "state would let a cache rebuild corrupt ground truth, so "
        "`#: state: hard` with derived-from is rejected outright "
        "(which also makes soft->hard edges inexpressible). A cycle "
        "means no rebuild order exists. Counters are telemetry and "
        "participate in neither direction. Unresolvable derived-from "
        "spellings are errors, not warnings: a dangling source would "
        "silently exempt the field from L15."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.statedeps.graph_violations()


@register
class RebuildPathRule(_StateRule):
    """L17: soft state must be rebuildable in practice, not just in
    principle — every soft field names a rebuild function that exists
    and is reachable from the public API or a lifecycle method."""

    rule_id = "L17"
    summary = (
        "every soft field must name a rebuild function that resolves "
        "and is reachable from a public or lifecycle entry point"
    )
    description = (
        "`soft(...; rebuild=<fn>)` is the recovery contract: after "
        "invalidation (or a crash, once the WAL lands) the field must "
        "be recomputable from its derivation sources. The rule "
        "resolves the name (same class, unique method, module-level "
        "function) and checks reachability over the call graph from "
        "public functions and lifecycle methods. `rebuild=__init__` "
        "declares rebuild-by-reconstruction (the index classes) and "
        "is always accepted."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.statedeps.rebuild_violations()


@register
class HardWriteScopeRule(_StateRule):
    """L18: hard state is written only inside lifecycle methods or
    code reachable from a ``#: state: mutator`` entry point — the
    registration/maintenance surface WAL logging will later hook."""

    rule_id = "L18"
    summary = (
        "hard fields may only be mutated in lifecycle methods or code "
        "reachable from a `#: state: mutator` entry point"
    )
    description = (
        "Durability needs a single chokepoint: if every hard-state "
        "write happens under a declared mutator entry point "
        "(register_view, insert_subtree, KVStore maintenance), WAL "
        "logging and delta maintenance can attach there and miss "
        "nothing. The rule collects every function that directly "
        "mutates a hard token (including through aliases and "
        "container-mutator calls) and requires it to be a lifecycle "
        "method or reachable from a mutator over the call graph."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.statedeps.scope_violations()


@register
class StateCoverageRule(_StateRule):
    """L19: a class that declares any state annotation must declare
    them all — an unannotated mutable attribute on a stateful class is
    invisible to the DAG and can go stale unchecked."""

    rule_id = "L19"
    summary = (
        "classes declaring `#: state:` fields must annotate every "
        "mutable instance attribute (locks exempt)"
    )
    description = (
        "The DAG is only as complete as its annotations. On any "
        "non-frozen class with at least one `#: state:` field, every "
        "plain `self.<attr> = ...` assignment site must belong to an "
        "annotated state field or a detected lock attribute; anything "
        "else is flagged so new caches cannot be added without "
        "declaring their derivation."
    )

    def findings(self, pctx: ProjectContext) -> list[tuple[str, int, str]]:
        return pctx.statedeps.coverage_violations()
