"""Effect inference and interprocedural invalidation analysis.

Three fixpoints over the project call graph, all solved with the
generic engine in :mod:`repro.analysis.dataflow`:

* **Effects** — every function gets an :class:`Effect` record
  (mutates / reads / io / clock / raises), the lattice behind rule L8
  and the pure / reads-state / mutates-state classification.  Direct
  effects come from the function's own IR (attribute writes, table
  hits for I/O and wall-clock calls); callee effects propagate along
  resolved call edges.  Two deliberate carve-outs keep memoization
  pure: writes to attributes that are clearly caches (``_cache``,
  ``_memo``, hit/miss counters) do not count as mutation, and neither
  do writes through *fresh* receivers (objects constructed inside the
  function).  Constructor calls never propagate ``mutates`` — a
  ``__init__`` mutating its own brand-new ``self`` is invisible to the
  caller's state.
* **Invalidation guarantees** — the set of functions proven to call
  ``_invalidate_plans()`` on every normal exit path, the
  interprocedural generalization of rule L1 that powers L6.  A call
  establishes the guarantee when its receiver denotes the caller's own
  system (``self`` / ``self.system`` / a ``system`` local) and the
  callee is itself guaranteed.
* **Answering-state mutation** — which functions (transitively) write
  the state the plan cache depends on.  Tree-surgery calls
  (``detach`` / ``add_child``) count only inside the watched classes
  and ``core``-layer modules: the same calls in ``xmltree`` / ``xpath``
  construct *fresh* trees and cannot stale a cache.

On top of those, :class:`WindowScanner` finds **mutate-then-raise
windows** for rule L7: program points where answering state has been
written, ``_invalidate_plans()`` has not yet run, and an exception can
escape — leaving a stale plan cache on the error path.  The key
semantic fact (from DESIGN.md §10): the plan cache only refills via
``answer()``, so *invalidated* is monotone within an entry-point call —
one ``_invalidate_plans()`` anywhere covers every mutation of that
call, before or after it.  The scanner therefore tracks the pair
(may-have-mutated, must-have-invalidated) and reports escapes where
the first holds and the second does not.  ``try`` blocks with handlers
are assumed to catch (the handler body is scanned instead), and a
``finally`` that invalidates protects every escape through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from .callgraph import Project, layer_of
from .dataflow import (
    INVALIDATE_SEED,
    STATE_CLASSES as _WATCHED_CLASSES,
    CallRef,
    FunctionSummary,
    Step,
    scan_guarantee,
    solve_fixpoint,
    state_call,
    state_writes,
)

__all__ = [
    "Effect",
    "classify",
    "ProgramFacts",
    "Window",
    "analyze",
]


# ======================================================================
# effect lattice
# ======================================================================
@dataclass(frozen=True, slots=True)
class Effect:
    """One function's inferred effects; join is pointwise or.

    ``blocks`` marks functions that may block the calling thread for an
    unbounded time (I/O, sleeps, queue waits, thread joins, explicit
    ``acquire``).  ``Condition.wait`` is deliberately *not* folded in:
    a gate helper that waits on its own condition releases the lock
    while parked, so it must not poison every caller — rule L14 checks
    direct ``wait`` sites against the held set instead.
    """

    mutates: bool = False
    reads: bool = False
    io: bool = False
    clock: bool = False
    raises: bool = False
    blocks: bool = False

    def join(self, other: "Effect") -> "Effect":
        return Effect(
            mutates=self.mutates or other.mutates,
            reads=self.reads or other.reads,
            io=self.io or other.io,
            clock=self.clock or other.clock,
            raises=self.raises or other.raises,
            blocks=self.blocks or other.blocks,
        )

    @property
    def cache_safe(self) -> bool:
        """Safe to feed into a cache key: deterministic and effect-free
        (reading state is fine — that state is the function's input)."""
        return not (self.mutates or self.io or self.clock)


def classify(effect: Effect) -> str:
    """The three-rung lattice of DESIGN.md §10: pure < reads-state <
    mutates-state (io / clock imply mutates-state for classification —
    they touch the world)."""
    if effect.mutates or effect.io or effect.clock:
        return "mutates-state"
    if effect.reads:
        return "reads-state"
    return "pure"


#: Builtin calls that perform I/O.
IO_CALL_NAMES = {"open", "print", "input"}
#: Modules any call into which counts as I/O (or reads the process
#: environment, which is just as nondeterministic).
IO_ROOTS = {"os", "sys", "shutil", "subprocess", "socket", "tempfile"}
#: Method names that perform I/O on unresolved (file-like) receivers.
IO_METHODS = {
    "write", "writelines", "read", "readline", "readlines", "flush",
    "fsync", "seek", "truncate", "unlink", "rename", "replace", "touch",
    "read_text", "write_text", "read_bytes", "write_bytes",
}
#: Wall-clock / entropy sources, by module root and callable name.
CLOCK_ROOTS = {"time", "datetime", "random"}
CLOCK_NAMES = {
    "time", "monotonic", "perf_counter", "process_time", "now", "utcnow",
    "today", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "getrandbits",
}
#: Container methods that mutate their receiver.
GENERIC_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "sort", "reverse",
}
#: Attribute-name markers for the memoization carve-out.
MEMO_MARKERS = ("cache", "memo", "hits", "misses", "stats")


def _is_memo_attr(attr: str) -> bool:
    lowered = attr.lower()
    return any(marker in lowered for marker in MEMO_MARKERS)


def _call_clock(call: CallRef, imports: dict[str, str]) -> bool:
    if call.receiver_fresh:
        # rng = random.Random(seed): a seeded generator is deliberate
        # determinism, not wall-clock.
        return False
    chain = call.chain
    if len(chain) > 1 and chain[0] in CLOCK_ROOTS and call.name in CLOCK_NAMES:
        return True
    if len(chain) == 1:
        target = imports.get(chain[0], "")
        return (
            target.split(".")[0] in CLOCK_ROOTS
            and call.name in CLOCK_NAMES
        )
    return False


def _call_io(call: CallRef, imports: dict[str, str]) -> bool:
    chain = call.chain
    if len(chain) == 1:
        if call.name in IO_CALL_NAMES:
            return True
        target = imports.get(chain[0], "")
        return target.split(".")[0] in IO_ROOTS
    if chain[0] in IO_ROOTS:
        return True
    return call.name in IO_METHODS and not call.receiver_fresh


def _call_blocking(call: CallRef, imports: dict[str, str]) -> bool:
    """May this call park the calling thread for an unbounded time?

    I/O is blocking; so are ``time.sleep``, blocking ``queue``
    get/put (the ``*_nowait`` variants are not), joining something
    that looks like a thread, and an explicit ``acquire``.  Receiver
    shape is the discriminator for the method families — ``list.get``
    does not exist, but ``dict.get`` does, so ``get``/``put`` only
    count when the receiver chain mentions a queue.
    """
    if _call_io(call, imports):
        return True
    chain = call.chain
    name = call.name
    if name == "sleep" and (
        (len(chain) > 1 and chain[0] == "time")
        or (len(chain) == 1 and imports.get("sleep", "").startswith("time"))
    ):
        return True
    if name == "acquire":
        return True
    receiver_text = "_".join(chain[:-1]).lower()
    if name == "join" and "thread" in receiver_text:
        return True
    if name in ("get", "put") and "queue" in receiver_text:
        return True
    return False


# ======================================================================
# whole-program facts
# ======================================================================
@dataclass(frozen=True, slots=True)
class Window:
    """One mutate-then-raise escape point (rule L7)."""

    lineno: int
    reason: str


@dataclass(slots=True)
class ProgramFacts:
    """Results of the whole-program analysis, consumed by rules L6-L8."""

    project: Project
    effects: dict[str, Effect] = field(default_factory=dict)
    guaranteed: frozenset[str] = frozenset()
    mutates_answering: frozenset[str] = frozenset()
    #: exception may escape carrying a *self-inflicted* stale cache
    rwd_clean: frozenset[str] = frozenset()
    #: entered with state already mutated: exception may escape before
    #: this function invalidates
    rwd_dirty: frozenset[str] = frozenset()

    def effect_of(self, fqname: str) -> Effect:
        return self.effects.get(fqname, Effect())

    def entry_points(self) -> list[tuple[str, FunctionSummary]]:
        """The functions held to the invalidation discipline: public
        methods of the watched classes plus public module-level
        functions of ``*.maintenance`` modules."""
        entries: list[tuple[str, FunctionSummary]] = []
        for fqname, function in self.project.iter_functions():
            if not function.is_public or "<locals>" in function.qualname:
                continue
            if function.classname is not None:
                if function.classname in _WATCHED_CLASSES:
                    entries.append((fqname, function))
            else:
                module = self.project.module_of.get(fqname, "")
                if module.split(".")[-1] == "maintenance":
                    entries.append((fqname, function))
        return entries

    def mutation_witness(self, fqname: str) -> list[str]:
        """A call path from ``fqname`` to a directly-mutating function,
        for diagnostics; empty when ``fqname`` mutates directly."""
        seen = {fqname}
        frontier: list[tuple[str, list[str]]] = [(fqname, [])]
        while frontier:
            current, path = frontier.pop(0)
            function = self.project.functions.get(current)
            if function is not None and _direct_mutation(
                self.project, current, function
            ):
                return path
            for call, callee in self.project.callees(current):
                if callee in seen or call.receiver_fresh:
                    continue
                if callee in self.mutates_answering:
                    seen.add(callee)
                    frontier.append(
                        (callee, path + [self.project.functions[callee].name])
                    )
        return []

    def windows(self, fqname: str) -> list[Window]:
        """Mutate-then-raise windows of one function (rule L7)."""
        scanner = WindowScanner(self)
        return scanner.scan_function(fqname, entry_mutated=False)


def _counts_any_receiver(project: Project, fqname: str) -> bool:
    """Do ``detach`` / ``add_child`` count as answering-state mutation
    in this function?  Only for the watched classes and the ``core``
    layer — the construction layers build fresh trees."""
    function = project.functions.get(fqname)
    if function is not None and function.classname in _WATCHED_CLASSES:
        return True
    module = project.module_of.get(fqname, "")
    layer = layer_of(module)
    return layer is not None and layer[0] == "core"


def _direct_mutation(
    project: Project, fqname: str, function: FunctionSummary
) -> bool:
    watched = _counts_any_receiver(project, fqname)
    for step in function.iter_steps():
        if state_writes(step):
            return True
        for call in step.calls:
            if state_call(call, allow_any_receiver=watched):
                return True
    return False


# ======================================================================
# fixpoint 1: effects
# ======================================================================
def _direct_effect(
    project: Project, fqname: str, function: FunctionSummary
) -> Effect:
    module = project.module_of.get(fqname, "")
    imports = project.imports_of.get(module, {})
    resolved = {call for call, _ in project.callees(fqname)}
    mutates = False
    io = False
    clock = False
    raises = False
    blocks = False
    for step in function.iter_steps():
        if step.kind == "raise":
            raises = True
        for write in step.writes:
            if write.fresh:
                continue
            if _is_memo_attr(write.attr):
                continue
            if write.global_write or len(write.chain) > 1 or write.subscript:
                mutates = True
        for call in step.calls:
            if call.chain == ("<dynamic>",):
                continue
            if _call_clock(call, imports):
                clock = True
            if _call_io(call, imports):
                io = True
            if call in resolved:
                # Resolved project calls contribute via the fixpoint;
                # name-based I/O / blocking heuristics would misfire on
                # project methods that happen to be called ``read``.
                continue
            if _call_blocking(call, imports):
                blocks = True
            if (
                len(call.chain) > 1
                and call.name in GENERIC_MUTATORS
                and not call.receiver_fresh
                and not _is_memo_attr(call.chain[-2])
            ):
                mutates = True
    return Effect(
        mutates=mutates,
        reads=function.reads_state,
        io=io,
        clock=clock,
        raises=raises or io,
        blocks=blocks,
    )


def _solve_effects(project: Project) -> dict[str, Effect]:
    direct = {
        fqname: _direct_effect(project, fqname, function)
        for fqname, function in project.iter_functions()
    }

    def transfer(fqname: str, get: Callable[[str], Effect]) -> Effect:
        effect = direct[fqname]
        for call, callee in project.callees(fqname):
            callee_summary = project.functions.get(callee)
            callee_effect = get(callee)
            propagated = callee_effect
            if call.receiver_fresh or (
                callee_summary is not None
                and callee_summary.name == "__init__"
                and call.name != "__init__"
            ):
                propagated = replace(propagated, mutates=False)
            effect = effect.join(
                replace(propagated, raises=propagated.raises or propagated.io)
            )
        return replace(effect, raises=effect.raises or effect.io)

    return solve_fixpoint(list(project.functions), Effect(), transfer)


# ======================================================================
# fixpoint 2: invalidation guarantees
# ======================================================================
#: Receivers that denote "the system this function is responsible for".
GUARANTEE_RECEIVERS = {(), ("self",), ("cls",), ("system",), ("self", "system")}


def _solve_guaranteed(project: Project) -> frozenset[str]:
    edge_maps = {
        fqname: dict(project.callees(fqname)) for fqname in project.functions
    }

    def transfer(fqname: str, get: Callable[[str], bool]) -> bool:
        function = project.functions[fqname]
        if function.name == INVALIDATE_SEED:
            return True

        def establishes(call: CallRef) -> bool:
            if call.receiver not in GUARANTEE_RECEIVERS:
                return False
            if call.name == INVALIDATE_SEED:
                return True
            callee = edge_maps[fqname].get(call)
            return callee is not None and get(callee)

        result = scan_guarantee(function.steps, False, establishes)
        return (not result.bad) and (result.called or not result.falls_through)

    facts = solve_fixpoint(list(project.functions), False, transfer)
    return frozenset(name for name, value in facts.items() if value)


# ======================================================================
# fixpoint 3: answering-state mutation
# ======================================================================
def _solve_mutates_answering(
    project: Project, guaranteed: frozenset[str]
) -> frozenset[str]:
    def transfer(fqname: str, get: Callable[[str], bool]) -> bool:
        function = project.functions[fqname]
        if _direct_mutation(project, fqname, function):
            return True
        for call, callee in project.callees(fqname):
            if call.receiver_fresh:
                continue
            callee_summary = project.functions.get(callee)
            if callee_summary is not None and callee_summary.name == "__init__":
                continue
            if get(callee):
                return True
        return False

    facts = solve_fixpoint(list(project.functions), False, transfer)
    return frozenset(name for name, value in facts.items() if value)


# ======================================================================
# window scanning (rule L7)
# ======================================================================
@dataclass(slots=True)
class _WinState:
    mutated: bool
    invalidated: bool

    @property
    def dirty(self) -> bool:
        return self.mutated and not self.invalidated

    def copy(self) -> "_WinState":
        return _WinState(self.mutated, self.invalidated)


def _merge(states: list[_WinState]) -> _WinState:
    """Join at a control-flow merge: may-mutated, must-invalidated."""
    return _WinState(
        mutated=any(state.mutated for state in states),
        invalidated=all(state.invalidated for state in states),
    )


class WindowScanner:
    """Finds escape points where an exception can leave the plan cache
    stale.  Queries the rwd fixpoint facts for callees; during the
    fixpoint itself the callee lookups go through the solver."""

    def __init__(
        self,
        facts: ProgramFacts,
        rwd_clean: Callable[[str], bool] | None = None,
        rwd_dirty: Callable[[str], bool] | None = None,
    ) -> None:
        self.facts = facts
        self.project = facts.project
        self._rwd_clean = rwd_clean or (lambda fq: fq in facts.rwd_clean)
        self._rwd_dirty = rwd_dirty or (lambda fq: fq in facts.rwd_dirty)
        self._edge_map: dict[CallRef, str] = {}
        self._imports: dict[str, str] = {}
        self._watched = False

    # -- per-function entry ---------------------------------------------
    def scan_function(self, fqname: str, entry_mutated: bool) -> list[Window]:
        function = self.project.functions.get(fqname)
        if function is None:
            return []
        self._edge_map = dict(self.project.callees(fqname))
        module = self.project.module_of.get(fqname, "")
        self._imports = self.project.imports_of.get(module, {})
        self._watched = _counts_any_receiver(self.project, fqname)
        events: list[Window] = []
        self._scan_block(
            function.steps, _WinState(entry_mutated, False), events
        )
        unique: dict[tuple[int, str], Window] = {
            (event.lineno, event.reason): event for event in events
        }
        return [unique[key] for key in sorted(unique)]

    # -- helpers ---------------------------------------------------------
    def _establishes(self, call: CallRef) -> bool:
        if call.receiver not in GUARANTEE_RECEIVERS:
            return False
        if call.name == INVALIDATE_SEED:
            return True
        callee = self._edge_map.get(call)
        return callee is not None and callee in self.facts.guaranteed

    def _call_mutates(self, call: CallRef) -> bool:
        if state_call(call, allow_any_receiver=self._watched):
            return True
        if call.receiver_fresh:
            return False
        callee = self._edge_map.get(call)
        if callee is None:
            return False
        callee_summary = self.project.functions.get(callee)
        if callee_summary is not None and callee_summary.name == "__init__":
            return False
        return callee in self.facts.mutates_answering

    def _call_escapes(self, call: CallRef, state: _WinState) -> str | None:
        """Reason string when an exception escaping this call would
        leave a stale cache; None when safe."""
        if state.invalidated:
            return None
        callee = self._edge_map.get(call)
        if callee is not None:
            name = self.project.functions[callee].name
            # rwd_dirty is exact here: it already accounts for a callee
            # that invalidates before any of its raise points (covering
            # the caller's earlier mutations, since the cache is shared
            # and invalidation is monotone within the call).
            if state.mutated and self._rwd_dirty(callee):
                return (
                    f"'{name}()' may raise while mutated state awaits "
                    f"{INVALIDATE_SEED}()"
                )
            if not state.mutated and self._rwd_clean(callee):
                return (
                    f"'{name}()' may raise after mutating state, before "
                    f"{INVALIDATE_SEED}()"
                )
            return None
        if state.mutated and (
            _call_io(call, self._imports) or _call_clock(call, self._imports)
        ):
            return (
                f"'{'.'.join(call.chain)}()' may raise while mutated state "
                f"awaits {INVALIDATE_SEED}()"
            )
        return None

    # -- the scan --------------------------------------------------------
    def _scan_block(
        self,
        steps: tuple[Step, ...],
        state: _WinState,
        events: list[Window],
    ) -> tuple[_WinState, bool]:
        """Returns (state on fall-through, falls_through)."""
        for step in steps:
            if step.kind == "if":
                self._step_calls(step, state, events)
                branches: list[tuple[_WinState, bool]] = [
                    self._scan_block(step.body, state.copy(), events),
                    self._scan_block(step.orelse, state.copy(), events),
                ]
                falling = [bstate for bstate, falls in branches if falls]
                if not falling:
                    return state, False
                state = _merge(falling)
            elif step.kind == "loop":
                self._step_calls(step, state, events)
                # Two passes: the second starts from the merged state so
                # a mutation late in iteration N is visible to a raising
                # call early in iteration N+1.
                first, _ = self._scan_block(step.body, state.copy(), events)
                merged = _merge([state, first])
                second, _ = self._scan_block(step.body, merged.copy(), events)
                after = _merge([state, second])
                orelse_state, orelse_falls = self._scan_block(
                    step.orelse, after.copy(), events
                )
                if step.orelse and not orelse_falls:
                    return orelse_state, False
                state = orelse_state if step.orelse else after
            elif step.kind == "with":
                self._step_calls(step, state, events)
                inner, falls = self._scan_block(step.body, state, events)
                if not falls:
                    return inner, False
                state = inner
            elif step.kind == "try":
                state, falls = self._scan_try(step, state, events)
                if not falls:
                    return state, False
            elif step.kind == "raise":
                self._step_calls(step, state, events)
                if state.dirty:
                    events.append(
                        Window(
                            step.lineno,
                            f"raises while mutated state awaits "
                            f"{INVALIDATE_SEED}()",
                        )
                    )
                return state, False
            elif step.kind == "return":
                self._step_calls(step, state, events)
                return state, False
            else:
                self._step_calls(step, state, events)
        return state, True

    def _step_calls(
        self, step: Step, state: _WinState, events: list[Window]
    ) -> None:
        """Process one step's own calls and writes against the state.

        Each call is escape-checked against the pre-call state and then
        applied — even an *establishing* callee is checked first, since
        an exception escaping it means its invalidation never ran
        (``rwd`` facts capture exactly that).  The step's own writes
        land last: in ``self._views[k] = compute()`` the right-hand
        side raises before the store happens."""
        for call in step.calls:
            reason = self._call_escapes(call, state)
            if reason is not None:
                events.append(Window(call.lineno, reason))
            if self._establishes(call):
                state.invalidated = True
            if self._call_mutates(call):
                state.mutated = True
        if state_writes(step):
            state.mutated = True

    def _scan_try(
        self, step: Step, state: _WinState, events: list[Window]
    ) -> tuple[_WinState, bool]:
        body_events: list[Window] = []
        body_state, body_falls = self._scan_block(
            step.body, state.copy(), body_events
        )
        inner_events: list[Window] = []
        if not step.handlers:
            inner_events.extend(body_events)
        # An exception may fire anywhere in the body: the handler sees
        # may-mutated from the whole body but only the invalidation
        # that was certain at entry.
        handler_in = _WinState(body_state.mutated, state.invalidated)
        handler_out: list[tuple[_WinState, bool]] = []
        for handler in step.handlers:
            handler_out.append(
                self._scan_block(handler, handler_in.copy(), inner_events)
            )
        orelse_state, orelse_falls = body_state, body_falls
        if step.orelse and body_falls:
            orelse_state, orelse_falls = self._scan_block(
                step.orelse, body_state.copy(), inner_events
            )
        final_guard = scan_guarantee(step.final, False, self._establishes)
        if final_guard.called and final_guard.falls_through:
            # ``finally`` invalidates on every path: nothing escaping
            # this statement can carry a stale cache.
            inner_events = []
        events.extend(inner_events)
        falling = [
            wstate
            for wstate, falls in handler_out + [(orelse_state, orelse_falls)]
            if falls
        ]
        if not falling:
            # Still run the finally for its state effect on raising
            # paths, but nothing falls through.
            return state, False
        merged = _merge(falling)
        final_state, final_falls = self._scan_block(
            step.final, merged, events
        )
        return final_state, final_falls


def _solve_windows(
    facts: ProgramFacts,
) -> tuple[frozenset[str], frozenset[str]]:
    """The rwd fixpoint: (clean-entry, dirty-entry) escape facts."""

    def transfer(
        fqname: str, get: Callable[[str], tuple[bool, bool]]
    ) -> tuple[bool, bool]:
        scanner = WindowScanner(
            facts,
            rwd_clean=lambda callee: get(callee)[0],
            rwd_dirty=lambda callee: get(callee)[1],
        )
        clean = bool(scanner.scan_function(fqname, entry_mutated=False))
        scanner_dirty = WindowScanner(
            facts,
            rwd_clean=lambda callee: get(callee)[0],
            rwd_dirty=lambda callee: get(callee)[1],
        )
        dirty = bool(scanner_dirty.scan_function(fqname, entry_mutated=True))
        return clean, dirty

    solved = solve_fixpoint(
        list(facts.project.functions), (False, False), transfer
    )
    rwd_clean = frozenset(name for name, (c, _) in solved.items() if c)
    rwd_dirty = frozenset(name for name, (_, d) in solved.items() if d)
    return rwd_clean, rwd_dirty


# ======================================================================
# driver
# ======================================================================
def analyze(project: Project) -> ProgramFacts:
    """Run every whole-program fixpoint; the single entry point used by
    rules L6-L8."""
    facts = ProgramFacts(project=project)
    facts.effects = _solve_effects(project)
    facts.guaranteed = _solve_guaranteed(project)
    facts.mutates_answering = _solve_mutates_answering(
        project, facts.guaranteed
    )
    facts.rwd_clean, facts.rwd_dirty = _solve_windows(facts)
    return facts
