"""``xmvrlint`` engine: rule registry, suppressions, output, exit codes.

The linter is deliberately small and dependency-free: Python's ``ast``
and ``tokenize`` modules are the whole parsing stack.  Rules are plugin
classes registered with :func:`register`; each receives a parsed
:class:`FileContext` and yields :class:`Violation` objects.

Suppressions
------------
A comment anywhere on a flagged line (for function-level rules: the
``def`` line the violation is reported at) disables named rules::

    fits = store.materialize(...)  # xmvrlint: disable=L1 -- justification

``disable=all`` disables every rule for the line, and
``disable-file=L4`` (on any line) disables a rule for the whole file.
Text after the rule list is ignored, so justifications are free-form.

Exit codes
----------
``0`` — clean, ``1`` — violations found, ``2`` — usage or internal
error (unreadable/unparsable file, unknown rule id).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "EXIT_CLEAN",
    "EXIT_VIOLATIONS",
    "EXIT_ERROR",
    "Violation",
    "FileContext",
    "Rule",
    "LintError",
    "register",
    "all_rules",
    "lint_paths",
    "render_human",
    "render_json",
    "apply_return_none_fixes",
]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2

#: Fix tag understood by :func:`apply_return_none_fixes`.
FIX_RETURN_NONE = "add-return-none"


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule hit at a source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    fix: str | None = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
        if self.fix is not None:
            payload["fix"] = self.fix
        return payload


class LintError(Exception):
    """Unrecoverable problem (exit code 2): bad file, bad rule id."""


_SUPPRESS = re.compile(
    r"xmvrlint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str]]:
    """Scan comments for suppression pragmas.

    Returns ``(per_line, per_file)``; rule ids are upper-cased, the
    wildcard ``all``/``*`` becomes ``"*"``.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, per_file
    for line, text in comments:
        match = _SUPPRESS.search(text)
        if match is None:
            continue
        rules = {
            "*" if item.strip() in ("all", "*") else item.strip().upper()
            for item in match.group(2).split(",")
        }
        if match.group(1) == "disable-file":
            per_file.update(rules)
        else:
            per_line.setdefault(line, set()).update(rules)
    return per_line, per_file


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs about one source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.relpath).parts

    def suppressed(self, line: int, rule_id: str) -> bool:
        if "*" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        active = self.line_suppressions.get(line, ())
        return "*" in active or rule_id in active

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "FileContext":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"{path}: cannot read: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise LintError(f"{path}: syntax error: {error}") from error
        try:
            relpath = str(path.relative_to(root)) if root else str(path)
        except ValueError:
            relpath = str(path)
        per_line, per_file = _parse_suppressions(source)
        return cls(
            path=path,
            relpath=Path(relpath).as_posix(),
            source=source,
            tree=tree,
            line_suppressions=per_line,
            file_suppressions=per_file,
        )


class Rule:
    """Base class for lint rules; subclasses register with @register."""

    rule_id: str = ""
    summary: str = ""

    def applies_to(self, context: FileContext) -> bool:
        return True

    def check(self, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        context: FileContext,
        node: ast.AST,
        message: str,
        fix: str | None = None,
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            path=context.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            fix=fix,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ids in
    ``select``.  Unknown ids raise :class:`LintError` (exit code 2)."""
    # Rules live in a sibling module; importing it populates the
    # registry exactly once.
    from . import rules as _rules  # noqa: F401

    if select is None:
        wanted = sorted(_REGISTRY)
    else:
        wanted = [item.strip().upper() for item in select if item.strip()]
        unknown = [item for item in wanted if item not in _REGISTRY]
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in wanted]


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        elif not path.exists():
            raise LintError(f"{path}: no such file or directory")
    # De-duplicate while preserving order (overlapping path arguments).
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
) -> list[Violation]:
    """Lint every ``*.py`` under ``paths``; returns surviving violations
    (suppressed ones are dropped here)."""
    active = list(rules) if rules is not None else all_rules()
    if root is None:
        root = Path.cwd()
    found: list[Violation] = []
    for path in iter_python_files(paths):
        context = FileContext.load(path, root=root)
        for rule in active:
            if not rule.applies_to(context):
                continue
            for violation in rule.check(context):
                if not context.suppressed(violation.line, violation.rule):
                    found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return found


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------
def render_human(violations: Sequence[Violation]) -> str:
    if not violations:
        return "xmvrlint: clean"
    lines = [
        f"{v.path}:{v.line}:{v.column + 1}: {v.rule} {v.message}"
        for v in violations
    ]
    lines.append(f"xmvrlint: {len(violations)} violation(s)")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


# ----------------------------------------------------------------------
# --fix: insert "-> None" on obvious procedures
# ----------------------------------------------------------------------
def _return_none_insertions(path: Path, lines_to_fix: set[int]) -> list[tuple[int, int]]:
    """For each ``def`` starting on a line in ``lines_to_fix``, locate
    the position of the ``:`` ending its signature.  Returns ``(row,
    col)`` insertion points (1-based row), found with ``tokenize`` so
    strings/comments inside default arguments cannot confuse the scan.
    """
    source = path.read_text(encoding="utf-8")
    tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    insertions: list[tuple[int, int]] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if (
            token.type == tokenize.NAME
            and token.string == "def"
            and token.start[0] in lines_to_fix
        ):
            depth = 0
            scan = index + 1
            while scan < len(tokens):
                probe = tokens[scan]
                if probe.type == tokenize.OP:
                    if probe.string in "([{":
                        depth += 1
                    elif probe.string in ")]}":
                        depth -= 1
                    elif probe.string == ":" and depth == 0:
                        insertions.append(probe.start)
                        break
                scan += 1
            index = scan
        index += 1
    return insertions


def apply_return_none_fixes(violations: Sequence[Violation]) -> int:
    """Rewrite files, adding ``-> None`` for fixable L5 violations.

    Only violations tagged :data:`FIX_RETURN_NONE` are touched — the
    rule marks a function fixable exactly when it provably returns
    nothing (no ``return value``, no ``yield``).  Returns the number of
    signatures rewritten.
    """
    by_path: dict[str, set[int]] = {}
    for violation in violations:
        if violation.fix == FIX_RETURN_NONE:
            by_path.setdefault(violation.path, set()).add(violation.line)
    fixed = 0
    for relpath, lines in by_path.items():
        path = Path(relpath)
        insertions = _return_none_insertions(path, lines)
        if not insertions:
            continue
        text_lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        # Bottom-up so earlier insertion points stay valid.
        for row, col in sorted(insertions, reverse=True):
            line = text_lines[row - 1]
            text_lines[row - 1] = line[:col] + " -> None" + line[col:]
            fixed += 1
        path.write_text("".join(text_lines), encoding="utf-8")
    return fixed
