"""``xmvrlint`` engine: rule registry, suppressions, output, exit codes.

The linter is deliberately small and dependency-free: Python's ``ast``
and ``tokenize`` modules are the whole parsing stack.  Rules are plugin
classes registered with :func:`register`; each receives a parsed
:class:`FileContext` and yields :class:`Violation` objects.

Suppressions
------------
A comment anywhere on a flagged line (for function-level rules: the
``def`` line the violation is reported at) disables named rules::

    fits = store.materialize(...)  # xmvrlint: disable=L1 -- justification

``disable=all`` disables every rule for the line, and
``disable-file=L4`` (on any line) disables a rule for the whole file.
Text after the rule list is free-form justification.  For the
concurrency rules (L10–L14) and the derived-state rules (L15–L19) the
justification is *mandatory*: a line pragma without ``-- <reason>``
does not suppress them — the engine enforces "zero unjustified
suppressions" rather than trusting review.

Exit codes
----------
``0`` — clean, ``1`` — violations found, ``2`` — usage or internal
error (unreadable/unparsable file, unknown rule id).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import pickle
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .callgraph import Project, build_project
from .dataflow import FileSummary, summarize_module
from .effects import ProgramFacts, analyze

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .concurrency import ConcurrencyFacts
    from .statedeps import StateFacts

__all__ = [
    "EXIT_CLEAN",
    "EXIT_VIOLATIONS",
    "EXIT_ERROR",
    "CONCURRENCY_RULES",
    "STATE_RULES",
    "JUSTIFIED_RULES",
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "ProjectContext",
    "LintError",
    "register",
    "all_rules",
    "build_project_context",
    "lint_paths",
    "render_human",
    "render_json",
    "render_sarif",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "baseline_counts",
    "unused_baseline_entries",
    "apply_return_none_fixes",
]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2

#: Bump when the cached record layout or any analysis changes shape —
#: stale cache entries are then simply misses.
LINT_CACHE_VERSION = 3

#: Fix tag understood by :func:`apply_return_none_fixes`.
FIX_RETURN_NONE = "add-return-none"

#: Rules whose line suppressions require a ``-- justification`` to
#: take effect (the concurrency rules: a race hidden by a bare pragma
#: is still a race).
CONCURRENCY_RULES = frozenset({"L10", "L11", "L12", "L13", "L14"})

#: The derived-state ownership rules: same mandatory-justification
#: policy (a stale cache hidden by a bare pragma is still stale).
STATE_RULES = frozenset({"L15", "L16", "L17", "L18", "L19"})

#: Every rule whose suppression demands a ``-- reason``.
JUSTIFIED_RULES = CONCURRENCY_RULES | STATE_RULES


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule hit at a source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    fix: str | None = None

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
        if self.fix is not None:
            payload["fix"] = self.fix
        return payload


class LintError(Exception):
    """Unrecoverable problem (exit code 2): bad file, bad rule id."""


_SUPPRESS = re.compile(
    r"xmvrlint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)


_JUSTIFIED = re.compile(r"\s*--\s*\S")


def _parse_suppressions(
    source: str,
) -> tuple[dict[int, set[str]], set[str], set[int]]:
    """Scan comments for suppression pragmas.

    Returns ``(per_line, per_file, justified_lines)``; rule ids are
    upper-cased, the wildcard ``all``/``*`` becomes ``"*"``.  A line
    lands in ``justified_lines`` when its pragma carries a ``--
    <reason>`` tail — required for the concurrency rules.
    """
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    justified: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return per_line, per_file, justified
    for line, text in comments:
        match = _SUPPRESS.search(text)
        if match is None:
            continue
        rules = {
            "*" if item.strip() in ("all", "*") else item.strip().upper()
            for item in match.group(2).split(",")
        }
        if match.group(1) == "disable-file":
            per_file.update(rules)
        else:
            per_line.setdefault(line, set()).update(rules)
            if _JUSTIFIED.match(text[match.end():]):
                justified.add(line)
    return per_line, per_file, justified


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs about one source file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)
    justified_lines: set[int] = field(default_factory=set)

    @property
    def parts(self) -> tuple[str, ...]:
        return Path(self.relpath).parts

    def suppressed(self, line: int, rule_id: str) -> bool:
        if "*" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        if rule_id in JUSTIFIED_RULES and line not in self.justified_lines:
            return False
        active = self.line_suppressions.get(line, ())
        return "*" in active or rule_id in active

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "FileContext":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"{path}: cannot read: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise LintError(f"{path}: syntax error: {error}") from error
        try:
            relpath = str(path.relative_to(root)) if root else str(path)
        except ValueError:
            relpath = str(path)
        per_line, per_file, justified = _parse_suppressions(source)
        return cls(
            path=path,
            relpath=Path(relpath).as_posix(),
            source=source,
            tree=tree,
            line_suppressions=per_line,
            file_suppressions=per_file,
            justified_lines=justified,
        )


class Rule:
    """Base class for lint rules; subclasses register with @register."""

    rule_id: str = ""
    summary: str = ""
    #: Longer help text surfaced in SARIF output (``fullDescription`` /
    #: ``help``); empty keeps the SARIF entry minimal.
    description: str = ""

    def applies_to(self, context: FileContext) -> bool:
        return True

    def check(self, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        context: FileContext,
        node: ast.AST,
        message: str,
        fix: str | None = None,
    ) -> Violation:
        return Violation(
            rule=self.rule_id,
            path=context.relpath,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
            fix=fix,
        )


@dataclass(slots=True)
class ProjectContext:
    """Whole-program facts shared by every project rule in one run.

    The expensive fixpoints (:func:`repro.analysis.effects.analyze`)
    run lazily and at most once per lint invocation, however many
    project rules are active.
    """

    project: Project
    relpath_by_module: dict[str, str] = field(default_factory=dict)
    _facts: ProgramFacts | None = None
    _concurrency: object | None = None
    _statedeps: object | None = None

    @property
    def facts(self) -> ProgramFacts:
        if self._facts is None:
            self._facts = analyze(self.project)
        return self._facts

    @property
    def concurrency(self) -> "ConcurrencyFacts":
        """Lock-set / acquisition-graph facts (rules L10-L14), computed
        lazily and at most once per run."""
        if self._concurrency is None:
            from .concurrency import analyze_concurrency

            self._concurrency = analyze_concurrency(self.project)
        return self._concurrency  # type: ignore[return-value]

    @property
    def statedeps(self) -> "StateFacts":
        """Derivation-DAG facts (rules L15-L19), computed lazily and at
        most once per run."""
        if self._statedeps is None:
            from .statedeps import analyze_statedeps

            self._statedeps = analyze_statedeps(self.project)
        return self._statedeps  # type: ignore[return-value]

    def location_of(self, fqname: str) -> tuple[str, int]:
        """(relpath, lineno) of a function's definition."""
        module = fqname.split(":", 1)[0]
        relpath = self.relpath_by_module.get(module, module)
        function = self.project.functions.get(fqname)
        return relpath, function.lineno if function is not None else 1


class ProjectRule(Rule):
    """Base for rules that need the whole program, not one file.

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`Rule.check` is intentionally inert.  Violations are still
    attributed to (file, line), so line suppressions and ``disable-file``
    pragmas work exactly as they do for per-file rules.
    """

    def check(self, context: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, pctx: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


_RANGE = re.compile(r"^([A-Za-z]+)(\d+)-(?:([A-Za-z]+))?(\d+)$")


def _expand_selection(items: Iterable[str]) -> list[str]:
    """Expand ``L1-L9``-style ranges; plain ids pass through."""
    expanded: list[str] = []
    for raw in items:
        item = raw.strip().upper()
        if not item:
            continue
        match = _RANGE.match(item)
        if match is None:
            expanded.append(item)
            continue
        prefix, low, end_prefix, high = match.groups()
        if end_prefix is not None and end_prefix != prefix:
            raise LintError(
                f"bad rule range {raw!r}: prefixes {prefix} and "
                f"{end_prefix} differ"
            )
        if int(low) > int(high):
            raise LintError(f"bad rule range {raw!r}: empty")
        expanded.extend(
            f"{prefix}{number}" for number in range(int(low), int(high) + 1)
        )
    return expanded


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally restricted to ids in
    ``select`` (plain ids or ``L1-L9`` ranges).  Unknown ids raise
    :class:`LintError` (exit code 2)."""
    # Rules live in a sibling module; importing it populates the
    # registry exactly once.
    from . import rules as _rules  # noqa: F401

    if select is None:
        wanted = sorted(_REGISTRY)
    else:
        wanted = _expand_selection(select)
        unknown = [item for item in wanted if item not in _REGISTRY]
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in wanted]


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        elif not path.exists():
            raise LintError(f"{path}: no such file or directory")
    # De-duplicate while preserving order (overlapping path arguments).
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


# ----------------------------------------------------------------------
# per-file fact cache
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _FileFacts:
    """Everything the engine needs about one file, cacheable on disk.

    ``violations`` holds *pre-suppression* hits for every registered
    per-file rule, so one record serves any ``--select`` subset; a
    suppression edit changes the content hash, so stale suppression
    state cannot be served.  The :class:`FileSummary` carries the
    whole-program IR — on a warm run the project pass needs no AST.
    """

    version: int
    relpath: str
    rule_ids: tuple[str, ...]
    violations: dict[str, tuple[Violation, ...]]
    line_suppressions: dict[int, set[str]]
    file_suppressions: set[str]
    summary: FileSummary
    justified_lines: set[int] = field(default_factory=set)


def _cache_key(relpath: str, payload: bytes) -> str:
    digest = hashlib.sha256()
    digest.update(f"xmvrlint:{LINT_CACHE_VERSION}:{relpath}:".encode())
    digest.update(payload)
    return digest.hexdigest()


def _cache_load(cache_dir: Path, key: str) -> _FileFacts | None:
    record_path = cache_dir / f"{key}.pkl"
    try:
        with open(record_path, "rb") as handle:
            record = pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if (
        isinstance(record, _FileFacts)
        and record.version == LINT_CACHE_VERSION
    ):
        return record
    return None


def _cache_store(cache_dir: Path, key: str, record: _FileFacts) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        tmp_path = cache_dir / f"{key}.tmp"
        tmp_path.write_bytes(payload)
        tmp_path.replace(cache_dir / f"{key}.pkl")
    except OSError:
        # A read-only or full cache directory degrades to cold linting.
        pass


def _compute_file_facts(path: Path, root: Path) -> _FileFacts:
    """Cold path: parse, run every registered per-file rule, lower to
    the IR."""
    context = FileContext.load(path, root=root)
    file_rules = [
        rule for rule in all_rules() if not isinstance(rule, ProjectRule)
    ]
    violations: dict[str, tuple[Violation, ...]] = {}
    for rule in file_rules:
        if rule.applies_to(context):
            violations[rule.rule_id] = tuple(rule.check(context))
    return _FileFacts(
        version=LINT_CACHE_VERSION,
        relpath=context.relpath,
        rule_ids=tuple(rule.rule_id for rule in file_rules),
        violations=violations,
        line_suppressions=context.line_suppressions,
        file_suppressions=context.file_suppressions,
        summary=summarize_module(
            context.tree, context.relpath, source=context.source
        ),
        justified_lines=context.justified_lines,
    )


def _file_facts(
    path: Path, root: Path, cache_dir: Path | None
) -> _FileFacts:
    if cache_dir is None:
        return _compute_file_facts(path, root)
    try:
        payload = path.read_bytes()
    except OSError as error:
        raise LintError(f"{path}: cannot read: {error}") from error
    try:
        relpath = str(path.relative_to(root))
    except ValueError:
        relpath = str(path)
    relpath = Path(relpath).as_posix()
    key = _cache_key(relpath, payload)
    cached = _cache_load(cache_dir, key)
    registered = {
        rule.rule_id
        for rule in all_rules()
        if not isinstance(rule, ProjectRule)
    }
    if cached is not None and registered <= set(cached.rule_ids):
        return cached
    record = _compute_file_facts(path, root)
    _cache_store(cache_dir, key, record)
    return record


def _suppressed(facts: _FileFacts, line: int, rule_id: str) -> bool:
    if "*" in facts.file_suppressions or rule_id in facts.file_suppressions:
        return True
    if rule_id in JUSTIFIED_RULES and line not in facts.justified_lines:
        # Concurrency/derived-state suppressions must carry a
        # justification; a bare pragma leaves the violation standing.
        return False
    active = facts.line_suppressions.get(line, ())
    return "*" in active or rule_id in active


def build_project_context(
    paths: Sequence[str | Path],
    root: Path | None = None,
    cache_dir: Path | None = None,
) -> ProjectContext:
    """Assemble the whole-program :class:`ProjectContext` for ``paths``
    without running any rules — the entry point ``xmvrlint --graph``
    uses to export the derivation DAG and lock graph."""
    if root is None:
        root = Path.cwd()
    records: dict[str, _FileFacts] = {}
    for path in iter_python_files(paths):
        facts = _file_facts(path, root, cache_dir)
        records[facts.relpath] = facts
    summaries = {relpath: facts.summary for relpath, facts in records.items()}
    return ProjectContext(
        project=build_project(summaries),
        relpath_by_module={
            facts.summary.module: relpath
            for relpath, facts in records.items()
        },
    )


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
    cache_dir: Path | None = None,
) -> list[Violation]:
    """Lint every ``*.py`` under ``paths``; returns surviving violations
    (suppressed ones are dropped here).

    With ``cache_dir`` set, per-file facts (rule hits, suppressions and
    the whole-program IR) are cached keyed on a content hash — a warm
    re-lint of an unchanged tree re-parses nothing and only re-runs the
    cheap project fixpoints.
    """
    active = list(rules) if rules is not None else all_rules()
    if root is None:
        root = Path.cwd()
    selected = {rule.rule_id for rule in active}
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    found: list[Violation] = []
    records: dict[str, _FileFacts] = {}
    for path in iter_python_files(paths):
        facts = _file_facts(path, root, cache_dir)
        records[facts.relpath] = facts
        for rule_id, hits in facts.violations.items():
            if rule_id not in selected:
                continue
            for violation in hits:
                if not _suppressed(facts, violation.line, violation.rule):
                    found.append(violation)
    if project_rules and records:
        summaries = {
            relpath: facts.summary for relpath, facts in records.items()
        }
        project = build_project(summaries)
        pctx = ProjectContext(
            project=project,
            relpath_by_module={
                facts.summary.module: relpath
                for relpath, facts in records.items()
            },
        )
        for rule in project_rules:
            for violation in rule.check_project(pctx):
                facts_for = records.get(violation.path)
                if facts_for is not None and _suppressed(
                    facts_for, violation.line, violation.rule
                ):
                    continue
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return found


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
def baseline_counts(violations: Sequence[Violation]) -> dict[str, int]:
    """Violations aggregated to ``"path::rule" -> count`` keys (line
    numbers deliberately excluded so unrelated edits don't churn the
    baseline)."""
    counts: dict[str, int] = {}
    for violation in violations:
        key = f"{violation.path}::{violation.rule}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Path) -> dict[str, int]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise LintError(f"{path}: cannot read baseline: {error}") from error
    except ValueError as error:
        raise LintError(f"{path}: bad baseline JSON: {error}") from error
    counts = payload.get("counts") if isinstance(payload, dict) else None
    if not isinstance(counts, dict) or not all(
        isinstance(value, int) for value in counts.values()
    ):
        raise LintError(f"{path}: bad baseline: expected {{'counts': ...}}")
    return dict(counts)


def write_baseline(violations: Sequence[Violation], path: Path) -> None:
    payload = {
        "comment": (
            "xmvrlint baseline: known violations tolerated by --baseline; "
            "the ratchet only shrinks — fix a violation, then regenerate "
            "with --write-baseline"
        ),
        "counts": baseline_counts(violations),
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    violations: Sequence[Violation], baseline: dict[str, int]
) -> list[Violation]:
    """Drop up to ``baseline[path::rule]`` violations per key — the
    mypy-style ratchet that lets a new rule land without a flag day."""
    budget = dict(baseline)
    surviving: list[Violation] = []
    for violation in violations:
        key = f"{violation.path}::{violation.rule}"
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            surviving.append(violation)
    return surviving


def unused_baseline_entries(
    violations: Sequence[Violation], baseline: dict[str, int]
) -> dict[str, int]:
    """``path::rule`` keys whose baseline budget was not fully consumed
    by ``violations`` — stale entries the ratchet says must be pruned
    (the fix landed; tolerating the slot would let a regression hide)."""
    fired = baseline_counts(violations)
    stale: dict[str, int] = {}
    for key, budget in sorted(baseline.items()):
        leftover = budget - fired.get(key, 0)
        if leftover > 0:
            stale[key] = leftover
    return stale


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------
def render_human(violations: Sequence[Violation]) -> str:
    if not violations:
        return "xmvrlint: clean"
    lines = [
        f"{v.path}:{v.line}:{v.column + 1}: {v.rule} {v.message}"
        for v in violations
    ]
    lines.append(f"xmvrlint: {len(violations)} violation(s)")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    violations: Sequence[Violation],
    rules: Sequence[Rule] | None = None,
) -> str:
    """SARIF 2.1.0, the format GitHub code scanning ingests for inline
    PR annotations."""
    if rules is None:
        rules = all_rules()
    rule_objects: list[dict[str, object]] = []
    for rule in sorted(rules, key=lambda rule: rule.rule_id):
        entry: dict[str, object] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
        }
        if rule.description:
            entry["fullDescription"] = {"text": rule.description}
            entry["help"] = {"text": rule.description}
        rule_objects.append(entry)
    results = [
        {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "xmvrlint",
                        "informationUri": (
                            "https://example.invalid/xmvrlint"
                        ),
                        "rules": rule_objects,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# --fix: insert "-> None" on obvious procedures
# ----------------------------------------------------------------------
def _return_none_insertions(path: Path, lines_to_fix: set[int]) -> list[tuple[int, int]]:
    """For each ``def`` starting on a line in ``lines_to_fix``, locate
    the position of the ``:`` ending its signature.  Returns ``(row,
    col)`` insertion points (1-based row), found with ``tokenize`` so
    strings/comments inside default arguments cannot confuse the scan.
    """
    source = path.read_text(encoding="utf-8")
    tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    insertions: list[tuple[int, int]] = []
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if (
            token.type == tokenize.NAME
            and token.string == "def"
            and token.start[0] in lines_to_fix
        ):
            depth = 0
            scan = index + 1
            while scan < len(tokens):
                probe = tokens[scan]
                if probe.type == tokenize.OP:
                    if probe.string in "([{":
                        depth += 1
                    elif probe.string in ")]}":
                        depth -= 1
                    elif probe.string == ":" and depth == 0:
                        insertions.append(probe.start)
                        break
                scan += 1
            index = scan
        index += 1
    return insertions


def apply_return_none_fixes(violations: Sequence[Violation]) -> int:
    """Rewrite files, adding ``-> None`` for fixable L5 violations.

    Only violations tagged :data:`FIX_RETURN_NONE` are touched — the
    rule marks a function fixable exactly when it provably returns
    nothing (no ``return value``, no ``yield``).  Returns the number of
    signatures rewritten.
    """
    by_path: dict[str, set[int]] = {}
    for violation in violations:
        if violation.fix == FIX_RETURN_NONE:
            by_path.setdefault(violation.path, set()).add(violation.line)
    fixed = 0
    for relpath, lines in by_path.items():
        path = Path(relpath)
        insertions = _return_none_insertions(path, lines)
        if not insertions:
            continue
        text_lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        # Bottom-up so earlier insertion points stay valid.
        for row, col in sorted(insertions, reverse=True):
            line = text_lines[row - 1]
            text_lines[row - 1] = line[:col] + " -> None" + line[col:]
            fixed += 1
        path.write_text("".join(text_lines), encoding="utf-8")
    return fixed
