"""Concurrency analyses for xmvrlint rules L10-L14.

The epoch-snapshot registry (PR 7) and the worker-pool service layer
(PR 8) made the reproduction genuinely concurrent; this module makes
the lock discipline that keeps answers byte-identical under load
*statically checkable*.  Everything runs over the pickled dataflow IR
(:mod:`repro.analysis.dataflow`), so a warm re-lint reuses cached
summaries and only replays the cheap fixpoints here.

Five analyses share one substrate:

* **Lock tokens** — a lock is identified class-wide as
  ``(classname, attr)``: every instance of ``PlanCache`` conflates to
  one ``PlanCache._lock`` token.  This is the Eraser/RacerD
  simplification: it cannot distinguish two live instances, which is
  sound for lock-*order* facts (any instance pair can deadlock) and
  precise enough for lock-*set* facts in this codebase, where guarded
  state is only ever reached through the owning instance's own lock.
* **Held-set walker** — an abstract interpretation of the Step IR that
  tracks the set of lock tokens held at every statement.  ``with
  self._lock:`` acquires for the nested block; branches and loops
  inherit the surrounding held set.
* **Entry-lock fixpoint** — a *greatest* fixpoint giving each function
  the set of locks held at every one of its call sites:
  ``entry(f) = ⋂ over call sites (entry(caller) ∪ held(caller, site))``
  starting from the full universe.  Functions with no callers (thread
  entry points, public API) start with nothing held.  Call sites
  inside ``__init__`` are excluded from the intersection — an object
  under construction is unpublished, so its helpers (``_recover``)
  are judged by their post-publication callers only.
* **Acquisition graph** — ``A -> B`` when some program point acquires
  ``B`` while holding ``A``, either directly (nested ``with``) or
  through a call whose callee transitively acquires ``B``.  A cycle is
  deadlock potential (rule L11); re-acquiring a held non-reentrant
  lock is self-deadlock, reported directly.
* **Effects bridge** — rule L14 combines the held sets with the
  ``blocks`` rung of the effect lattice
  (:mod:`repro.analysis.effects`) to forbid unbounded blocking while
  holding a lock not annotated ``#: lock: blocking-allowed``.

Known approximations (all deliberate, all documented in DESIGN.md
§13): lock identity is class-scoped; a lock stored in a plain local
(``lock = self._lock``) is invisible; held sets translate across calls
by token identity (no receiver substitution).  Each errs toward
*missing* a violation, never toward a false positive on the idioms
this repo uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from .callgraph import ATTR_CLASSES, Project
from .dataflow import (
    CallRef,
    ClassRec,
    FunctionSummary,
    GuardRec,
    LockRec,
    Step,
    solve_fixpoint,
)
from .effects import GENERIC_MUTATORS, Effect, _call_blocking

__all__ = [
    "Token",
    "Finding",
    "ConcurrencyFacts",
    "analyze_concurrency",
]

#: A class-scoped lock identity: ``(classname, lock attribute)``.
Token = tuple[str, str]

#: A located diagnostic: ``(relpath, lineno, message)``.
Finding = tuple[str, int, str]

#: Snapshot classes that must be frozen dataclasses (rule L13).
SNAPSHOT_FROZEN_CLASSES = ("RegistryEpoch",)

#: Local / parameter names conventionally bound to a pinned epoch.
EPOCH_LOCALS = ("epoch", "retiring")

#: Mutator method names for the snapshot-immutability scan: the
#: generic container mutators plus the domain-specific ones reachable
#: from an epoch (fragment store, VFILTER).
SNAPSHOT_MUTATORS = GENERIC_MUTATORS | {
    "materialize",
    "materialize_encoded",
    "drop",
    "add_view",
    "add_views",
}

#: The one mutable-by-design component of an epoch: the plan cache is
#: internally synchronized and *meant* to be written through the
#: snapshot (hits fill it, invalidation clears it).
SNAPSHOT_EXEMPT_ATTR = "plan_cache"

#: VFilter mutators that must only ever run on freshly constructed
#: filters (delta building) — a published filter is immutable.
VFILTER_MUTATORS = {"add_view", "add_views"}


def _token_text(token: Token) -> str:
    return f"{token[0]}.{token[1]}"


def _field_candidates(
    chain: tuple[str, ...], classname: str | None
) -> list[tuple[str, str]]:
    """Possible ``(owner class, field)`` meanings of an access chain.

    ``('self', '_epoch')`` in class C → ``(C, '_epoch')``;
    ``('self', 'system', '_node_index')`` also resolves through the
    collaborator table; a bare ``('system', '_node_index')`` likewise.
    Guards index the result, so spurious candidates (method names,
    unannotated fields) simply never match.
    """
    candidates: list[tuple[str, str]] = []
    root = chain[0]
    if root in ("self", "cls"):
        if classname is not None and len(chain) >= 2:
            candidates.append((classname, chain[1]))
        if len(chain) >= 3 and chain[1] in ATTR_CLASSES:
            for owner in ATTR_CLASSES[chain[1]]:
                candidates.append((owner, chain[2]))
    elif root in ATTR_CLASSES and len(chain) >= 2:
        for owner in ATTR_CLASSES[root]:
            candidates.append((owner, chain[1]))
    return candidates


@dataclass(slots=True)
class ConcurrencyFacts:
    """Everything rules L10-L14 consume, computed once per lint run."""

    project: Project
    locks: dict[Token, LockRec] = field(default_factory=dict)
    guards: dict[Token, GuardRec] = field(default_factory=dict)
    #: class name → (record, defining file)
    classes: dict[str, tuple[ClassRec, str]] = field(default_factory=dict)
    #: fqname → locks held at *every* call site (greatest fixpoint)
    entry_locks: dict[str, frozenset[Token]] = field(default_factory=dict)
    #: fqname → every lock the function may (transitively) acquire
    acquires: dict[str, frozenset[Token]] = field(default_factory=dict)
    #: acquisition edges with one witness site each
    edges: dict[tuple[Token, Token], Finding] = field(default_factory=dict)
    #: direct self-deadlock findings collected during the edge build
    reacquisitions: list[Finding] = field(default_factory=list)
    relpath_by_module: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _relpath(self, fqname: str) -> str:
        module = self.project.module_of.get(fqname, "")
        return self.relpath_by_module.get(module, module)

    def _lock_tokens(
        self, chain: tuple[str, ...], classname: str | None
    ) -> frozenset[Token]:
        """Lock tokens denoted by an expression chain; only chains that
        resolve to a *known* lock attribute count, so arbitrary context
        managers never pollute the held set."""
        found = {
            (owner, attr)
            for owner, attr in _field_candidates(chain, classname)
            if (owner, attr) in self.locks
        }
        return frozenset(found)

    def _iter_states(
        self,
        steps: tuple[Step, ...],
        held: frozenset[Token],
        in_loop: bool,
        classname: str | None,
    ) -> Iterator[tuple[Step, frozenset[Token], bool]]:
        """(step, locally-held tokens, inside-a-loop) for every step.

        A step's own eager expressions evaluate *before* any ``with``
        acquisition it performs, so the step itself is yielded under
        the surrounding held set.
        """
        for step in steps:
            yield step, held, in_loop
            if step.kind == "with":
                acquired = held
                for chain in step.contexts:
                    acquired = acquired | self._lock_tokens(chain, classname)
                yield from self._iter_states(
                    step.body, acquired, in_loop, classname
                )
            elif step.kind == "loop":
                yield from self._iter_states(step.body, held, True, classname)
                yield from self._iter_states(
                    step.orelse, held, in_loop, classname
                )
            elif step.kind == "if":
                yield from self._iter_states(
                    step.body, held, in_loop, classname
                )
                yield from self._iter_states(
                    step.orelse, held, in_loop, classname
                )
            elif step.kind == "try":
                yield from self._iter_states(
                    step.body, held, in_loop, classname
                )
                yield from self._iter_states(
                    step.orelse, held, in_loop, classname
                )
                for handler in step.handlers:
                    yield from self._iter_states(
                        handler, held, in_loop, classname
                    )
                yield from self._iter_states(
                    step.final, held, in_loop, classname
                )

    def _function_states(
        self, fqname: str, function: FunctionSummary
    ) -> Iterator[tuple[Step, frozenset[Token], bool]]:
        """Walker over one function with entry locks folded in."""
        entry = self.entry_locks.get(fqname, frozenset())
        for step, held, in_loop in self._iter_states(
            function.steps, entry, False, function.classname
        ):
            yield step, held, in_loop

    def _held_at_calls(
        self, function: FunctionSummary, classname: str | None
    ) -> dict[CallRef, frozenset[Token]]:
        """Locally held tokens at each call site (entry locks *not*
        folded in — the fixpoint adds those).  A call textually
        repeated with identical shape joins by intersection."""
        held_map: dict[CallRef, frozenset[Token]] = {}
        for step, held, _ in self._iter_states(
            function.steps, frozenset(), False, classname
        ):
            for call in step.calls:
                previous = held_map.get(call)
                held_map[call] = (
                    held if previous is None else (previous & held)
                )
        return held_map

    # ------------------------------------------------------------------
    # L10 — lock-set consistency
    # ------------------------------------------------------------------
    def lockset_violations(self) -> list[Finding]:
        findings: dict[Finding, None] = {}
        for fqname, function in sorted(self.project.functions.items()):
            if function.name == "__init__":
                # Under construction: the object is unpublished, no
                # other thread can reach its fields yet.
                continue
            relpath = self._relpath(fqname)
            for step, held, _ in self._function_states(fqname, function):
                for write in step.writes:
                    if write.fresh:
                        continue
                    for finding in self._access_findings(
                        write.chain, write.lineno, held, True,
                        function.classname, relpath,
                    ):
                        findings[finding] = None
                for read in step.reads:
                    if read.fresh:
                        continue
                    for finding in self._access_findings(
                        read.chain, read.lineno, held, False,
                        function.classname, relpath,
                    ):
                        findings[finding] = None
        return sorted(findings)

    def _access_findings(
        self,
        chain: tuple[str, ...],
        lineno: int,
        held: frozenset[Token],
        is_write: bool,
        classname: str | None,
        relpath: str,
    ) -> Iterator[Finding]:
        for owner, attr in _field_candidates(chain, classname):
            guard = self.guards.get((owner, attr))
            if guard is None:
                continue
            if not is_write and guard.mode == "writes":
                continue
            required = (owner, guard.lock)
            if required in held:
                continue
            kind = "write to" if is_write else "read of"
            yield (
                relpath,
                lineno,
                f"{kind} '{owner}.{attr}' without holding "
                f"'{guard.lock}' (field is `#: guarded-by: "
                f"{guard.lock}`)",
            )

    # ------------------------------------------------------------------
    # L11 — lock-order acquisition graph
    # ------------------------------------------------------------------
    def _build_acquisition_graph(self) -> None:
        for fqname, function in sorted(self.project.functions.items()):
            relpath = self._relpath(fqname)
            callee_map = dict(self.project.callees(fqname))
            for step, held, _ in self._function_states(fqname, function):
                if step.kind == "with":
                    acquired = frozenset().union(
                        *(
                            self._lock_tokens(chain, function.classname)
                            for chain in step.contexts
                        )
                    ) if step.contexts else frozenset()
                    for token in acquired:
                        if token in held:
                            if self.locks[token].kind != "RLock":
                                self.reacquisitions.append(
                                    (
                                        relpath,
                                        step.lineno,
                                        f"re-acquires non-reentrant "
                                        f"lock '{_token_text(token)}' "
                                        f"already held — guaranteed "
                                        f"self-deadlock",
                                    )
                                )
                            continue
                        for holding in held:
                            self.edges.setdefault(
                                (holding, token),
                                (relpath, step.lineno, fqname),
                            )
                if not held:
                    continue
                for call in step.calls:
                    callee = callee_map.get(call)
                    if callee is None:
                        continue
                    for token in self.acquires.get(callee, frozenset()):
                        if token in held:
                            if self.locks[token].kind != "RLock":
                                self.reacquisitions.append(
                                    (
                                        relpath,
                                        call.lineno,
                                        f"'{call.name}()' re-acquires "
                                        f"non-reentrant lock "
                                        f"'{_token_text(token)}' "
                                        f"already held — guaranteed "
                                        f"self-deadlock",
                                    )
                                )
                            continue
                        for holding in held:
                            self.edges.setdefault(
                                (holding, token),
                                (relpath, call.lineno, fqname),
                            )

    def order_violations(self) -> list[Finding]:
        findings = list(self.reacquisitions)
        graph: dict[Token, list[Token]] = {}
        for holding, acquired in sorted(self.edges):
            graph.setdefault(holding, []).append(acquired)
        # Iterative DFS with an explicit stack; a back edge into the
        # current path is a cycle.
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[Token, int] = {}
        path: list[Token] = []
        reported: set[frozenset[Token]] = set()

        def visit(node: Token) -> None:
            color[node] = GREY
            path.append(node)
            for successor in graph.get(node, ()):  # noqa: B023
                state = color.get(successor, WHITE)
                if state == GREY:
                    cycle = path[path.index(successor):] + [successor]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        witness = self.edges[(node, successor)]
                        findings.append(
                            (
                                witness[0],
                                witness[1],
                                "lock-order cycle: "
                                + " -> ".join(
                                    _token_text(token) for token in cycle
                                )
                                + f" (closing edge in {witness[2]})",
                            )
                        )
                elif state == WHITE:
                    visit(successor)
            path.pop()
            color[node] = BLACK

        for node in sorted(graph):
            if color.get(node, WHITE) == WHITE:
                visit(node)
        return sorted(set(findings))

    # ------------------------------------------------------------------
    # L12 — epoch-pinning discipline
    # ------------------------------------------------------------------
    def pin_violations(self) -> list[Finding]:
        findings: list[Finding] = []
        for fqname, function in sorted(self.project.functions.items()):
            if function.name == "__init__":
                continue
            relpath = self._relpath(fqname)
            sites: dict[Token, list[tuple[int, bool]]] = {}
            for step, held, in_loop in self._function_states(
                fqname, function
            ):
                for read in step.reads:
                    if read.fresh:
                        continue
                    for owner, attr in _field_candidates(
                        read.chain, function.classname
                    ):
                        guard = self.guards.get((owner, attr))
                        if guard is None or not guard.pin_once:
                            continue
                        if (owner, guard.lock) in held:
                            # Mutators re-read under the writer lock by
                            # design (compare-and-publish).
                            continue
                        sites.setdefault((owner, attr), []).append(
                            (read.lineno, in_loop)
                        )
            for (owner, attr), hits in sorted(sites.items()):
                linenos = sorted({lineno for lineno, _ in hits})
                loop_hits = sorted(
                    {lineno for lineno, looped in hits if looped}
                )
                if len(linenos) > 1:
                    listed = ", ".join(str(number) for number in linenos)
                    findings.append(
                        (
                            relpath,
                            linenos[1],
                            f"'{owner}.{attr}' read {len(linenos)} times "
                            f"in one function (lines {listed}); pin the "
                            f"snapshot once per request and thread it "
                            f"through",
                        )
                    )
                elif loop_hits:
                    findings.append(
                        (
                            relpath,
                            loop_hits[0],
                            f"'{owner}.{attr}' read inside a loop; a "
                            f"concurrent publish would tear the "
                            f"iteration — pin it once before the loop",
                        )
                    )
        return sorted(set(findings))

    # ------------------------------------------------------------------
    # L13 — deep immutability of published snapshots
    # ------------------------------------------------------------------
    def snapshot_violations(self) -> list[Finding]:
        findings: list[Finding] = []
        for name in SNAPSHOT_FROZEN_CLASSES:
            entry = self.classes.get(name)
            if entry is None:
                continue
            record, relpath = entry
            if not record.frozen:
                findings.append(
                    (
                        relpath,
                        record.lineno,
                        f"snapshot class '{name}' must be a frozen "
                        f"dataclass — readers rely on publish-then-"
                        f"never-mutate",
                    )
                )
        for fqname, function in sorted(self.project.functions.items()):
            relpath = self._relpath(fqname)
            for step, _, _ in self._iter_states(
                function.steps, frozenset(), False, function.classname
            ):
                for write in step.writes:
                    if write.fresh:
                        continue
                    root = self._snapshot_root(write.chain)
                    if root is None:
                        continue
                    through = len(write.chain) > root or (
                        write.subscript and len(write.chain) >= root
                    )
                    if not through:
                        continue
                    if SNAPSHOT_EXEMPT_ATTR in write.chain:
                        continue
                    findings.append(
                        (
                            relpath,
                            write.lineno,
                            f"mutation through published snapshot "
                            f"'{'.'.join(write.chain)}' — epochs are "
                            f"immutable after publish; build a fresh "
                            f"one and swap",
                        )
                    )
                for call in step.calls:
                    if call.receiver_fresh:
                        continue
                    receiver = call.receiver
                    if (
                        call.name in VFILTER_MUTATORS
                        and receiver
                        and receiver[0] not in ("self", "cls")
                        and receiver[-1].endswith("vfilter")
                    ):
                        findings.append(
                            (
                                relpath,
                                call.lineno,
                                f"'{call.name}()' mutates a VFILTER "
                                f"that may be published — deltas must "
                                f"be built on fresh layers "
                                f"(with_view/build)",
                            )
                        )
                        continue
                    if call.name not in SNAPSHOT_MUTATORS:
                        continue
                    root = self._snapshot_root(call.chain)
                    if root is None or len(receiver) < root:
                        continue
                    if SNAPSHOT_EXEMPT_ATTR in call.chain:
                        continue
                    findings.append(
                        (
                            relpath,
                            call.lineno,
                            f"'{'.'.join(call.chain)}()' mutates state "
                            f"reachable from a published snapshot — "
                            f"epochs are immutable after publish",
                        )
                    )
        return sorted(set(findings))

    @staticmethod
    def _snapshot_root(chain: tuple[str, ...]) -> int | None:
        """Length of the snapshot-denoting prefix of ``chain``, or
        None.  ``('self', '_epoch', ...)`` → 2; a local conventionally
        named ``epoch`` / ``retiring`` → 1."""
        if len(chain) >= 2 and chain[0] in ("self", "cls") and chain[1] == "_epoch":
            return 2
        if chain[0] in EPOCH_LOCALS:
            return 1
        return None

    # ------------------------------------------------------------------
    # L14 — blocking calls under a core lock
    # ------------------------------------------------------------------
    def blocking_violations(
        self, effects: Mapping[str, Effect]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fqname, function in sorted(self.project.functions.items()):
            relpath = self._relpath(fqname)
            module = self.project.module_of.get(fqname, "")
            imports = self.project.imports_of.get(module, {})
            callee_map = dict(self.project.callees(fqname))
            for step, held, _ in self._function_states(fqname, function):
                bad = sorted(
                    token
                    for token in held
                    if not self.locks[token].blocking_allowed
                )
                if not bad:
                    continue
                held_text = ", ".join(
                    f"'{_token_text(token)}'" for token in bad
                )
                for call in step.calls:
                    reason = self._blocking_reason(
                        call, held, imports, callee_map, effects,
                        function.classname,
                    )
                    if reason is None:
                        continue
                    findings.append(
                        (
                            relpath,
                            call.lineno,
                            f"{reason} while holding {held_text} — "
                            f"blocking under a core lock stalls every "
                            f"thread contending for it",
                        )
                    )
        return sorted(set(findings))

    def _blocking_reason(
        self,
        call: CallRef,
        held: frozenset[Token],
        imports: dict[str, str],
        callee_map: dict[CallRef, str],
        effects: Mapping[str, Effect],
        classname: str | None,
    ) -> str | None:
        callee = callee_map.get(call)
        if callee is not None:
            if effects.get(callee, Effect()).blocks:
                return f"'{call.name}()' may block (I/O or waits)"
            return None
        if call.name in ("wait", "wait_for"):
            receiver_tokens = (
                self._lock_tokens(call.receiver, classname)
                if call.receiver
                else frozenset()
            )
            for token in receiver_tokens:
                if token in held and self.locks[token].kind == "Condition":
                    # The gate pattern: Condition.wait releases its own
                    # lock while parked, so waiting on the condition
                    # you hold is exactly how it is meant to be used.
                    return None
            return f"'{'.'.join(call.chain)}()' waits"
        if _call_blocking(call, imports):
            return f"'{'.'.join(call.chain)}()' may block"
        return None


# ======================================================================
# construction
# ======================================================================
def _solve_entry_locks(
    facts: ConcurrencyFacts,
) -> dict[str, frozenset[Token]]:
    project = facts.project
    universe = frozenset(facts.locks)
    site_held: dict[str, dict[CallRef, frozenset[Token]]] = {}
    for fqname, function in project.iter_functions():
        site_held[fqname] = facts._held_at_calls(
            function, function.classname
        )
    callers: dict[str, list[tuple[str, CallRef]]] = {}
    for caller, edges in project.call_edges.items():
        caller_fn = project.functions.get(caller)
        if caller_fn is not None and caller_fn.name == "__init__":
            continue
        for call, callee in edges:
            callers.setdefault(callee, []).append((caller, call))

    def transfer(
        fqname: str, get: Callable[[str], frozenset[Token]]
    ) -> frozenset[Token]:
        sites = callers.get(fqname, [])
        if not sites:
            return frozenset()
        result: frozenset[Token] | None = None
        for caller, call in sites:
            held = site_held.get(caller, {}).get(call, frozenset())
            combined = held | get(caller)
            result = combined if result is None else (result & combined)
        return result if result is not None else frozenset()

    return solve_fixpoint(list(project.functions), universe, transfer)


def _solve_acquires(facts: ConcurrencyFacts) -> dict[str, frozenset[Token]]:
    project = facts.project

    def transfer(
        fqname: str, get: Callable[[str], frozenset[Token]]
    ) -> frozenset[Token]:
        function = project.functions[fqname]
        acquired: set[Token] = set()
        for step in function.iter_steps():
            if step.kind == "with":
                for chain in step.contexts:
                    acquired |= facts._lock_tokens(
                        chain, function.classname
                    )
        for _, callee in project.callees(fqname):
            acquired |= get(callee)
        return frozenset(acquired)

    return solve_fixpoint(list(project.functions), frozenset(), transfer)


def analyze_concurrency(project: Project) -> ConcurrencyFacts:
    """Build the shared concurrency facts for rules L10-L14."""
    facts = ConcurrencyFacts(project=project)
    for relpath, summary in project.files.items():
        facts.relpath_by_module[summary.module] = relpath
        for lock in summary.locks:
            facts.locks.setdefault((lock.classname, lock.attr), lock)
        for guard in summary.guards:
            facts.guards.setdefault((guard.classname, guard.attr), guard)
        for record in summary.classes:
            facts.classes.setdefault(record.name, (record, relpath))
    facts.entry_locks = _solve_entry_locks(facts)
    facts.acquires = _solve_acquires(facts)
    facts._build_acquisition_graph()
    return facts
