"""Static analysis and runtime contracts for the reproduction.

Two halves, both protecting the invariants PR 1's caching layer made
load-bearing (see DESIGN.md §10 for the catalog):

* :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` —
  ``xmvrlint``, a linter with repo-specific rules: per-file AST rules
  L1–L5 (plan-cache invalidation discipline, frozen interned patterns,
  ``id()``-key escapes, wall-clock/randomness bans in ``core/``,
  public-API annotation coverage) and whole-program rules L6–L9
  (interprocedural invalidation, exception safety of mutation windows,
  purity of cache inputs, import layering) built on
  :mod:`repro.analysis.callgraph`, :mod:`repro.analysis.dataflow` and
  :mod:`repro.analysis.effects`.  Run it with ``python -m repro lint``
  or the ``xmvrlint`` console script.
* :mod:`repro.analysis.contracts` — re-export of
  :mod:`repro.core.contracts`, the opt-in runtime assertions
  (``XMVR_CHECK=1``, on by default under pytest) checking the paper's
  guarantees at stage boundaries: document-ordered Dewey output, exact
  leaf-cover equality of selected view sets, VFILTER soundness, and
  sampled structural equality of cache-served plans.
"""

from __future__ import annotations

__all__ = ["engine", "rules", "contracts", "lintcli"]
