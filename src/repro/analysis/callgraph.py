"""Project call graph and module import graph for xmvrlint.

Builds the whole-program :class:`Project` model out of the per-file
:class:`~repro.analysis.dataflow.FileSummary` facts: an index of every
function by fully-qualified name, the import bindings of every module,
and a resolved call graph.

Call resolution is deliberately *optimistic*: a call site that cannot
be resolved to a project function (builtins, stdlib, dynamic dispatch)
simply produces no edge, and the downstream analyses treat the callee
as effect-free.  The resolution ladder, in order:

1. ``self.m()`` / ``cls.m()`` — method ``m`` of the caller's own class
   (same module first, then any class of that name in the project).
2. Bare ``f()`` — a function nested in the caller, then a module-level
   function of the caller's module, then the caller's import bindings
   (``from ..matching.evaluate import evaluate``).
3. ``alias.f()`` where ``alias`` is an imported module — function ``f``
   of that module.
4. ``self.fragments.m()`` — a small table of attribute→class types for
   the system's well-known collaborators (:data:`ATTR_CLASSES`).
5. Unique-name fallback — a method name defined by exactly one class in
   the whole project resolves to it.

Layer ranks for rule L9 live here too (:func:`layer_of`): the package
DAG ``obs → xmltree → xpath → matching → storage → core → {analysis,
delta, workload} → {bench, service}``, with ``errors`` importable from
everywhere and the top-level application shell (``cli``,
``__main__``) exempt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .dataflow import CallRef, FileSummary, FunctionSummary

__all__ = [
    "ATTR_CLASSES",
    "LAYER_RANKS",
    "Project",
    "build_project",
    "layer_of",
]

#: Known collaborator attributes of the answering system: the class a
#: given attribute name holds, used to resolve ``self.<attr>.method()``
#: call sites without full type inference.
ATTR_CLASSES: dict[str, tuple[str, ...]] = {
    "fragments": ("FragmentStore",),
    "vfilter": ("VFilter",),
    "_plan_cache": ("PlanCache",),
    "plan_cache": ("PlanCache",),
    "_memo": ("CoverageMemo",),
    "store": ("KVStore",),
    "system": ("MaterializedViewSystem", "XMVRSystem"),
    "document": ("EncodedDocument",),
    "schema": ("DocumentSchema",),
    "editor": ("DocumentEditor",),
}

#: Package layer ranks.  A module may import same-package modules and
#: lower-ranked layers; importing a higher rank — or a *different*
#: layer at the same rank — breaks the DAG.
LAYER_RANKS: dict[str, int] = {
    "errors": 0,
    # Telemetry primitives (clock, registry, tracer, slow log) sit just
    # above errors: every layer may record into them, they import none.
    "obs": 1,
    "xmltree": 2,
    "xpath": 3,
    "matching": 4,
    "storage": 5,
    "core": 6,
    "analysis": 7,
    "delta": 7,
    "workload": 7,
    "bench": 8,
    "service": 8,
}

#: Top-level application-shell modules exempt from L9: they wire every
#: layer together by design.
SHELL_MODULES = {"cli", "__main__"}


def layer_of(module: str) -> tuple[str, int] | None:
    """The (layer name, rank) of a dotted module path, or None when the
    module is outside the layered packages (shell modules, the root
    package itself, third-party imports)."""
    for segment in module.split("."):
        if segment in SHELL_MODULES:
            return None
        if segment in LAYER_RANKS:
            return segment, LAYER_RANKS[segment]
    return None


@dataclass(slots=True)
class Project:
    """Whole-program facts: every file summary plus resolution indexes
    and the resolved call graph."""

    files: dict[str, FileSummary] = field(default_factory=dict)
    #: fully-qualified name ("module:qualname") → summary
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: fqname → module dotted name (for reverse lookups)
    module_of: dict[str, str] = field(default_factory=dict)
    #: module → {local name: absolute dotted import target}
    imports_of: dict[str, dict[str, str]] = field(default_factory=dict)
    #: (classname, method name) → fqnames defining it
    class_methods: dict[tuple[str, str], list[str]] = field(default_factory=dict)
    #: method name → fqnames (any class)
    by_method: dict[str, list[str]] = field(default_factory=dict)
    #: resolved call graph: caller fqname → ((call site, callee fqname), ...)
    call_edges: dict[str, list[tuple[CallRef, str]]] = field(default_factory=dict)

    # -- lookups ---------------------------------------------------------
    def modules(self) -> set[str]:
        return {summary.module for summary in self.files.values()}

    def function(self, fqname: str) -> FunctionSummary | None:
        return self.functions.get(fqname)

    def callees(self, fqname: str) -> list[tuple[CallRef, str]]:
        return self.call_edges.get(fqname, [])

    def adjacency(self) -> dict[str, list[str]]:
        """Caller → callee fqnames, for the generic graph helpers."""
        return {
            caller: [callee for _, callee in edges]
            for caller, edges in self.call_edges.items()
        }

    def iter_functions(self) -> Iterator[tuple[str, FunctionSummary]]:
        return iter(self.functions.items())

    # -- resolution ------------------------------------------------------
    def resolve(self, caller_fq: str, call: CallRef) -> str | None:
        """Resolve one call site to a project function, or None."""
        chain = call.chain
        if chain == ("<dynamic>",):
            return None
        module = self.module_of.get(caller_fq, "")
        caller = self.functions.get(caller_fq)
        # 1. self.m() / cls.m(): the caller's own class.
        if len(chain) == 2 and chain[0] in ("self", "cls"):
            if caller is not None and caller.classname is not None:
                found = self._method_on(caller.classname, chain[1], module)
                if found is not None:
                    return found
            return self._unique_method(chain[1])
        # 2. bare f(): nested, module-level, then imports.
        if len(chain) == 1:
            name = chain[0]
            if caller is not None:
                for nested in caller.nested:
                    if nested.name == name:
                        return f"{module}:{nested.qualname}"
            local = f"{module}:{name}"
            if local in self.functions:
                return local
            target = self.imports_of.get(module, {}).get(name)
            if target is not None:
                return self._function_at(target)
            return None
        # 3. alias.f() through an imported module.
        root = chain[0]
        target = self.imports_of.get(module, {}).get(root)
        if target is not None:
            dotted = ".".join((target,) + chain[1:])
            found = self._function_at(dotted)
            if found is not None:
                return found
        # 4. known collaborator attributes: self.fragments.m() etc.
        holder = chain[-2]
        for classname in ATTR_CLASSES.get(holder, ()):
            found = self._method_on(classname, chain[-1], module)
            if found is not None:
                return found
        # 5. unique method name anywhere in the project.
        return self._unique_method(chain[-1])

    def _method_on(
        self, classname: str, method: str, prefer_module: str
    ) -> str | None:
        candidates = self.class_methods.get((classname, method), [])
        if not candidates:
            return None
        for fqname in candidates:
            if self.module_of.get(fqname) == prefer_module:
                return fqname
        return candidates[0] if len(candidates) == 1 else None

    def _unique_method(self, method: str) -> str | None:
        candidates = self.by_method.get(method, [])
        return candidates[0] if len(candidates) == 1 else None

    def _function_at(self, dotted: str) -> str | None:
        """Resolve ``pkg.module.func`` to a project function by trying
        every module/attribute split from the right."""
        head, _, tail = dotted.rpartition(".")
        while head:
            fqname = f"{head}:{tail}"
            if fqname in self.functions:
                return fqname
            nxt_head, _, nxt = head.rpartition(".")
            tail = f"{nxt}.{tail}" if nxt else tail
            head = nxt_head
        return None


def _index_functions(
    project: Project, summary: FileSummary, function: FunctionSummary
) -> None:
    fqname = f"{summary.module}:{function.qualname}"
    project.functions[fqname] = function
    project.module_of[fqname] = summary.module
    if function.classname is not None and "<locals>" not in function.qualname:
        project.class_methods.setdefault(
            (function.classname, function.name), []
        ).append(fqname)
        project.by_method.setdefault(function.name, []).append(fqname)
    for nested in function.nested:
        _index_functions(project, summary, nested)


def build_project(summaries: Mapping[str, FileSummary]) -> Project:
    """Assemble the project model and resolve every call site."""
    project = Project()
    for relpath in sorted(summaries):
        summary = summaries[relpath]
        project.files[relpath] = summary
        project.imports_of[summary.module] = {
            record.local: record.target for record in summary.imports
        }
        for function in summary.functions:
            _index_functions(project, summary, function)
    for fqname, function in project.functions.items():
        edges: list[tuple[CallRef, str]] = []
        for step in function.iter_steps():
            for call in step.calls:
                callee = project.resolve(fqname, call)
                if callee is not None and callee != fqname:
                    edges.append((call, callee))
        if edges:
            project.call_edges[fqname] = edges
    return project
