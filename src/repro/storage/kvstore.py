"""Embedded persistent key-value store (Berkeley DB substitute).

The paper stores VFILTER in Berkeley DB and XML fragments in Berkeley DB
XML.  This module provides the equivalent substrate: a log-structured
store with

* append-only on-disk log of CRC-protected records,
* an in-memory hash index (key → offset) rebuilt on open,
* delete tombstones and offline compaction,
* a pure in-memory mode (``path=None``) for tests and benchmarks that
  measure algorithmic cost without disk noise,
* byte-accurate size accounting (``stored_bytes``) used by the
  Figure 11 experiment (VFILTER database size scaling).

Record layout::

    [u32 crc] [u8 flag] [varint key_len] [varint value_len] [key] [value]

``flag`` distinguishes puts from delete tombstones; the CRC covers
everything after it, so recovery can both detect corruption and truncate
a torn tail from an interrupted write.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Iterator

from ..errors import StorageCorruptionError, StorageError
from .serialize import decode_varint, encode_varint

__all__ = ["KVStore"]

_FLAG_PUT = 0
_FLAG_DEL = 1
_CRC_STRUCT = struct.Struct("<I")


class KVStore:
    """A tiny embedded key-value store with byte keys and values.

    Use as a context manager or call :meth:`close` explicitly.  All
    operations are synchronous; :meth:`flush` forces data to the OS.

    Thread-safe: the file-backed mode shares one OS handle between the
    append path (seek-to-end + write) and the read path (seek-to-offset
    + read), so racing writers could tear a record mid-log and racing
    readers could read from a writer's offset.  A re-entrant lock
    serialises every operation; the in-memory mode takes the same lock
    so ``stored_bytes`` accounting stays consistent under concurrency.
    """

    def __init__(self, path: str | None = None):
        self.path = path  #: state: hard
        #: Serialises every store operation; the log I/O happens under
        #: it by design (see the class docstring).
        #: lock: blocking-allowed
        self._lock = threading.RLock()
        #: key -> (offset, vlen)
        #: guarded-by: _lock
        #: state: soft(derived-from=_handle; rebuild=_recover)
        self._index: dict[bytes, tuple[int, int]] = {}
        #: guarded-by: _lock
        #: state: soft(derived-from=_index, _memory?; rebuild=_recover)
        self._live_bytes = 0
        #: guarded-by: _lock
        self._handle = None  #: state: hard
        #: guarded-by: _lock
        #: state: soft(derived-from=_handle; rebuild=_recover)
        self._length = 0
        if path is not None:
            exists = os.path.exists(path)
            self._handle = open(path, "a+b")
            if exists:
                self._recover()
            self._length = self._handle.seek(0, os.SEEK_END)
        else:
            #: guarded-by: _lock
            self._memory: dict[bytes, bytes] = {}  #: state: hard

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def in_memory(self) -> bool:
        return self.path is None

    # ------------------------------------------------------------------
    # record framing
    # ------------------------------------------------------------------
    @staticmethod
    def _frame(flag: int, key: bytes, value: bytes) -> bytes:
        body = (
            bytes([flag])
            + encode_varint(len(key))
            + encode_varint(len(value))
            + key
            + value
        )
        return _CRC_STRUCT.pack(zlib.crc32(body)) + body

    def _recover(self) -> None:
        """Rebuild the index by scanning the log; truncate a torn tail.

        The log is fully scanned (and the torn tail dropped) *before*
        the first index write, so the index never reflects bytes the
        truncation is about to remove — the derived state is rebuilt
        strictly after its source stops changing.
        """
        assert self._handle is not None
        self._handle.seek(0)
        data = self._handle.read()
        offset = 0
        good_upto = 0
        records: list[tuple[int, bytes, int, int]] = []
        while offset < len(data):
            try:
                record_offset = offset
                if offset + 4 > len(data):
                    raise StorageError("torn record")
                (crc,) = _CRC_STRUCT.unpack_from(data, offset)
                offset += 4
                body_start = offset
                if offset >= len(data):
                    raise StorageError("torn record")
                flag = data[offset]
                offset += 1
                key_len, offset = decode_varint(data, offset)
                value_len, offset = decode_varint(data, offset)
                end = offset + key_len + value_len
                if end > len(data):
                    raise StorageError("torn record")
                if zlib.crc32(data[body_start:end]) != crc:
                    raise StorageCorruptionError(
                        f"bad checksum at offset {record_offset}"
                    )
                if flag not in (_FLAG_PUT, _FLAG_DEL):
                    raise StorageCorruptionError(f"bad flag {flag}")
                key = data[offset : offset + key_len]
                value_offset = offset + key_len
                records.append((flag, key, value_offset, value_len))
                offset = end
                good_upto = end
            except StorageCorruptionError:
                raise
            except StorageError:
                # Torn tail from an interrupted write: drop it.
                break
        if good_upto < len(data):
            self._handle.seek(good_upto)
            self._handle.truncate()
        # Reset the derived state only once the log has reached its
        # final (possibly truncated) form, then replay.
        self._index.clear()
        self._live_bytes = 0
        for flag, key, value_offset, value_len in records:
            if flag == _FLAG_PUT:
                previous = self._index.get(key)
                if previous is not None:
                    self._live_bytes -= previous[1] + len(key)
                self._index[key] = (value_offset, value_len)
                self._live_bytes += value_len + len(key)
            else:
                previous = self._index.pop(key, None)
                freed = previous[1] + len(key) if previous is not None else 0
                self._live_bytes -= freed

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        with self._lock:
            if self.in_memory:
                previous = self._memory.get(key)
                if previous is not None:
                    self._live_bytes -= len(previous) + len(key)
                self._memory[key] = value
                self._live_bytes += len(value) + len(key)
                return
            assert self._handle is not None
            record = self._frame(_FLAG_PUT, key, value)
            self._handle.seek(0, os.SEEK_END)
            offset = self._handle.tell()
            self._handle.write(record)
            self._length = offset + len(record)
            previous = self._index.get(key)
            if previous is not None:
                self._live_bytes -= previous[1] + len(key)
            value_offset = offset + len(record) - len(value)
            self._index[key] = (value_offset, len(value))
            self._live_bytes += len(value) + len(key)

    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key`` or ``None``."""
        with self._lock:
            if self.in_memory:
                return self._memory.get(key)
            entry = self._index.get(key)
            if entry is None:
                return None
            assert self._handle is not None
            offset, length = entry
            self._handle.seek(offset)
            value = self._handle.read(length)
            if len(value) != length:
                raise StorageCorruptionError(f"short read for key {key!r}")
            return value

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns True when it existed."""
        with self._lock:
            if self.in_memory:
                previous = self._memory.pop(key, None)
                if previous is not None:
                    self._live_bytes -= len(previous) + len(key)
                return previous is not None
            if key not in self._index:
                return False
            assert self._handle is not None
            record = self._frame(_FLAG_DEL, key, b"")
            self._handle.seek(0, os.SEEK_END)
            self._handle.write(record)
            self._length = self._handle.tell()
            previous = self._index.pop(key)
            self._live_bytes -= previous[1] + len(key)
            return True

    def __contains__(self, key: bytes) -> bool:
        with self._lock:
            if self.in_memory:
                return key in self._memory
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory) if self.in_memory else len(self._index)

    def keys(self) -> Iterator[bytes]:
        """Iterate over live keys (insertion order for in-memory);
        snapshots the key set, so mutation during iteration is safe."""
        with self._lock:
            source = self._memory if self.in_memory else self._index
            snapshot = list(source.keys())
        yield from snapshot

    def scan_prefix(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` for every key starting with ``prefix``."""
        for key in self.keys():
            if key.startswith(prefix):
                value = self.get(key)
                assert value is not None
                yield key, value

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    # ------------------------------------------------------------------
    # sizing / maintenance
    # ------------------------------------------------------------------
    @property
    def stored_bytes(self) -> int:
        """Live payload bytes (keys + values), the Figure 11 metric."""
        with self._lock:
            return self._live_bytes

    @property
    def file_bytes(self) -> int:
        """On-disk log length, including garbage awaiting compaction."""
        with self._lock:
            if self.in_memory:
                return self._live_bytes
            return self._length

    #: state: mutator
    def compact(self) -> None:
        """Rewrite the log keeping only live records."""
        with self._lock:
            if self.in_memory:
                return
            assert self.path is not None and self._handle is not None
            temp_path = self.path + ".compact"
            entries = [(key, self.get(key)) for key in self.keys()]
            with open(temp_path, "wb") as temp:
                for key, value in entries:
                    assert value is not None
                    temp.write(self._frame(_FLAG_PUT, key, value))
            self._handle.close()
            os.replace(temp_path, self.path)
            self._handle = open(self.path, "a+b")
            self._recover()
            self._length = self._handle.seek(0, os.SEEK_END)
