"""Base-data indexes: the BN and BF baselines of the paper's Figure 8.

* **BN** ("basic node index"): a label → node-list index.  Evaluating a
  query seeds the tree-pattern evaluator with the union of the node
  lists for the query's labels — the paper's "executing queries directly
  on the XML database with basic node index support".
* **BF** ("full index"): a DataGuide-style label-path → node-list index.
  Each pattern node's candidates shrink to the nodes whose concrete
  root-to-node label path matches the pattern's root-to-that-node path
  prefix, which is dramatically tighter — at a much larger index
  footprint (the paper reports 150 MB → 635 MB for a 56.2 MB document).

Both baselines return exactly the same answers as plain evaluation; only
the candidate universes differ.  ``stored_bytes`` estimates the index
footprint so the space/time trade-off of Figure 8's commentary can be
reported.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from ..xmltree.dewey import PackedCode, packed_descendant_range
from ..xmltree.tree import XMLNode, XMLTree
from ..xpath.ast import Axis, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern
from .. import matching

__all__ = [
    "NodeIndex",
    "FullPathIndex",
    "DeweyStreamIndex",
    "match_path_steps",
]


def match_path_steps(steps: list[tuple[Axis, str]], labels: tuple[str, ...]) -> bool:
    """True when a concrete label path satisfies a path-pattern prefix.

    ``steps`` is the root-to-node step list of a pattern node; ``labels``
    a concrete root-to-node label path.  The whole of both sequences
    must be consumed (the pattern node must map to the *last* label).
    """

    memo: dict[tuple[int, int], bool] = {}

    def match(step_index: int, label_index: int) -> bool:
        key = (step_index, label_index)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if step_index == len(steps):
            result = label_index == len(labels)
        elif label_index >= len(labels):
            result = False
        else:
            axis, label = steps[step_index]
            result = False
            if axis is Axis.CHILD:
                if label == WILDCARD or label == labels[label_index]:
                    result = match(step_index + 1, label_index + 1)
            else:
                # '//': the step may land on any remaining position.
                for landing in range(label_index, len(labels)):
                    if label == WILDCARD or label == labels[landing]:
                        if match(step_index + 1, landing + 1):
                            result = True
                            break
        memo[key] = result
        return result

    return match(0, 0)


def _root_steps(node: PatternNode) -> list[tuple[Axis, str]]:
    return [(ancestor.axis, ancestor.label) for ancestor in node.root_path()]


class NodeIndex:
    """BN: label → nodes, built in one pass over the document."""

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree  #: state: hard
        #: state: soft(derived-from=tree; rebuild=__init__)
        self._by_label: dict[str, list[XMLNode]] = {}
        self._total_nodes = 0  #: state: counter
        for node in tree.iter_nodes():
            self._by_label.setdefault(node.label, []).append(node)
            self._total_nodes += 1

    def insert_subtree(self, root: XMLNode) -> None:
        """Patch the index for a subtree appended by maintenance —
        the delta counterpart of the ``__init__`` full build."""
        for node in root.iter_subtree():
            self._by_label.setdefault(node.label, []).append(node)
            self._total_nodes += 1

    def remove_subtree(self, root: XMLNode) -> None:
        """Patch the index for a subtree detached by maintenance."""
        gone_by_label: dict[str, set[int]] = {}
        count = 0
        for node in root.iter_subtree():
            gone_by_label.setdefault(node.label, set()).add(id(node))
            count += 1
        for label, gone in gone_by_label.items():
            kept = [
                node
                for node in self._by_label.get(label, [])
                if id(node) not in gone
            ]
            if kept:
                self._by_label[label] = kept
            else:
                self._by_label.pop(label, None)
        self._total_nodes -= count

    def nodes_with_label(self, label: str) -> list[XMLNode]:
        return self._by_label.get(label, [])

    def universe_for(self, pattern: TreePattern) -> list[XMLNode]:
        """Candidate nodes for evaluating ``pattern``."""
        labels = {node.label for node in pattern.iter_nodes()}
        if WILDCARD in labels:
            return list(self.tree.iter_nodes())
        universe: list[XMLNode] = []
        for label in labels:
            universe.extend(self._by_label.get(label, []))
        return universe

    def evaluate(self, pattern: TreePattern) -> set[XMLNode]:
        """Answer ``pattern`` using the node index (the BN baseline)."""
        return matching.evaluate(pattern, self.tree, self.universe_for(pattern))

    @property
    def stored_bytes(self) -> int:
        """Rough index footprint: one 16-byte entry per posting."""
        postings = sum(len(nodes) for nodes in self._by_label.values())
        labels = sum(len(label) for label in self._by_label)
        return postings * 16 + labels

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<NodeIndex labels={len(self._by_label)} nodes={self._total_nodes}>"


class DeweyStreamIndex:
    """Per-label streams of *packed* Dewey codes, in document order.

    The TJFast baseline's stream source: one pass over an encoded
    document yields, per label, the sorted byte-string codes of its
    nodes (packed order equals document order, so the lists arrive
    presorted from the traversal and the safety sorts below are linear
    passes).  :meth:`descendant_slice` range-scans one stream
    with the packed key range of
    :func:`repro.xmltree.dewey.packed_descendant_range` — the byte-key
    analogue of a B-tree range probe over ``(label, code)``.
    """

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree  #: state: hard
        #: state: soft(derived-from=tree; rebuild=__init__)
        self._by_label: dict[str, list[PackedCode]] = {}
        #: state: soft(derived-from=tree; rebuild=__init__)
        self._all: list[PackedCode] = []
        for node in tree.iter_nodes():
            packed = node.dewey_packed
            if packed is None:
                continue
            self._by_label.setdefault(node.label, []).append(packed)
            self._all.append(packed)
        self._all.sort()
        for stream in self._by_label.values():
            stream.sort()

    def insert_subtree(self, root: XMLNode) -> None:
        """Patch the streams for a freshly encoded appended subtree."""
        for node in root.iter_subtree():
            packed = node.dewey_packed
            if packed is None:
                continue
            insort(self._by_label.setdefault(node.label, []), packed)
            insort(self._all, packed)

    def remove_range(
        self,
        low: PackedCode,
        high: PackedCode,
        labels: frozenset[str] | None = None,
    ) -> None:
        """Drop every code in ``[low, high)`` — the packed range of a
        detached subtree.  ``labels`` (the delta's label set) limits the
        per-label scan; ``None`` scans every stream."""
        streams = (
            [self._by_label.get(label) for label in labels]
            if labels is not None
            else list(self._by_label.values())
        )
        for stream in streams:
            if not stream:
                continue
            del stream[bisect_left(stream, low):bisect_left(stream, high)]
        del self._all[bisect_left(self._all, low):bisect_left(self._all, high)]

    def stream(self, label: str) -> list[PackedCode]:
        """Sorted packed codes of every node labeled ``label``."""
        return self._by_label.get(label, [])

    def all_codes(self) -> list[PackedCode]:
        """Sorted packed codes of every encoded node (wildcard stream)."""
        return self._all

    def descendant_slice(
        self, label: str, ancestor: PackedCode
    ) -> list[PackedCode]:
        """Codes labeled ``label`` inside the subtree of ``ancestor``
        (descendant-or-self), via a packed byte-range bisection."""
        stream = self._by_label.get(label)
        if not stream:
            return []
        low, high = packed_descendant_range(ancestor)
        return stream[bisect_left(stream, low):bisect_right(stream, high)]

    @property
    def stored_bytes(self) -> int:
        """Exact posting payload: the packed code bytes themselves."""
        return sum(len(code) for code in self._all)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DeweyStreamIndex labels={len(self._by_label)} "
            f"codes={len(self._all)}>"
        )


class FullPathIndex:
    """BF: concrete label-path → nodes (DataGuide-style full index)."""

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree  #: state: hard
        #: state: soft(derived-from=tree; rebuild=__init__)
        self._by_path: dict[tuple[str, ...], list[XMLNode]] = {}
        # One pass, carrying the label path down the DFS.
        stack: list[tuple[XMLNode, tuple[str, ...]]] = [
            (tree.root, (tree.root.label,))
        ]
        while stack:
            node, path = stack.pop()
            self._by_path.setdefault(path, []).append(node)
            for child in node.children:
                stack.append((child, path + (child.label,)))

    def insert_subtree(self, root: XMLNode, base: tuple[str, ...]) -> None:
        """Patch the index for an appended subtree.  ``base`` is the
        label path of ``root``'s parent (the delta records it before
        the edit, so this works identically pre- and post-attach)."""
        stack: list[tuple[XMLNode, tuple[str, ...]]] = [
            (root, base + (root.label,))
        ]
        while stack:
            node, path = stack.pop()
            self._by_path.setdefault(path, []).append(node)
            for child in node.children:
                stack.append((child, path + (child.label,)))

    def remove_subtree(self, root: XMLNode, base: tuple[str, ...]) -> None:
        """Patch the index for a detached subtree; ``base`` is the label
        path of the *former* parent (a detached root no longer knows
        its ancestors)."""
        stack: list[tuple[XMLNode, tuple[str, ...]]] = [
            (root, base + (root.label,))
        ]
        while stack:
            node, path = stack.pop()
            nodes = self._by_path.get(path)
            if nodes is not None:
                kept = [kept_node for kept_node in nodes if kept_node is not node]
                if kept:
                    self._by_path[path] = kept
                else:
                    self._by_path.pop(path, None)
            for child in node.children:
                stack.append((child, path + (child.label,)))

    def nodes_on_path(self, path: tuple[str, ...]) -> list[XMLNode]:
        return self._by_path.get(path, [])

    def distinct_paths(self) -> list[tuple[str, ...]]:
        return list(self._by_path)

    def candidates_for_node(self, pattern_node: PatternNode) -> list[XMLNode]:
        """Nodes whose concrete path matches the pattern node's
        root-to-node step prefix."""
        steps = _root_steps(pattern_node)
        result: list[XMLNode] = []
        for path, nodes in self._by_path.items():
            if match_path_steps(steps, path):
                result.extend(nodes)
        return result

    def universe_for(self, pattern: TreePattern) -> list[XMLNode]:
        universe: dict[int, XMLNode] = {}
        for pattern_node in pattern.iter_nodes():
            for node in self.candidates_for_node(pattern_node):
                universe[id(node)] = node
        return list(universe.values())

    def evaluate(self, pattern: TreePattern) -> set[XMLNode]:
        """Answer ``pattern`` using the full index (the BF baseline)."""
        return matching.evaluate(pattern, self.tree, self.universe_for(pattern))

    @property
    def stored_bytes(self) -> int:
        """Rough footprint: postings plus the path dictionary."""
        postings = sum(len(nodes) for nodes in self._by_path.values())
        path_chars = sum(
            sum(len(label) + 1 for label in path) for path in self._by_path
        )
        return postings * 16 + path_chars

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FullPathIndex paths={len(self._by_path)}>"
