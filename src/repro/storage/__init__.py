"""Storage substrate: embedded KV store, fragment store, base-data indexes."""

from .fragments import DEFAULT_FRAGMENT_CAP, Fragment, FragmentStore
from .index import FullPathIndex, NodeIndex, match_path_steps
from .kvstore import KVStore
from .serialize import (
    decode_dewey,
    decode_fragment,
    decode_text,
    decode_varint,
    encode_dewey,
    encode_fragment,
    encode_text,
    encode_varint,
)

__all__ = [
    "DEFAULT_FRAGMENT_CAP",
    "Fragment",
    "FragmentStore",
    "FullPathIndex",
    "KVStore",
    "NodeIndex",
    "decode_dewey",
    "decode_fragment",
    "decode_text",
    "decode_varint",
    "encode_dewey",
    "encode_fragment",
    "encode_text",
    "encode_varint",
    "match_path_steps",
]
