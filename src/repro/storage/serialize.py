"""Compact binary serialization for storage records.

The paper persists VFILTER in Berkeley DB and view fragments in Berkeley
DB XML; this module provides the equivalent wire formats for our
embedded store:

* varint-encoded unsigned integers (LEB128),
* length-prefixed UTF-8 strings,
* extended Dewey codes (varint count + varint components),
* XML subtrees (preorder stream with child counts).

All decoders take ``(buffer, offset)`` and return ``(value,
new_offset)`` so records can be composed without intermediate copies.
"""

from __future__ import annotations

from ..errors import StorageError
from ..xmltree.dewey import DeweyCode
from ..xmltree.tree import XMLNode

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_text",
    "decode_text",
    "encode_dewey",
    "decode_dewey",
    "encode_fragment",
    "decode_fragment",
]


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise StorageError("varint cannot encode negative values")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buffer: bytes, offset: int) -> tuple[int, int]:
    """Decode a LEB128 integer; returns ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(buffer):
            raise StorageError("truncated varint")
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise StorageError("varint too long")


def encode_text(value: str) -> bytes:
    raw = value.encode("utf-8")
    return encode_varint(len(raw)) + raw


def decode_text(buffer: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(buffer, offset)
    end = offset + length
    if end > len(buffer):
        raise StorageError("truncated string")
    return buffer[offset:end].decode("utf-8"), end


def encode_dewey(code: DeweyCode) -> bytes:
    parts = [encode_varint(len(code))]
    parts.extend(encode_varint(component) for component in code)
    return b"".join(parts)


def decode_dewey(buffer: bytes, offset: int) -> tuple[DeweyCode, int]:
    count, offset = decode_varint(buffer, offset)
    components: list[int] = []
    for _ in range(count):
        component, offset = decode_varint(buffer, offset)
        components.append(component)
    return tuple(components), offset


def encode_fragment(root: XMLNode) -> bytes:
    """Serialize a subtree: preorder, each node as
    ``label, text?, attrs, child-count``."""
    parts: list[bytes] = []
    stack = [root]
    while stack:
        node = stack.pop()
        parts.append(encode_text(node.label))
        if node.text is None:
            parts.append(encode_varint(0))
        else:
            parts.append(encode_varint(1))
            parts.append(encode_text(node.text))
        parts.append(encode_varint(len(node.attributes)))
        for name, value in node.attributes.items():
            parts.append(encode_text(name))
            parts.append(encode_text(value))
        parts.append(encode_varint(len(node.children)))
        stack.extend(reversed(node.children))
    return b"".join(parts)


def decode_fragment(buffer: bytes, offset: int = 0) -> tuple[XMLNode, int]:
    """Inverse of :func:`encode_fragment`; returns ``(root, new_offset)``."""

    def read_node(offset: int) -> tuple[XMLNode, int, int]:
        label, offset = decode_text(buffer, offset)
        has_text, offset = decode_varint(buffer, offset)
        text: str | None = None
        if has_text:
            text, offset = decode_text(buffer, offset)
        attr_count, offset = decode_varint(buffer, offset)
        attributes: dict[str, str] = {}
        for _ in range(attr_count):
            name, offset = decode_text(buffer, offset)
            value, offset = decode_text(buffer, offset)
            attributes[name] = value
        child_count, offset = decode_varint(buffer, offset)
        return XMLNode(label, text=text, attributes=attributes), child_count, offset

    root, root_children, offset = read_node(offset)
    # Explicit stack of (node, remaining children) to avoid recursion.
    stack: list[tuple[XMLNode, int]] = [(root, root_children)]
    while stack:
        parent, remaining = stack[-1]
        if remaining == 0:
            stack.pop()
            continue
        stack[-1] = (parent, remaining - 1)
        child, grandchildren, offset = read_node(offset)
        parent.add_child(child)
        if grandchildren:
            stack.append((child, grandchildren))
    return root, offset
