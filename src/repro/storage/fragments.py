"""Materialized view fragments (Berkeley DB XML substitute).

A materialized view stores, for every answer node of its pattern, the
*fragment*: the answer node's whole subtree plus its extended Dewey
code.  The paper caps each view's materialized fragments at 128 KiB
("the same as [19]"), falling back to base-data evaluation for larger
results; :class:`FragmentStore` enforces the same cap.

Fragments are persisted in a :class:`~repro.storage.kvstore.KVStore`
under keys ``f:<view_id>:<seq>`` with a per-view manifest ``m:<view_id>``
recording the fragment count, cap state and total bytes.  Codes are kept
sorted (document order), which the holistic join relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import StorageError
from ..matching.evaluate import SubtreeIndex
from ..xmltree.dewey import DeweyCode, PackedCode, pack_code, packed_prefixes
from ..xmltree.tree import XMLNode
from .kvstore import KVStore
from .serialize import (
    decode_dewey,
    decode_fragment,
    decode_varint,
    encode_dewey,
    encode_fragment,
    encode_varint,
)

__all__ = ["Fragment", "FragmentStore", "DEFAULT_FRAGMENT_CAP"]

#: Paper setting: 128 KiB of materialized fragments per view.
DEFAULT_FRAGMENT_CAP = 128 * 1024


@dataclass(slots=True)
class Fragment:
    """One materialized fragment: root code + lazily decoded subtree.

    The packed root code, its per-depth packed prefixes and a label
    index of the decoded subtree are computed once per Fragment object
    and amortized across queries by the store's warm cache.
    """

    code: DeweyCode
    _payload: bytes
    _root: XMLNode | None = None
    _packed: PackedCode | None = None
    _prefixes: tuple[PackedCode, ...] | None = None
    _subtree: SubtreeIndex | None = None

    @property
    def root(self) -> XMLNode:
        """Decode (once) and return the fragment subtree root."""
        if self._root is None:
            code, offset = decode_dewey(self._payload, 0)
            assert code == self.code
            self._root, _ = decode_fragment(self._payload, offset)
        return self._root

    @property
    def packed(self) -> PackedCode:
        """Packed (order-preserving bytes) form of the root code."""
        if self._packed is None:
            self._packed = pack_code(self.code)
        return self._packed

    @property
    def prefixes(self) -> tuple[PackedCode, ...]:
        """Packed prefixes of the root code, shortest first — the join's
        replacement for per-placement ``code[:k]`` tuple slicing."""
        if self._prefixes is None:
            self._prefixes = packed_prefixes(self.packed)
        return self._prefixes

    def subtree_index(self) -> SubtreeIndex:
        """Label postings over the decoded subtree, built once; drives
        refinement and extraction without rescanning the fragment."""
        if self._subtree is None:
            self._subtree = SubtreeIndex(self.root)
        return self._subtree

    @property
    def stored_bytes(self) -> int:
        return len(self._payload)

    @property
    def payload(self) -> bytes:
        """The exact stored bytes (``encode_dewey(code)`` followed by
        the fragment encoding) — reused verbatim when a delta patch
        leaves this fragment untouched."""
        return self._payload


class FragmentStore:
    """Fragment persistence for a set of materialized views."""

    def __init__(self, store: KVStore | None = None,
                 cap_bytes: int = DEFAULT_FRAGMENT_CAP):
        self.store = store if store is not None else KVStore()  #: state: hard
        self.cap_bytes = cap_bytes  #: state: hard
        #: view_id -> (count, total_bytes, capped)
        #: state: soft(derived-from=store?; rebuild=_load_manifests)
        self._manifests: dict[str, tuple[int, int, bool]] = {}
        # Warm-read cache of Fragment objects (≤ cap_bytes per view, so
        # memory stays bounded) — the analogue of Berkeley DB XML's page
        # cache in the paper's setup.  Callers must not mutate the
        # returned subtrees' structure.
        #: state: soft(derived-from=_manifests; rebuild=fragments)
        self._cache: dict[str, list[Fragment]] = {}
        self._load_manifests()

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def _fragment_key(view_id: str, seq: int) -> bytes:
        return f"f:{view_id}:{seq:08d}".encode()

    @staticmethod
    def _manifest_key(view_id: str) -> bytes:
        return f"m:{view_id}".encode()

    def _load_manifests(self) -> None:
        for key, value in self.store.scan_prefix(b"m:"):
            view_id = key[2:].decode()
            count, offset = decode_varint(value, 0)
            total, offset = decode_varint(value, offset)
            capped, _ = decode_varint(value, offset)
            self._manifests[view_id] = (count, total, bool(capped))

    def _write_manifest(self, view_id: str) -> None:
        count, total, capped = self._manifests[view_id]
        payload = (
            encode_varint(count)
            + encode_varint(total)
            + encode_varint(int(capped))
        )
        self.store.put(self._manifest_key(view_id), payload)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def materialize(
        self,
        view_id: str,
        fragments: Iterator[tuple[DeweyCode, XMLNode]] | list[tuple[DeweyCode, XMLNode]],
    ) -> bool:
        """Store fragments for ``view_id`` (sorted by code).

        Returns True when everything fit under the cap; False when the
        view was *capped* — its stored fragments are discarded and the
        view is marked unmaterializable, mirroring the paper's policy of
        not using views whose un-indexed fragments would exceed the
        budget.
        """
        if view_id in self._manifests:
            raise StorageError(f"view {view_id!r} already materialized")
        entries = sorted(fragments, key=lambda item: item[0])
        total = 0
        payloads: list[bytes] = []
        for code, root in entries:
            payload = encode_dewey(code) + encode_fragment(root)
            total += len(payload)
            if total > self.cap_bytes:
                return self._mark_capped(view_id)
            payloads.append(payload)
        self._store_payloads(view_id, payloads, total)
        return True

    def materialize_encoded(
        self, view_id: str, payloads: list[bytes] | None
    ) -> bool:
        """Store pre-encoded fragment payloads (the parallel
        registration path: workers return exactly the bytes
        :meth:`materialize` would have produced, in code order).

        ``None`` marks the view as capped, mirroring the serial path.
        """
        if view_id in self._manifests:
            raise StorageError(f"view {view_id!r} already materialized")
        if payloads is None:
            return self._mark_capped(view_id)
        total = sum(len(payload) for payload in payloads)
        if total > self.cap_bytes:
            return self._mark_capped(view_id)
        self._store_payloads(view_id, payloads, total)
        return True

    def _mark_capped(self, view_id: str) -> bool:
        self._manifests[view_id] = (0, 0, True)
        # The warm cache is keyed off the manifest; a stale entry here
        # would keep serving fragments for a view that no longer has
        # any.  Today every caller funnels through drop() first, but
        # the eviction must not depend on that remote invariant.
        self._cache.pop(view_id, None)
        self._write_manifest(view_id)
        return False

    def _store_payloads(
        self, view_id: str, payloads: list[bytes], total: int
    ) -> None:
        for seq, payload in enumerate(payloads):
            self.store.put(self._fragment_key(view_id, seq), payload)
        self._manifests[view_id] = (len(payloads), total, False)
        self._cache.pop(view_id, None)
        self._write_manifest(view_id)

    def replace(self, view_id: str, payloads: list[bytes]) -> bool:
        """Swap a view's stored fragments for patched payloads.

        The delta-maintenance counterpart of :meth:`materialize_encoded`
        for an *already materialized* view: ``payloads`` must be the
        encoded fragments in packed-code order, exactly as a fresh
        materialization would lay them out.  Cap accounting matches
        :meth:`materialize` — False marks the view capped and discards
        everything.
        """
        self.drop(view_id)
        total = sum(len(payload) for payload in payloads)
        if total > self.cap_bytes:
            return self._mark_capped(view_id)
        self._store_payloads(view_id, payloads, total)
        return True

    def drop(self, view_id: str) -> None:
        """Remove a view's fragments and manifest."""
        manifest = self._manifests.pop(view_id, None)
        self._cache.pop(view_id, None)
        if manifest is None:
            return
        count = manifest[0]
        for seq in range(count):
            self.store.delete(self._fragment_key(view_id, seq))
        self.store.delete(self._manifest_key(view_id))

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def is_materialized(self, view_id: str) -> bool:
        manifest = self._manifests.get(view_id)
        return manifest is not None and not manifest[2]

    def is_capped(self, view_id: str) -> bool:
        manifest = self._manifests.get(view_id)
        return manifest is not None and manifest[2]

    def fragment_count(self, view_id: str) -> int:
        manifest = self._manifests.get(view_id)
        return manifest[0] if manifest else 0

    def fragment_bytes(self, view_id: str) -> int:
        """Total stored bytes for a view — the heuristic selector's
        'smaller materialized fragments' signal."""
        manifest = self._manifests.get(view_id)
        return manifest[1] if manifest else 0

    def fragments(self, view_id: str) -> list[Fragment]:
        """Return the view's fragments in document (code) order.

        Repeated reads are served from the warm cache; the returned
        subtrees are shared, so treat them as read-only.
        """
        cached = self._cache.get(view_id)
        if cached is not None:
            return cached
        manifest = self._manifests.get(view_id)
        if manifest is None or manifest[2]:
            return []
        result: list[Fragment] = []
        for seq in range(manifest[0]):
            payload = self.store.get(self._fragment_key(view_id, seq))
            if payload is None:
                raise StorageError(
                    f"missing fragment {seq} for view {view_id!r}"
                )
            code, _ = decode_dewey(payload, 0)
            result.append(Fragment(code, payload))
        self._cache[view_id] = result
        return result

    def codes(self, view_id: str) -> list[DeweyCode]:
        """Return just the sorted fragment root codes."""
        return [fragment.code for fragment in self.fragments(view_id)]

    def view_ids(self) -> list[str]:
        return sorted(self._manifests)
