"""Subtree deltas: the unit of change the maintenance engine propagates.

A :class:`SubtreeDelta` captures everything the affected-view resolver
and the fragment patcher need to know about one insert/delete edit
*before* the tree is mutated:

* the edited subtree and how many nodes it holds,
* the packed-Dewey anchor (the parent for inserts, the doomed root for
  deletes) used for fragment-content overlap tests,
* the set of concrete root-to-node label paths of every changed node —
  the probe strings run through the VFILTER NFAs,
* the label set, used to scope sorted-stream range deletes.

Deltas are computed from the *pre-edit* tree (``for_insert`` before the
subtree is attached, ``for_delete`` before the node is detached) so the
label paths reflect the document state the stored fragments were
derived from.  The packed range of an inserted subtree only exists
after Dewey encoding; :meth:`bind_codes` fills it in.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xmltree.dewey import DeweyCode, PackedCode, packed_descendant_range
from ..xmltree.tree import XMLNode

__all__ = ["SubtreeDelta"]


@dataclass(slots=True)
class SubtreeDelta:
    """One insert/delete edit, summarized for scoped propagation."""

    operation: str
    subtree_root: XMLNode
    #: Packed code of the insert parent / the deleted subtree root —
    #: a stored fragment overlaps the edit content iff its packed code
    #: is a byte prefix of this anchor (ancestor-or-self).
    anchor_packed: PackedCode
    #: Label path of the subtree root's parent (pre-edit), so index
    #: patchers can reconstruct full paths after a detach.
    anchor_labels: tuple[str, ...]
    #: Concrete root-to-node label paths of every changed node.
    label_paths: frozenset[tuple[str, ...]]
    #: Labels occurring in the subtree.
    labels: frozenset[str]
    changed_nodes: int
    root_code: DeweyCode | None = None
    root_packed: PackedCode | None = None

    @classmethod
    def for_insert(cls, parent: XMLNode, subtree: XMLNode) -> "SubtreeDelta":
        """Delta for attaching ``subtree`` under ``parent`` (call before
        ``add_child``; codes are bound after encoding)."""
        if parent.dewey_packed is None:
            raise ValueError("insert parent has no Dewey code")
        base = parent.label_path()
        paths, labels, count = cls._walk(subtree, base)
        return cls(
            operation="insert",
            subtree_root=subtree,
            anchor_packed=parent.dewey_packed,
            anchor_labels=base,
            label_paths=paths,
            labels=labels,
            changed_nodes=count,
        )

    @classmethod
    def for_delete(cls, node: XMLNode) -> "SubtreeDelta":
        """Delta for detaching ``node`` (call before ``detach``)."""
        if node.dewey is None or node.dewey_packed is None:
            raise ValueError("delete target has no Dewey code")
        base = node.label_path()[:-1]
        paths, labels, count = cls._walk(node, base)
        return cls(
            operation="delete",
            subtree_root=node,
            anchor_packed=node.dewey_packed,
            anchor_labels=base,
            label_paths=paths,
            labels=labels,
            changed_nodes=count,
            root_code=node.dewey,
            root_packed=node.dewey_packed,
        )

    @staticmethod
    def _walk(
        root: XMLNode, base: tuple[str, ...]
    ) -> tuple[frozenset[tuple[str, ...]], frozenset[str], int]:
        paths: set[tuple[str, ...]] = set()
        labels: set[str] = set()
        count = 0
        stack: list[tuple[XMLNode, tuple[str, ...]]] = [(root, base + (root.label,))]
        while stack:
            node, path = stack.pop()
            paths.add(path)
            labels.add(node.label)
            count += 1
            for child in node.children:
                stack.append((child, path + (child.label,)))
        return frozenset(paths), frozenset(labels), count

    def bind_codes(self, code: DeweyCode, packed: PackedCode) -> None:
        """Record the subtree root's codes once encoding has assigned
        them (insert deltas are built pre-encoding)."""
        self.root_code = code
        self.root_packed = packed

    def packed_range(self) -> tuple[PackedCode, PackedCode]:
        """``[low, high)`` byte range holding exactly the packed codes
        of the edited subtree (descendant-or-self of its root)."""
        if self.root_packed is None:
            raise ValueError("delta codes not bound yet")
        return packed_descendant_range(self.root_packed)
