"""Fragment patching: splice a delta into stored view fragments.

The patcher rewrites a view's :class:`FragmentStore` entry without
re-evaluating the pattern over the whole document.  Three ingredients,
all keyed on packed Dewey byte order (which *is* document order):

* **range delete** — fragments whose packed code falls inside the
  deleted subtree's ``[low, high)`` range are dropped;
* **content re-encode** — fragments rooted at an ancestor-or-self of
  the edit anchor serialize bytes from inside the edited region, so
  their payloads are re-encoded from the live tree (their answer-set
  membership is unchanged — the resolver proved it);
* **splice insert** — for patchable patterns the view is evaluated only
  against the inserted subtree plus its ancestor chain, and the answers
  that land inside the subtree's packed range are encoded and merged.

Everything else reuses the stored payload bytes verbatim.  The merged
payload list is sorted by packed code before storing, which reproduces
exactly the code-ordered layout :meth:`FragmentStore.materialize`
produces — the ``XMVR_CHECK=1`` contract asserts byte-identity against
a fresh re-materialization after every patch.

Cap accounting matches ``materialize``: if the patched payloads exceed
``cap_bytes`` the view is marked capped and the caller evicts it from
the answerable pool.
"""

from __future__ import annotations

from ..errors import EncodingError
from ..matching.evaluate import evaluate
from ..storage.fragments import FragmentStore
from ..storage.serialize import encode_dewey, encode_fragment
from ..xmltree.builder import EncodedDocument
from ..xmltree.dewey import PackedCode, packed_is_prefix
from ..core.view import View
from .delta import SubtreeDelta

__all__ = ["FragmentPatcher"]


class FragmentPatcher:
    """Patch one view's fragments in place for one delta."""

    def __init__(self, fragments: FragmentStore, document: EncodedDocument) -> None:
        self.fragments = fragments
        self.document = document

    def patch(self, view: View, delta: SubtreeDelta, splice: bool) -> bool:
        """Apply ``delta`` to ``view``'s stored fragments.

        ``splice=True`` additionally evaluates the pattern against the
        edited subtree and merges new in-range answers (sound only for
        patchable patterns — the resolver decides).  Returns the same
        cap verdict as ``materialize``: False means the view no longer
        fits and must leave the answerable pool.
        """
        low, high = delta.packed_range()
        merged: list[tuple[PackedCode, bytes]] = []
        for fragment in self.fragments.fragments(view.view_id):
            packed = fragment.packed
            if delta.operation == "delete" and low <= packed < high:
                continue
            if packed_is_prefix(packed, delta.anchor_packed):
                live = self.document.node_by_code(fragment.code)
                if live is None:
                    raise EncodingError(
                        f"fragment root {fragment.code} vanished during patch"
                    )
                merged.append(
                    (packed, encode_dewey(fragment.code) + encode_fragment(live))
                )
            else:
                merged.append((packed, fragment.payload))
        if splice and delta.operation == "insert":
            root = delta.subtree_root
            universe = list(root.iter_subtree()) + list(root.ancestors())
            for node in evaluate(view.pattern, self.document.tree, universe):
                packed_node = node.dewey_packed
                if node.dewey is None or packed_node is None:
                    continue
                if low <= packed_node < high:
                    merged.append(
                        (
                            packed_node,
                            encode_dewey(node.dewey) + encode_fragment(node),
                        )
                    )
        merged.sort(key=lambda item: item[0])
        return self.fragments.replace(
            view.view_id, [payload for _, payload in merged]
        )
