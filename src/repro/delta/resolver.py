"""Affected-view resolution: which views can an edit touch, and how.

The resolver replaces the old coarse label test (``_view_touched``: any
shared label → re-evaluate the view over the whole document) with the
per-view NFAs the VFILTER already maintains.  For every changed node
the delta records its concrete root-to-node label path; running those
paths through :meth:`VFilter.accepting_views` yields exactly the views
with a decomposed path matching some changed node.

Soundness of the *untouched* verdict: the constraint language is
attribute-equality only (no positional predicates), so whether a
pattern embedding exists depends only on the labels, attributes and
ancestry of its image nodes.  If an edit changes a view's answer set,
some embedding gains or loses a node inside the edited subtree ``S``;
walking down from that node, some pattern *leaf* maps into ``S`` (``S``
is a whole subtree, so descendants of a node in ``S`` stay in ``S``).
That leaf's decomposed path in ``D(V)`` matches the concrete label path
of its image, which is one of the delta's probe paths — so the NFA
accepts and the view is flagged.  A probe miss therefore proves the
answer set is unchanged.  Wildcard-only view paths are folded in by
``_wildcard_best`` inside ``accepting_views``.

Views whose answers cannot change may still store *content* that
changed: a fragment rooted at an ancestor-or-self of the edit anchor
serializes bytes from inside ``S``.  Those views are patchable without
re-evaluation (the answer set is proven stable) — only the overlapping
fragments are re-encoded.

Patchable vs rebuild (the fallback predicate): splicing evaluates the
view pattern against the edited subtree plus its ancestor chain only.
That universe is complete exactly for branchless patterns whose answer
node is the pattern leaf (``pattern.is_path() and not ret.children``):
every embedding host is then an ancestor-or-self of the answer node, so
an answer inside ``S`` is witnessed entirely within the universe, and
answers outside ``S`` keep their (unchanged) ancestor chains.  Patterns
with branches below the answer node can gain or lose answers *outside*
the subtree (a predicate branch may be satisfied by the new content),
so they take the sound full-rebuild path instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.vfilter import LayeredVFilter, VFilter
from ..core.view import View
from ..storage.fragments import FragmentStore
from ..xmltree.dewey import packed_is_prefix
from ..xpath.pattern import TreePattern
from .delta import SubtreeDelta

__all__ = [
    "AffectedViews",
    "ViewImpact",
    "pattern_patchable",
    "resolve_affected",
]


def pattern_patchable(pattern: TreePattern) -> bool:
    """True when subtree-scoped splicing is sound for ``pattern``:
    branchless, with the answer node at the leaf."""
    return pattern.is_path() and not pattern.ret.children


@dataclass(frozen=True, slots=True)
class ViewImpact:
    """One affected view and the maintenance mode chosen for it."""

    view: View
    #: ``"patch"`` or ``"rebuild"``.
    mode: str
    #: Patch flavor: ``True`` re-evaluates the edited subtree and
    #: splices answers; ``False`` only re-encodes overlapping fragment
    #: content (the answer set is proven unchanged).
    splice: bool
    reason: str


@dataclass(frozen=True, slots=True)
class AffectedViews:
    """Resolver verdict for one delta."""

    impacts: tuple[ViewImpact, ...]
    untouched: tuple[str, ...]

    def affected_ids(self) -> frozenset[str]:
        return frozenset(impact.view.view_id for impact in self.impacts)


def resolve_affected(
    delta: SubtreeDelta,
    vfilter: VFilter | LayeredVFilter,
    fragments: FragmentStore,
    views: list[View],
) -> AffectedViews:
    """Split ``views`` into untouched / patchable / rebuild for ``delta``."""
    answer_hits: set[str] = set()
    for labels in delta.label_paths:
        answer_hits |= vfilter.accepting_views(labels)
    impacts: list[ViewImpact] = []
    untouched: list[str] = []
    for view in views:
        answer_hit = view.view_id in answer_hits
        content_hit = any(
            packed_is_prefix(fragment.packed, delta.anchor_packed)
            for fragment in fragments.fragments(view.view_id)
        )
        if not answer_hit and not content_hit:
            untouched.append(view.view_id)
        elif fragments.is_capped(view.view_id):
            # A capped view stores nothing to patch; a full rebuild may
            # also un-cap it if the edit shrank its fragments.
            impacts.append(ViewImpact(view, "rebuild", False, "capped-view"))
        elif not answer_hit:
            impacts.append(
                ViewImpact(view, "patch", False, "fragment-content-overlap")
            )
        elif pattern_patchable(view.pattern):
            impacts.append(ViewImpact(view, "patch", True, "answers-in-subtree"))
        else:
            impacts.append(ViewImpact(view, "rebuild", False, "branching-pattern"))
    return AffectedViews(impacts=tuple(impacts), untouched=tuple(untouched))
