"""Delta propagation: incremental view maintenance under edits.

The subsystem turns a subtree insert/delete into scoped, patch-in-place
upkeep of the materialized views and caches:

* :mod:`repro.delta.delta` — :class:`SubtreeDelta`, the pre-mutation
  summary of one edit (packed Dewey range + concrete label paths);
* :mod:`repro.delta.resolver` — splits the view pool into untouched /
  patchable / rebuild by running the delta through the VFILTER NFAs;
* :mod:`repro.delta.patcher` — splices patchable views' fragments by
  packed-Dewey range, byte-identical to a full re-materialization;
* :mod:`repro.delta.maintenance` — :class:`DocumentEditor`, the write
  path tying it together with scoped plan-cache invalidation and
  base-index patching.
"""

from .delta import SubtreeDelta
from .maintenance import DocumentEditor, MaintenanceReport, ViewMaintenance
from .patcher import FragmentPatcher
from .resolver import (
    AffectedViews,
    ViewImpact,
    pattern_patchable,
    resolve_affected,
)

__all__ = [
    "AffectedViews",
    "DocumentEditor",
    "FragmentPatcher",
    "MaintenanceReport",
    "SubtreeDelta",
    "ViewImpact",
    "ViewMaintenance",
    "pattern_patchable",
    "resolve_affected",
]
