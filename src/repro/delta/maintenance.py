"""Delta-propagation maintenance: scoped upkeep under document edits.

The paper materializes views once; a production deployment also needs
them to survive inserts and deletes on the base document.  Earlier
revisions treated every edit as a global event — blanket plan-cache
invalidation plus full re-evaluation of every label-touched view over
the entire document.  This module replaces that with delta propagation:

1. the edit is summarized as a :class:`SubtreeDelta` *before* the tree
   mutates (packed Dewey anchor + concrete label paths);
2. the resolver runs the delta's paths through the epoch's VFILTER
   NFAs and splits views into untouched / patchable / rebuild
   (:mod:`repro.delta.resolver` proves the untouched verdict sound);
3. patchable views are spliced in place by packed-Dewey range
   (:mod:`repro.delta.patcher`); only branching patterns pay a full
   re-evaluation;
4. the plan cache is invalidated *scoped*: only plans whose recorded
   view dependencies intersect the affected set (plus plans with no
   recorded filter provenance) are dropped — the single invalidation
   point on the edit path is the first statement of
   :meth:`DocumentEditor._apply_impacts`;
5. the lazy base-data indexes (node / path / stream) are patched for
   the edited range instead of being reset to ``None``.

Extended Dewey codes make the encoding side cheap: inserts append the
subtree as the parent's last child so *no existing code changes*, and
deletes remove codes without renumbering.  Inserts whose labels violate
the mined schema still fall back to a full re-encode + blanket rebuild
(the FST alphabet itself changes), as do encode failures mid-edit.

Maintenance deliberately does **not** publish a new registry epoch: the
epoch's per-epoch ``PlanCache`` must survive the edit so that scoped
invalidation can retain unaffected plans.  Readers pinned on the
current epoch observe the patch only after the writer gate releases
them (the service layer's ``SnapshotEngine.maintain`` drains readers
first), which is what makes an edit a single linearization point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core import contracts
from ..core.system import MaterializedViewSystem
from ..core.view import View
from ..errors import EncodingError, SchemaError
from ..matching.evaluate import evaluate
from ..obs import current_trace
from ..xmltree.builder import encode_tree
from ..xmltree.dewey import (
    DeweyCode,
    assign_child_component,
    pack_component,
)
from ..xmltree.tree import XMLNode
from .delta import SubtreeDelta
from .patcher import FragmentPatcher
from .resolver import AffectedViews, resolve_affected

__all__ = ["MaintenanceReport", "ViewMaintenance", "DocumentEditor"]


@dataclass(slots=True)
class ViewMaintenance:
    """How one affected view was maintained."""

    view_id: str
    #: ``"patched"`` or ``"rebuilt"``.
    mode: str
    reason: str
    splice: bool
    seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "view_id": self.view_id,
            "mode": self.mode,
            "reason": self.reason,
            "splice": self.splice,
            "seconds": self.seconds,
        }


@dataclass(slots=True)
class MaintenanceReport:
    """What one update did."""

    operation: str
    changed_nodes: int
    affected_views: list[str] = field(default_factory=list)
    skipped_views: list[str] = field(default_factory=list)
    full_reencode: bool = False
    #: Per-view mode + timing, in maintenance order.
    views: list[ViewMaintenance] = field(default_factory=list)
    #: Scoped plan-cache invalidation outcome.
    plans_dropped: int = 0
    plans_retained: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "operation": self.operation,
            "changed_nodes": self.changed_nodes,
            "affected_views": list(self.affected_views),
            "skipped_views": list(self.skipped_views),
            "full_reencode": self.full_reencode,
            "views": [view.as_dict() for view in self.views],
            "plans_dropped": self.plans_dropped,
            "plans_retained": self.plans_retained,
            "seconds": self.seconds,
        }


class DocumentEditor:
    """Apply base-document updates and keep materialized views fresh."""

    def __init__(self, system: MaterializedViewSystem) -> None:
        self.system = system  #: state: hard
        registry = system.telemetry.registry
        self._clock = system.telemetry.clock  #: state: hard
        self._patcher = FragmentPatcher(system.fragments, system.document)  #: state: hard
        #: state: counter
        self._ops_total = registry.counter(
            "repro_maintenance_total",
            "Document maintenance operations applied.",
            ("op",),
        )
        #: state: counter
        self._ops_hist = registry.histogram(
            "repro_maintenance_seconds",
            "End-to-end maintenance operation latency (edit + scoped "
            "view upkeep).",
            ("op",),
        )
        #: state: counter
        self._mode_total = registry.counter(
            "repro_maintenance_ops_total",
            "Maintenance operations by propagation mode (delta = scoped "
            "patch path, full = schema-violating re-encode).",
            ("op", "mode"),
        )
        #: state: counter
        self._views_total = registry.counter(
            "repro_maintenance_views_total",
            "Per-view maintenance outcomes (patched / rebuilt / "
            "untouched).",
            ("mode",),
        )
        #: state: counter
        self._stage_hist = registry.histogram(
            "repro_maintenance_delta_seconds",
            "Delta-propagation stage latency.",
            ("stage",),
        )

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    #: state: mutator
    def insert_subtree(
        self, parent_code: DeweyCode, subtree: XMLNode
    ) -> MaintenanceReport:
        """Attach ``subtree`` as the last child of the node at
        ``parent_code`` and patch affected views."""
        started = self._clock.monotonic()
        with current_trace().span("maintain", op="insert") as span:
            report = self._insert_subtree(parent_code, subtree)
            span.attributes["affected_views"] = len(report.affected_views)
            span.attributes["full_reencode"] = report.full_reencode
        report.seconds = self._clock.monotonic() - started
        self._ops_total.inc(1.0, "insert")
        self._mode_total.inc(
            1.0, "insert", "full" if report.full_reencode else "delta"
        )
        self._ops_hist.observe(report.seconds, "insert")
        return report

    #: state: mutator
    def delete_subtree(self, code: DeweyCode) -> MaintenanceReport:
        """Remove the subtree rooted at ``code`` and patch affected
        views.  The document root cannot be deleted."""
        started = self._clock.monotonic()
        with current_trace().span("maintain", op="delete") as span:
            report = self._delete_subtree(code)
            span.attributes["affected_views"] = len(report.affected_views)
        report.seconds = self._clock.monotonic() - started
        self._ops_total.inc(1.0, "delete")
        self._mode_total.inc(1.0, "delete", "delta")
        self._ops_hist.observe(report.seconds, "delete")
        return report

    # ------------------------------------------------------------------
    # edit flows
    # ------------------------------------------------------------------
    def _insert_subtree(
        self, parent_code: DeweyCode, subtree: XMLNode
    ) -> MaintenanceReport:
        document = self.system.document
        parent = document.node_by_code(parent_code)
        if parent is None:
            raise EncodingError(f"no node at code {parent_code}")
        if subtree.parent is not None:
            raise ValueError("subtree is already attached")

        if not self._schema_admits(parent, subtree):
            # New parent/child label pairs: the schema (and with it
            # every code) must be rebuilt — no scoped path exists.
            return self._insert_full(parent, subtree)

        delta = SubtreeDelta.for_insert(parent, subtree)
        impacts = self._resolve(delta)
        parent.add_child(subtree)
        try:
            self._encode_new_subtree(parent, subtree)
            assert subtree.dewey is not None
            assert subtree.dewey_packed is not None
            delta.bind_codes(subtree.dewey, subtree.dewey_packed)
            self._patch_base_state(delta)
        except BaseException:
            # The tree already holds the new subtree; cached plans and
            # base-data indexes must not outlive a failed encode.
            self._invalidate_document()
            raise
        return self._apply_impacts(delta, impacts)

    def _insert_full(
        self, parent: XMLNode, subtree: XMLNode
    ) -> MaintenanceReport:
        """Schema-violating insert: re-encode everything, rebuild all."""
        size = subtree.subtree_size()
        parent.add_child(subtree)
        try:
            self._full_reencode()
        except BaseException:
            self._invalidate_document()
            raise
        report = self._rebuild_all("insert", size)
        report.full_reencode = True
        return report

    def _delete_subtree(self, code: DeweyCode) -> MaintenanceReport:
        document = self.system.document
        node = document.node_by_code(code)
        if node is None:
            raise EncodingError(f"no node at code {code}")
        if node.parent is None:
            raise ValueError("cannot delete the document root")
        delta = SubtreeDelta.for_delete(node)
        impacts = self._resolve(delta)
        node.detach()
        try:
            self._patch_base_state(delta)
        except BaseException:
            self._invalidate_document()
            raise
        return self._apply_impacts(delta, impacts)

    # ------------------------------------------------------------------
    # delta propagation
    # ------------------------------------------------------------------
    def _resolve(self, delta: SubtreeDelta) -> AffectedViews:
        """Classify views against the *pre-edit* document state."""
        system = self.system
        epoch = system.current_epoch()
        started = self._clock.monotonic()
        impacts = resolve_affected(
            delta, epoch.vfilter, system.fragments, list(epoch.materialized)
        )
        self._stage_hist.observe(self._clock.monotonic() - started, "resolve")
        return impacts

    def _apply_impacts(
        self, delta: SubtreeDelta, impacts: AffectedViews
    ) -> MaintenanceReport:
        """Maintain each affected view and return the report.

        The first statement is the edit path's *single* plan-cache
        invalidation: scoped to the affected view set (plans depending
        only on untouched views stay warm).
        """
        system = self.system
        dropped, retained = system._invalidate_plans(impacts.affected_ids())
        report = MaintenanceReport(delta.operation, delta.changed_nodes)
        report.plans_dropped = dropped
        report.plans_retained = retained
        report.skipped_views.extend(impacts.untouched)
        if impacts.untouched:
            self._views_total.inc(float(len(impacts.untouched)), "untouched")
        capped: list[str] = []
        for impact in impacts.impacts:
            view_id = impact.view.view_id
            report.affected_views.append(view_id)
            # Coverage depends only on the patterns, but compensation
            # plans embed fragment statistics — evict for every
            # affected view, content-only included.
            system._memo.evict_views([view_id])
            started = self._clock.monotonic()
            patched = impact.mode == "patch"
            try:
                if patched:
                    with current_trace().span("delta_patch", view=view_id):
                        fits = self._patcher.patch(
                            impact.view, delta, impact.splice
                        )
                else:
                    with current_trace().span("delta_rebuild", view=view_id):
                        system.fragments.drop(view_id)
                        answers = evaluate(
                            impact.view.pattern, system.document.tree
                        )
                        fits = system.fragments.materialize(
                            view_id,
                            [
                                (n.dewey, n)
                                for n in answers
                                if n.dewey is not None
                            ],
                        )
            except BaseException:
                # The fragments may be gone or torn; a view left in the
                # answerable pool would rewrite queries against nothing
                # and return wrong answers.
                self._evict_views([view_id])
                raise
            elapsed = self._clock.monotonic() - started
            mode = "patched" if patched else "rebuilt"
            report.views.append(
                ViewMaintenance(view_id, mode, impact.reason, impact.splice, elapsed)
            )
            self._views_total.inc(1.0, mode)
            self._stage_hist.observe(elapsed, "patch" if patched else "rebuild")
            if not fits:
                capped.append(view_id)
            elif patched and contracts.enabled():
                contracts.check_patched_fragments(
                    system, impact.view, f"{delta.operation} patch"
                )
        if capped:
            # Views that outgrew the cap leave the answerable pool; the
            # filter is rebuilt over the remaining ones.
            self._evict_views(capped)
        return report

    def _patch_base_state(self, delta: SubtreeDelta) -> None:
        """Patch the code lookup and lazy base-data indexes for the
        edited range instead of resetting them to ``None``."""
        system = self.system
        document = system.document
        root = delta.subtree_root
        started = self._clock.monotonic()
        document.tree.invalidate_indexes()
        if delta.operation == "insert":
            document.note_subtree(root)
        else:
            document.forget_subtree(root)
        # Patching races with a concurrent lazy build in
        # ``_ensure_node_index`` & co., so the same lock applies.
        with system._index_lock:
            node_index = system._node_index
            path_index = system._path_index
            stream_index = system._stream_index
            if node_index is not None:
                if delta.operation == "insert":
                    node_index.insert_subtree(root)
                else:
                    node_index.remove_subtree(root)
            if path_index is not None:
                if delta.operation == "insert":
                    path_index.insert_subtree(root, delta.anchor_labels)
                else:
                    path_index.remove_subtree(root, delta.anchor_labels)
            if stream_index is not None:
                if delta.operation == "insert":
                    stream_index.insert_subtree(root)
                else:
                    low, high = delta.packed_range()
                    stream_index.remove_range(low, high, delta.labels)
            # Reassign unconditionally: the in-place patches above sit
            # inside conditionals, and the derived-state walker (L15)
            # only credits writes it can prove happen on every path.
            system._node_index = node_index
            system._path_index = path_index
            system._stream_index = stream_index
        self._stage_hist.observe(
            self._clock.monotonic() - started, "base_patch"
        )

    def _rebuild_all(
        self, operation: str, changed_nodes: int
    ) -> MaintenanceReport:
        """Blanket fallback: re-materialize every view (full re-encode
        changed every code, so nothing is patchable)."""
        system = self.system
        system._invalidate_plans()
        report = MaintenanceReport(operation, changed_nodes)
        capped: list[str] = []
        for view in list(system.materialized_views()):
            report.affected_views.append(view.view_id)
            system._memo.evict_views([view.view_id])
            started = self._clock.monotonic()
            system.fragments.drop(view.view_id)
            try:
                answers = evaluate(view.pattern, system.document.tree)
                fits = system.fragments.materialize(
                    view.view_id,
                    [(n.dewey, n) for n in answers if n.dewey is not None],
                )
            except BaseException:
                self._evict_views([view.view_id])
                raise
            elapsed = self._clock.monotonic() - started
            report.views.append(
                ViewMaintenance(
                    view.view_id, "rebuilt", "full-reencode", False, elapsed
                )
            )
            self._views_total.inc(1.0, "rebuilt")
            self._stage_hist.observe(elapsed, "rebuild")
            if not fits:
                capped.append(view.view_id)
        if capped:
            self._evict_views(capped)
        return report

    # ------------------------------------------------------------------
    # encoding internals (unchanged from the pre-delta editor)
    # ------------------------------------------------------------------
    def _schema_admits(self, parent: XMLNode, subtree: XMLNode) -> bool:
        schema = self.system.document.schema
        try:
            schema.child_position(parent.label, subtree.label)
            for node in subtree.iter_subtree():
                for child in node.children:
                    schema.child_position(node.label, child.label)
        except SchemaError:
            return False
        return True

    def _encode_new_subtree(self, parent: XMLNode, subtree: XMLNode) -> None:
        """Assign codes to the appended subtree (existing codes keep)."""
        schema = self.system.document.schema
        siblings = parent.children
        # The last *coded* existing sibling seeds component assignment;
        # uncoded siblings (nodes attached directly to the tree, never
        # encoded) must be skipped, not indexed into.
        previous: int | None = None
        for sibling in siblings[:-1]:
            if sibling.dewey is not None:
                previous = sibling.dewey[-1]
        assert parent.dewey is not None
        assert parent.dewey_packed is not None
        component = assign_child_component(
            schema, parent.label, subtree.label, previous
        )
        subtree.dewey = parent.dewey + (component,)
        subtree.dewey_packed = parent.dewey_packed + pack_component(component)
        stack = [subtree]
        while stack:
            current = stack.pop()
            last: int | None = None
            for child in current.children:
                assert current.dewey is not None
                assert current.dewey_packed is not None
                child_component = assign_child_component(
                    schema, current.label, child.label, last
                )
                last = child_component
                child.dewey = current.dewey + (child_component,)
                child.dewey_packed = (
                    current.dewey_packed + pack_component(child_component)
                )
                stack.append(child)

    def _full_reencode(self) -> None:
        document = self.system.document
        fresh = encode_tree(document.tree)
        document.schema = fresh.schema
        document.fst = fresh.fst
        self._invalidate_document()

    def _invalidate_document(self) -> None:
        """Blanket fallback invalidation (full re-encode and failed
        scoped edits): every derived artifact of the document goes."""
        document = self.system.document
        document.tree.invalidate_indexes()
        document.invalidate()
        # Base-data indexes are stale too.  Resetting them races with a
        # concurrent lazy build in ``_ensure_node_index`` & co., so the
        # writes must take the same lock the builders hold.
        with self.system._index_lock:
            self.system._node_index = None
            self.system._path_index = None
            self.system._stream_index = None
        # Cached plans embed rewrite results over the old document;
        # drop them here rather than relying on a later rebuild pass.
        self.system._invalidate_plans()

    def _evict_views(self, view_ids: list[str]) -> None:
        """Remove views from the answerable pool and rebuild VFILTER."""
        system = self.system
        system._invalidate_plans()
        system._memo.evict_views(view_ids)
        system._evict_materialized(view_ids)
