"""Workload generators: XMark-like documents, YFilter-like queries."""

from .querygen import QueryGenConfig, QueryGenerator, generate_positive
from .xmark import XMARK_REGIONS, generate_xmark, generate_xmark_document

__all__ = [
    "QueryGenConfig",
    "QueryGenerator",
    "XMARK_REGIONS",
    "generate_positive",
    "generate_xmark",
    "generate_xmark_document",
]
