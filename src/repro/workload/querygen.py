"""YFilter-style XPath query generator (paper Section VI).

The paper generates workloads with the YFilter query generator,
parameterized by ``max_depth``, the probabilities of wildcards
(``prob_wild``) and descendant edges (``prob_desc``), the number of
predicates (``num_pred``) and of nested paths (``num_nestedpath``).
This module reproduces that surface:

* the main path is a schema-guided random walk (so generated queries are
  structurally plausible for the document);
* each step independently becomes ``//`` with ``prob_desc`` and ``*``
  with ``prob_wild``;
* ``num_pred`` attribute predicates and ``num_nestedpath`` nested-path
  branches are attached at random steps;
* :func:`generate_positive` post-filters to non-empty-result queries,
  as the paper does ("we wrote a program to find positive queries").

All randomness flows through one :class:`random.Random` instance, so
workloads are reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..matching.evaluate import evaluate
from ..xmltree.schema import DocumentSchema
from ..xmltree.tree import XMLTree
from ..xpath.ast import Axis, AttributeConstraint, WILDCARD
from ..xpath.pattern import PatternNode, TreePattern

__all__ = ["QueryGenConfig", "QueryGenerator", "generate_positive"]


@dataclass(frozen=True, slots=True)
class QueryGenConfig:
    """Generator knobs, named after the paper's parameters."""

    max_depth: int = 4
    prob_wild: float = 0.2
    prob_desc: float = 0.2
    num_pred: int = 1
    num_nestedpath: int = 1
    nested_depth: int = 2
    #: attribute names eligible for predicates, with example values
    attributes: tuple[str, ...] = ()


class QueryGenerator:
    """Schema-guided random tree-pattern generator."""

    def __init__(
        self,
        schema: DocumentSchema,
        config: QueryGenConfig | None = None,
        seed: int = 0,
    ):
        self.schema = schema
        self.config = config or QueryGenConfig()
        self.rng = random.Random(seed)
        self._descendants = self._descendant_closure()

    def _descendant_closure(self) -> dict[str, tuple[str, ...]]:
        """label → all labels reachable strictly below it."""
        closure: dict[str, set[str]] = {}

        def reach(label: str, seen: set[str]) -> set[str]:
            if label in closure:
                return closure[label]
            if label in seen:
                return set()
            seen.add(label)
            try:
                children = self.schema.child_labels(label)
            except Exception:
                children = ()
            result: set[str] = set()
            for child in children:
                result.add(child)
                result |= reach(child, seen)
            closure[label] = result
            return result

        for label in self.schema.labels():
            reach(label, set())
        return {label: tuple(sorted(labels)) for label, labels in closure.items()}

    # ------------------------------------------------------------------
    def _next_label(self, current: str, axis: Axis) -> str | None:
        """Pick a plausible next label below ``current`` for ``axis``."""
        if axis is Axis.CHILD:
            try:
                options = self.schema.child_labels(current)
            except Exception:
                options = ()
        else:
            options = self._descendants.get(current, ())
        if not options:
            return None
        return self.rng.choice(options)

    def _random_axis(self) -> Axis:
        return (
            Axis.DESCENDANT
            if self.rng.random() < self.config.prob_desc
            else Axis.CHILD
        )

    def _maybe_wild(self, label: str) -> str:
        return WILDCARD if self.rng.random() < self.config.prob_wild else label

    def _grow_chain(
        self, start: PatternNode, start_label: str, depth: int
    ) -> None:
        """Append a random chain of up to ``depth`` steps below ``start``."""
        node, concrete = start, start_label
        for _ in range(depth):
            axis = self._random_axis()
            label = self._next_label(concrete, axis)
            if label is None:
                break
            node = node.new_child(self._maybe_wild(label), axis)
            concrete = label

    def generate(self) -> TreePattern:
        """Generate one tree pattern."""
        config = self.config
        # Main path: start at the root or (with prob_desc) anywhere.
        if self.rng.random() < config.prob_desc:
            start_label = self.rng.choice(sorted(self.schema.labels()))
            root = PatternNode(self._maybe_wild(start_label), Axis.DESCENDANT)
        else:
            start_label = self.schema.root_label
            root = PatternNode(self._maybe_wild(start_label), Axis.CHILD)

        spine: list[tuple[PatternNode, str]] = [(root, start_label)]
        node, concrete = root, start_label
        depth = self.rng.randint(1, max(1, config.max_depth - 1))
        for _ in range(depth):
            axis = self._random_axis()
            label = self._next_label(concrete, axis)
            if label is None:
                break
            node = node.new_child(self._maybe_wild(label), axis)
            concrete = label
            spine.append((node, concrete))

        # Nested paths (branch predicates).
        for _ in range(config.num_nestedpath):
            host, host_label = self.rng.choice(spine)
            self._grow_chain(
                host, host_label, self.rng.randint(1, config.nested_depth)
            )

        # Attribute predicates.
        if config.attributes:
            for _ in range(config.num_pred):
                host, _host_label = self.rng.choice(spine)
                name = self.rng.choice(config.attributes)
                # The pattern under construction is private to this
                # generator; it is never interned before being returned.
                host.constraints = host.constraints + (  # xmvrlint: disable=L2
                    AttributeConstraint(name),
                )

        ret = spine[-1][0]
        return TreePattern(root, ret)

    def generate_many(self, count: int) -> list[TreePattern]:
        return [self.generate() for _ in range(count)]


def generate_positive(
    generator: QueryGenerator,
    tree: XMLTree,
    count: int,
    max_attempts_factor: int = 50,
) -> list[TreePattern]:
    """Generate ``count`` *positive* queries (non-empty result on
    ``tree``), the paper's workload post-filter.

    Raises ``RuntimeError`` if the attempt budget is exhausted — a sign
    the generator configuration does not fit the document.
    """
    accepted: list[TreePattern] = []
    attempts = 0
    budget = count * max_attempts_factor
    while len(accepted) < count:
        attempts += 1
        if attempts > budget:
            raise RuntimeError(
                f"could not find {count} positive queries in {budget} attempts"
            )
        pattern = generator.generate()
        if evaluate(pattern, tree):
            accepted.append(pattern)
    return accepted
