"""XMark-like document generator.

The paper evaluates on a 56.2 MB document from the XMark benchmark
generator.  XMark's binary is unavailable offline, so this module
generates documents from the same DTD skeleton — ``site`` with
``regions`` / ``categories`` / ``catgraph`` / ``people`` /
``open_auctions`` / ``closed_auctions`` — including XMark's signature
features that exercise the interesting code paths:

* recursive content (``description → parlist → listitem → parlist …``),
  which makes ``//`` steps and the FST's cycles non-trivial;
* shared label names at different depths (``name``, ``date``,
  ``quantity``, ``description`` appear under many parents), which makes
  path-based filtering meaningful;
* attributes (``@id``, ``@category``, ``@person``, ``@featured``) for
  the comparison-predicate extension.

``scale=1.0`` produces roughly the same *shape* at laptop size (a few
thousand items/persons/auctions scale linearly).  Generation is fully
deterministic for a given ``(scale, seed)``.
"""

from __future__ import annotations

import random

from ..xmltree.builder import EncodedDocument, encode_tree
from ..xmltree.tree import XMLNode, XMLTree

__all__ = ["generate_xmark", "generate_xmark_document", "XMARK_REGIONS"]

XMARK_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_WORDS = (
    "gold", "silver", "vintage", "rare", "classic", "mint", "original",
    "signed", "limited", "edition", "antique", "modern", "large", "small",
    "heavy", "light", "blue", "red", "green", "portable", "electric",
)

_CITIES = ("cairo", "tokyo", "sydney", "berlin", "boston", "lima", "oslo")
_COUNTRIES = ("egypt", "japan", "australia", "germany", "usa", "peru")


def _words(rng: random.Random, count: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(count))


def _text_node(rng: random.Random) -> XMLNode:
    return XMLNode("text", text=_words(rng, rng.randint(2, 6)))


def _parlist(rng: random.Random, depth: int) -> XMLNode:
    """Recursive parlist/listitem structure (XMark's signature)."""
    parlist = XMLNode("parlist")
    for _ in range(rng.randint(1, 3)):
        listitem = parlist.new_child("listitem")
        if depth > 0 and rng.random() < 0.35:
            listitem.add_child(_parlist(rng, depth - 1))
        else:
            listitem.add_child(_text_node(rng))
    return parlist


def _description(rng: random.Random) -> XMLNode:
    description = XMLNode("description")
    if rng.random() < 0.5:
        description.add_child(_parlist(rng, rng.randint(0, 2)))
    else:
        description.add_child(_text_node(rng))
    return description


def _item(rng: random.Random, item_id: int, category_count: int) -> XMLNode:
    item = XMLNode("item", attributes={"id": f"item{item_id}"})
    if rng.random() < 0.1:
        item.attributes["featured"] = "yes"
    item.new_child("location", text=rng.choice(_COUNTRIES))
    item.new_child("quantity", text=str(rng.randint(1, 5)))
    item.new_child("name", text=_words(rng, 2))
    payment = item.new_child("payment", text="Creditcard")
    del payment  # single text element; kept for schema shape
    item.add_child(_description(rng))
    item.new_child("shipping", text="Will ship internationally")
    for _ in range(rng.randint(1, 2)):
        item.new_child(
            "incategory",
            attributes={"category": f"category{rng.randrange(category_count)}"},
        )
    mailbox = item.new_child("mailbox")
    for _ in range(rng.randint(0, 2)):
        mail = mailbox.new_child("mail")
        mail.new_child("from", text=_words(rng, 1))
        mail.new_child("to", text=_words(rng, 1))
        mail.new_child("date", text=f"{rng.randint(1,12):02d}/{rng.randint(1,28):02d}/2001")
        mail.add_child(_text_node(rng))
    return item


def _person(rng: random.Random, person_id: int) -> XMLNode:
    person = XMLNode("person", attributes={"id": f"person{person_id}"})
    person.new_child("name", text=_words(rng, 2))
    person.new_child("emailaddress", text=f"mailto:u{person_id}@example.com")
    if rng.random() < 0.5:
        person.new_child("phone", text=f"+1 ({rng.randint(100,999)}) 555-01{person_id % 100:02d}")
    if rng.random() < 0.6:
        address = person.new_child("address")
        address.new_child("street", text=f"{rng.randint(1,99)} {_words(rng,1)} st")
        address.new_child("city", text=rng.choice(_CITIES))
        address.new_child("country", text=rng.choice(_COUNTRIES))
        address.new_child("zipcode", text=str(rng.randint(10000, 99999)))
    if rng.random() < 0.7:
        profile = person.new_child(
            "profile", attributes={"income": str(rng.randint(20000, 120000))}
        )
        for _ in range(rng.randint(0, 3)):
            profile.new_child(
                "interest",
                attributes={"category": f"category{rng.randrange(20)}"},
            )
        if rng.random() < 0.5:
            profile.new_child("education", text="Graduate School")
        if rng.random() < 0.8:
            profile.new_child("gender", text=rng.choice(("male", "female")))
        profile.new_child("business", text=rng.choice(("Yes", "No")))
        if rng.random() < 0.6:
            profile.new_child("age", text=str(rng.randint(18, 75)))
    if rng.random() < 0.4:
        watches = person.new_child("watches")
        for _ in range(rng.randint(1, 3)):
            watches.new_child(
                "watch",
                attributes={"open_auction": f"open_auction{rng.randrange(200)}"},
            )
    return person


def _bidder(rng: random.Random) -> XMLNode:
    bidder = XMLNode("bidder")
    bidder.new_child("date", text=f"{rng.randint(1,12):02d}/{rng.randint(1,28):02d}/2001")
    bidder.new_child("time", text=f"{rng.randint(0,23):02d}:{rng.randint(0,59):02d}:00")
    bidder.new_child("personref", attributes={"person": f"person{rng.randrange(500)}"})
    bidder.new_child("increase", text=f"{rng.randint(1, 40) * 1.5:.2f}")
    return bidder


def _annotation(rng: random.Random) -> XMLNode:
    annotation = XMLNode("annotation")
    annotation.new_child("author", attributes={"person": f"person{rng.randrange(500)}"})
    annotation.add_child(_description(rng))
    annotation.new_child("happiness", text=str(rng.randint(1, 10)))
    return annotation


def _open_auction(rng: random.Random, auction_id: int, item_count: int) -> XMLNode:
    auction = XMLNode(
        "open_auction", attributes={"id": f"open_auction{auction_id}"}
    )
    auction.new_child("initial", text=f"{rng.randint(5, 300) * 0.5:.2f}")
    if rng.random() < 0.4:
        auction.new_child("reserve", text=f"{rng.randint(50, 500) * 0.5:.2f}")
    for _ in range(rng.randint(0, 4)):
        auction.add_child(_bidder(rng))
    auction.new_child("current", text=f"{rng.randint(10, 600) * 0.5:.2f}")
    if rng.random() < 0.3:
        auction.new_child("privacy", text="Yes")
    auction.new_child("itemref", attributes={"item": f"item{rng.randrange(max(item_count, 1))}"})
    auction.new_child("seller", attributes={"person": f"person{rng.randrange(500)}"})
    auction.add_child(_annotation(rng))
    auction.new_child("quantity", text=str(rng.randint(1, 3)))
    auction.new_child("type", text=rng.choice(("Regular", "Featured")))
    interval = auction.new_child("interval")
    interval.new_child("start", text="01/01/2001")
    interval.new_child("end", text="12/31/2001")
    return auction


def _closed_auction(rng: random.Random, item_count: int) -> XMLNode:
    auction = XMLNode("closed_auction")
    auction.new_child("seller", attributes={"person": f"person{rng.randrange(500)}"})
    auction.new_child("buyer", attributes={"person": f"person{rng.randrange(500)}"})
    auction.new_child("itemref", attributes={"item": f"item{rng.randrange(max(item_count, 1))}"})
    auction.new_child("price", text=f"{rng.randint(10, 800) * 0.5:.2f}")
    auction.new_child("date", text=f"{rng.randint(1,12):02d}/{rng.randint(1,28):02d}/2001")
    auction.new_child("quantity", text=str(rng.randint(1, 3)))
    auction.new_child("type", text=rng.choice(("Regular", "Featured")))
    auction.add_child(_annotation(rng))
    return auction


def generate_xmark(scale: float = 0.1, seed: int = 42) -> XMLTree:
    """Generate an XMark-like document tree.

    ``scale=0.1`` yields roughly 10k-15k element nodes; node count grows
    linearly with ``scale``.
    """
    rng = random.Random(seed)
    item_count = max(6, int(120 * scale))
    person_count = max(5, int(100 * scale))
    open_count = max(4, int(60 * scale))
    closed_count = max(3, int(40 * scale))
    category_count = max(4, int(25 * scale))

    site = XMLNode("site")
    regions = site.new_child("regions")
    items_made = 0
    for region_name in XMARK_REGIONS:
        region = regions.new_child(region_name)
        for _ in range(max(1, item_count // len(XMARK_REGIONS))):
            region.add_child(_item(rng, items_made, category_count))
            items_made += 1

    categories = site.new_child("categories")
    for category_id in range(category_count):
        category = categories.new_child(
            "category", attributes={"id": f"category{category_id}"}
        )
        category.new_child("name", text=_words(rng, 2))
        category.add_child(_description(rng))

    catgraph = site.new_child("catgraph")
    for _ in range(category_count):
        catgraph.new_child(
            "edge",
            attributes={
                "from": f"category{rng.randrange(category_count)}",
                "to": f"category{rng.randrange(category_count)}",
            },
        )

    people = site.new_child("people")
    for person_id in range(person_count):
        people.add_child(_person(rng, person_id))

    open_auctions = site.new_child("open_auctions")
    for auction_id in range(open_count):
        open_auctions.add_child(_open_auction(rng, auction_id, items_made))

    closed_auctions = site.new_child("closed_auctions")
    for _ in range(closed_count):
        closed_auctions.add_child(_closed_auction(rng, items_made))

    return XMLTree(site)


def generate_xmark_document(
    scale: float = 0.1, seed: int = 42
) -> EncodedDocument:
    """Generate and Dewey-encode an XMark-like document."""
    return encode_tree(generate_xmark(scale=scale, seed=seed))
