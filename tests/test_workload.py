"""Tests for the XMark-like generator and YFilter-like query generator."""

import pytest

from repro.matching import evaluate
from repro.workload import (
    QueryGenConfig,
    QueryGenerator,
    XMARK_REGIONS,
    generate_positive,
    generate_xmark,
    generate_xmark_document,
)
from repro.xmltree import DocumentSchema, serialize, parse_xml
from repro.xpath import Axis, parse_xpath


class TestXMarkGenerator:
    def test_deterministic(self):
        first = generate_xmark(scale=0.1, seed=5)
        second = generate_xmark(scale=0.1, seed=5)
        assert first.root.structurally_equal(second.root)

    def test_different_seeds_differ(self):
        first = generate_xmark(scale=0.1, seed=1)
        second = generate_xmark(scale=0.1, seed=2)
        assert not first.root.structurally_equal(second.root)

    def test_scale_grows_document(self):
        small = generate_xmark(scale=0.1).size()
        large = generate_xmark(scale=1.0).size()
        assert large > small * 3

    def test_skeleton_structure(self):
        tree = generate_xmark(scale=0.1)
        assert tree.root.label == "site"
        top = [child.label for child in tree.root.children]
        assert top == [
            "regions", "categories", "catgraph", "people",
            "open_auctions", "closed_auctions",
        ]
        regions = tree.root.children[0]
        assert tuple(c.label for c in regions.children) == XMARK_REGIONS

    def test_recursive_parlist_present(self):
        tree = generate_xmark(scale=1.0, seed=42)
        nested = evaluate(parse_xpath("//parlist//parlist"), tree)
        assert nested  # recursion actually exercised

    def test_attributes_present(self):
        tree = generate_xmark(scale=0.1)
        items = evaluate(parse_xpath("//item[@id]"), tree)
        assert items == evaluate(parse_xpath("//item"), tree)

    def test_serializes_and_reparses(self):
        tree = generate_xmark(scale=0.05)
        again = parse_xml(serialize(tree))
        assert again.root.structurally_equal(tree.root)

    def test_encoded_document(self):
        doc = generate_xmark_document(scale=0.05)
        for node in doc.tree.iter_nodes():
            assert node.dewey is not None
            assert doc.fst.decode(node.dewey) == node.label_path()


class TestQueryGenerator:
    def _doc(self):
        return generate_xmark_document(scale=0.2, seed=9)

    def test_deterministic_stream(self):
        doc = self._doc()
        first = QueryGenerator(doc.schema, seed=3).generate_many(20)
        second = QueryGenerator(doc.schema, seed=3).generate_many(20)
        assert [p.to_xpath() for p in first] == [p.to_xpath() for p in second]

    def test_respects_max_depth(self):
        doc = self._doc()
        config = QueryGenConfig(max_depth=3, num_nestedpath=0)
        generator = QueryGenerator(doc.schema, config, seed=1)
        for pattern in generator.generate_many(50):
            spine = pattern.ret.root_path()
            assert len(spine) <= 3

    def test_zero_probabilities(self):
        doc = self._doc()
        config = QueryGenConfig(prob_wild=0.0, prob_desc=0.0, num_nestedpath=0)
        generator = QueryGenerator(doc.schema, config, seed=2)
        for pattern in generator.generate_many(40):
            assert not pattern.has_wildcard()
            assert not pattern.has_descendant_axis()
            assert pattern.root.axis is Axis.CHILD

    def test_high_probabilities(self):
        doc = self._doc()
        config = QueryGenConfig(prob_wild=1.0, prob_desc=1.0, num_nestedpath=0)
        generator = QueryGenerator(doc.schema, config, seed=2)
        sample = generator.generate_many(20)
        assert all(p.has_wildcard() for p in sample)
        assert all(p.has_descendant_axis() for p in sample)

    def test_nested_paths_add_branches(self):
        doc = self._doc()
        config = QueryGenConfig(num_nestedpath=2, max_depth=4)
        generator = QueryGenerator(doc.schema, config, seed=4)
        branched = sum(
            1 for p in generator.generate_many(50) if not p.is_path()
        )
        assert branched > 10

    def test_attribute_predicates(self):
        doc = self._doc()
        config = QueryGenConfig(num_pred=1, attributes=("id",))
        generator = QueryGenerator(doc.schema, config, seed=5)
        with_attrs = sum(
            1
            for p in generator.generate_many(30)
            if any(n.constraints for n in p.iter_nodes())
        )
        assert with_attrs == 30

    def test_generate_positive_all_nonempty(self):
        doc = self._doc()
        generator = QueryGenerator(doc.schema, seed=6)
        queries = generate_positive(generator, doc.tree, 25)
        assert len(queries) == 25
        for pattern in queries:
            assert evaluate(pattern, doc.tree)

    def test_generate_positive_budget(self):
        schema = DocumentSchema("site", {"site": ["x"], "x": []})
        from repro.xmltree import build_tree

        tree = build_tree(("site", []))  # 'x' never matches
        config = QueryGenConfig(prob_wild=0.0, prob_desc=0.0, num_nestedpath=0,
                                max_depth=2)
        generator = QueryGenerator(schema, config, seed=0)
        with pytest.raises(RuntimeError):
            generate_positive(generator, tree, 5, max_attempts_factor=2)
