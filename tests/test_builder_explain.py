"""Tests for the fluent pattern builder and the query explainer."""

import pytest

from repro import MaterializedViewSystem, build_tree, encode_tree, parse_xpath
from repro.core import explain_query
from repro.xpath import Axis
from repro.xpath.builder import step


class TestStepBuilder:
    def test_paper_view_v1(self):
        pattern = step("s").where(step.child("t")).child("p").build()
        assert pattern == parse_xpath("s[t]/p")

    def test_root_anchored(self):
        pattern = step.root("a").child("b").build()
        assert pattern == parse_xpath("/a/b")
        assert pattern.root.axis is Axis.CHILD

    def test_descendant_steps(self):
        pattern = step("a").descendant("b").child("c").build()
        assert pattern == parse_xpath("//a//b/c")

    def test_descendant_branch(self):
        pattern = step("a").where(step("c")).child("b").build()
        assert pattern == parse_xpath("//a[.//c]/b")

    def test_nested_branches(self):
        branch = step.child("b").where(step.child("c"))
        pattern = step("a").where(branch).child("d").build()
        assert pattern == parse_xpath("//a[b[c]]/d")

    def test_attribute_constraints(self):
        pattern = step("item").attr("id", "=", "7").child("name").build()
        assert pattern == parse_xpath("//item[@id='7']/name")
        existence = step("item").attr("featured").build()
        assert existence == parse_xpath("//item[@featured]")

    def test_returning_marks_internal_answer(self):
        pattern = step("a").child("b").returning().child("c").build()
        # answer node is b; c is below the answer
        assert pattern.ret.label == "b"
        reparsed = parse_xpath(pattern.to_xpath())
        assert reparsed == pattern

    def test_default_answer_is_tail(self):
        pattern = step("a").child("b").child("c").build()
        assert pattern.ret.label == "c"

    def test_predicates_on_intermediate_steps(self):
        pattern = (
            step("a").where(step.child("x"))
            .child("b").where(step.child("y"))
            .child("c").build()
        )
        assert pattern == parse_xpath("//a[x]/b[y]/c")

    def test_builder_round_trips_through_xpath(self):
        pattern = (
            step.root("site").child("people").child("person")
            .where(step.child("address").child("city"))
            .attr("id")
            .child("name").build()
        )
        assert parse_xpath(pattern.to_xpath()) == pattern


@pytest.fixture
def explained_system():
    doc = encode_tree(build_tree(
        ("b", ["t", ("s", ["t", "p", ("f", ["i"])])])
    ))
    system = MaterializedViewSystem(doc)
    system.register_view("V1", "s[t]/p")
    system.register_view("V4", "s[p]/f")
    system.register_view("V9", "//a/zzz")  # never a candidate
    return system


class TestExplainQuery:
    def test_answerable_query(self, explained_system):
        explanation = explain_query(
            explained_system, parse_xpath("s[f//i][t]/p")
        )
        assert explanation.answerable
        assert explanation.paths == ["//s/f//i", "//s/t", "//s/p"]
        assert explanation.obligations == ["i", "p", "t", "Δ"]
        ids = [view.view_id for view in explanation.candidates]
        assert ids == ["V1", "V4"]
        assert explanation.filtered_view_count == 1
        assert sorted(explanation.selections["MV"]) == ["V1", "V4"]
        v1 = explanation.candidates[0]
        assert v1.provides_delta
        assert v1.fragment_count == 1

    def test_unanswerable_query_reports_uncovered(self, explained_system):
        explanation = explain_query(
            explained_system, parse_xpath("s[f//i][t][zzz]/p")
        )
        assert not explanation.answerable
        assert "zzz" in explanation.uncovered

    def test_render_is_complete(self, explained_system):
        explanation = explain_query(
            explained_system, parse_xpath("s[f//i][t]/p")
        )
        text = explanation.render()
        assert "selection MV" in text
        assert "V1" in text and "V4" in text
        assert "obligations" in text

    def test_render_unanswerable(self, explained_system):
        explanation = explain_query(explained_system, parse_xpath("//q/w"))
        assert "UNANSWERABLE" in explanation.render()


class TestExplainCLI:
    def test_full_explain(self, tmp_path, capsys):
        from repro.cli import main

        book = tmp_path / "b.xml"
        book.write_text("<b><t/><s><t/><p/><f><i/></f></s></b>")
        code = main([
            "explain", "s[f//i][t]/p",
            "--document", str(book),
            "--view", "V1=s[t]/p",
            "--view", "V4=s[p]/f",
            "--full",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "selection MV" in out

    def test_full_explain_unanswerable_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        book = tmp_path / "b.xml"
        book.write_text("<b><t/><s><t/><p/></s></b>")
        code = main([
            "explain", "//q/w",
            "--document", str(book),
            "--view", "V1=s[t]/p",
            "--full",
        ])
        assert code == 3
        assert "UNANSWERABLE" in capsys.readouterr().out
