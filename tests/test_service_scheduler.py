"""Admission control, deadlines and coalescing (repro.service.scheduler).

The engine is replaced by a controllable fake so the tests can park
the worker pool on a latch and observe exactly how the scheduler
behaves with a full queue, an expired deadline, or a burst of
identical requests — without any timing-sensitive sleeps deciding
pass/fail.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.system import AnswerOutcome
from repro.errors import ViewNotAnswerableError, XPathSyntaxError
from repro.service import (
    AdmissionRejectedError,
    DeadlineExceededError,
    QueryScheduler,
)


class _FakeEngine:
    """Answers ``//slow`` only after ``release`` is set; counts calls
    per canonical query so coalescing is directly observable."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.slow_entered = threading.Event()
        self.calls: dict[str, int] = {}
        self._lock = threading.Lock()

    def answer(self, pattern, strategy="HV"):
        key = pattern.canonical_string()
        with self._lock:
            self.calls[key] = self.calls.get(key, 0) + 1
        if "slow" in key:
            self.slow_entered.set()
            assert self.release.wait(timeout=10.0)
        if "missing" in key:
            raise ViewNotAnswerableError(
                "no view covers it", uncovered=frozenset({"missing"})
            )
        return AnswerOutcome(
            codes=[(1, 2), (1, 3)], strategy=strategy, epoch_seq=7
        )


@pytest.fixture
def engine():
    fake = _FakeEngine()
    yield fake
    fake.release.set()  # never leave a worker parked


def _park_worker(scheduler, engine):
    """Occupy the single worker with a slow flight; returns its thread."""
    thread = threading.Thread(
        target=lambda: scheduler.submit("//slow", timeout=30.0)
    )
    thread.start()
    assert engine.slow_entered.wait(timeout=5.0)
    return thread


def test_coalescing_single_execution_fans_out(engine):
    scheduler = QueryScheduler(engine, workers=1, queue_limit=8)
    try:
        parked = _park_worker(scheduler, engine)
        results: list[AnswerOutcome] = []
        lock = threading.Lock()

        def submit() -> None:
            outcome = scheduler.submit("//a/b", timeout=30.0)
            with lock:
                results.append(outcome)

        waiters = [threading.Thread(target=submit) for _ in range(4)]
        for thread in waiters:
            thread.start()
        # All four must be registered on one flight before release.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if scheduler.stats()["coalesced"] == 3:
                break
            time.sleep(0.01)
        assert scheduler.stats()["coalesced"] == 3
        engine.release.set()
        for thread in waiters:
            thread.join(timeout=10.0)
        parked.join(timeout=10.0)

        assert len(results) == 4
        # One evaluation served all four waiters...
        slow_key = [key for key in engine.calls if "slow" in key]
        fast_keys = [key for key in engine.calls if "slow" not in key]
        assert len(fast_keys) == 1 and engine.calls[fast_keys[0]] == 1
        assert len(slow_key) == 1
        # ...and every waiter owns an independent copy.
        identities = {id(outcome) for outcome in results}
        assert len(identities) == 4
        results[0].codes.append((9,))
        assert all(outcome.codes == [(1, 2), (1, 3)]
                   for outcome in results[1:])
        assert all(outcome.epoch_seq == 7 for outcome in results)
    finally:
        engine.release.set()
        scheduler.close()


def test_admission_rejects_when_queue_full(engine):
    scheduler = QueryScheduler(engine, workers=1, queue_limit=1)
    try:
        parked = _park_worker(scheduler, engine)
        # Fills the single queue slot.
        filler = threading.Thread(
            target=lambda: scheduler.submit("//a", timeout=30.0)
        )
        filler.start()
        deadline = time.monotonic() + 5.0
        while scheduler.stats()["queue_depth"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with pytest.raises(AdmissionRejectedError) as excinfo:
            scheduler.submit("//b", timeout=30.0)
        assert excinfo.value.retry_after > 0
        assert scheduler.stats()["rejected"] == 1
        engine.release.set()
        filler.join(timeout=10.0)
        parked.join(timeout=10.0)
        # The rejected flight was unpublished: a retry succeeds.
        retry = scheduler.submit("//b", timeout=30.0)
        assert retry.codes
    finally:
        engine.release.set()
        scheduler.close()


def test_waiter_deadline_expires_while_queued(engine):
    scheduler = QueryScheduler(engine, workers=1, queue_limit=8)
    try:
        parked = _park_worker(scheduler, engine)
        with pytest.raises(DeadlineExceededError):
            scheduler.submit("//late", timeout=0.05)
        engine.release.set()
        parked.join(timeout=10.0)
    finally:
        engine.release.set()
        scheduler.close()
    # The worker dropped the expired flight without evaluating it, or
    # evaluated it after the waiter left — either way the waiter saw
    # a deadline error, and the scheduler accounted for the flight.
    stats = scheduler.stats()
    assert stats["expired"] + stats["completed"] >= 1


def test_coalesced_failure_raises_fresh_instances(engine):
    scheduler = QueryScheduler(engine, workers=1, queue_limit=8)
    try:
        parked = _park_worker(scheduler, engine)
        raised: list[BaseException] = []
        lock = threading.Lock()

        def submit() -> None:
            try:
                scheduler.submit("//missing", timeout=30.0)
            except ViewNotAnswerableError as error:
                with lock:
                    raised.append(error)

        waiters = [threading.Thread(target=submit) for _ in range(3)]
        for thread in waiters:
            thread.start()
        deadline = time.monotonic() + 5.0
        while scheduler.stats()["coalesced"] < 2:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        engine.release.set()
        for thread in waiters:
            thread.join(timeout=10.0)
        parked.join(timeout=10.0)

        assert len(raised) == 3
        assert len({id(error) for error in raised}) == 3
        assert all(error.uncovered == frozenset({"missing"})
                   for error in raised)
    finally:
        engine.release.set()
        scheduler.close()


def test_syntax_error_raised_in_caller_before_admission(engine):
    scheduler = QueryScheduler(engine, workers=1, queue_limit=8)
    try:
        with pytest.raises(XPathSyntaxError):
            scheduler.submit("not an xpath !!")
        assert scheduler.stats()["submitted"] == 0
    finally:
        scheduler.close()


def test_close_drains_and_rejects_new_work(engine):
    scheduler = QueryScheduler(engine, workers=2, queue_limit=8)
    outcome = scheduler.submit("//a")
    assert outcome.codes
    scheduler.close()
    scheduler.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        scheduler.submit("//a")


def test_coalescing_can_be_disabled(engine):
    scheduler = QueryScheduler(
        engine, workers=2, queue_limit=8, coalesce=False
    )
    try:
        for _ in range(3):
            scheduler.submit("//a")
        fast = [key for key in engine.calls if "slow" not in key]
        assert engine.calls[fast[0]] == 3
        assert scheduler.stats()["coalesced"] == 0
    finally:
        scheduler.close()
