"""Integration tests for MaterializedViewSystem."""

import pytest

from repro import MaterializedViewSystem, ViewNotAnswerableError, encode_tree
from repro.storage import KVStore
from repro.xmltree import build_tree


BOOK = ("b", [
    "t", "a", "a",
    ("s", ["t", "p", ("f", ["i"])]),
    ("s", ["t", "p", "p",
           ("s", ["t", "p", ("f", ["i"]), "f"]),
           ("s", ["t", "p"]),
          ]),
])


@pytest.fixture
def system():
    doc = encode_tree(build_tree(BOOK))
    sys_ = MaterializedViewSystem(doc)
    assert sys_.register_view("V1", "s[t]/p")
    assert sys_.register_view("V4", "s[p]/f")
    assert sys_.register_view("V5", "//s//t")
    return sys_


class TestRegistration:
    def test_register_and_count(self, system):
        assert system.view_count == 3
        assert system.view("V1").to_xpath() == "//s[t]/p"

    def test_duplicate_rejected(self, system):
        with pytest.raises(ValueError):
            system.register_view("V1", "//s")

    def test_cap_excludes_view(self):
        doc = encode_tree(build_tree(BOOK))
        tiny = MaterializedViewSystem(doc, fragment_cap=8)
        assert not tiny.register_view("big", "//s")
        assert tiny.view_count == 0

    def test_register_views_bulk(self):
        doc = encode_tree(build_tree(BOOK))
        sys_ = MaterializedViewSystem(doc)
        good = sys_.register_views({"A": "//s/p", "B": "//s/t"})
        assert good == ["A", "B"]


class TestAnswering:
    @pytest.mark.parametrize("strategy", ["HV", "MV", "MN", "CB"])
    def test_all_strategies_correct(self, system, strategy):
        query = "s[f//i][t]/p"
        outcome = system.answer(query, strategy)
        assert outcome.codes == system.direct_codes(query)
        assert outcome.strategy == strategy
        assert outcome.total_seconds >= outcome.lookup_seconds >= 0

    def test_unknown_strategy(self, system):
        with pytest.raises(ValueError):
            system.answer("//s", "XX")

    def test_unanswerable_raises(self, system):
        with pytest.raises(ViewNotAnswerableError):
            system.answer("//a")  # author views not materialized

    def test_try_answer_returns_none(self, system):
        assert system.try_answer("//a") is None
        assert system.try_answer("//s/t") is not None

    def test_candidates_recorded_for_filtered_strategies(self, system):
        outcome = system.answer("s[f//i][t]/p", "HV")
        assert "V1" in outcome.candidates
        assert outcome.filter_result is not None
        mn = system.answer("s[f//i][t]/p", "MN")
        assert mn.candidates == []
        assert mn.filter_result is None

    def test_answer_contained(self, system):
        query = "s[f//i][t]/p"
        result = system.answer_contained(query)
        truth = set(system.direct_codes(query))
        assert set(result.codes) <= truth

    def test_answer_contained_exact_with_equivalent_view(self, system):
        result = system.answer_contained("//s[t]/p")
        assert result.is_exact
        assert result.codes == system.direct_codes("//s[t]/p")

    def test_pattern_object_accepted(self, system):
        from repro.xpath import parse_xpath

        pattern = parse_xpath("//s/t")
        outcome = system.answer(pattern)
        assert outcome.codes == system.direct_codes(pattern)


class TestBaselines:
    @pytest.mark.parametrize(
        "query", ["s[f//i][t]/p", "//s/t", "/b/s/s//i", "//s[p]/f"]
    )
    def test_bn_bf_match_truth(self, system, query):
        truth = system.direct_codes(query)
        assert system.answer_bn(query).codes == truth
        assert system.answer_bf(query).codes == truth

    def test_index_sizes_reported(self, system):
        sizes = system.index_sizes()
        assert sizes["BF"] >= sizes["BN"] * 0  # both present
        assert sizes["BN"] > 0 and sizes["BF"] > 0


class TestPersistentBackend:
    def test_fragments_in_kvstore(self, tmp_path):
        doc = encode_tree(build_tree(BOOK))
        path = str(tmp_path / "frags.db")
        with KVStore(path) as store:
            sys_ = MaterializedViewSystem(doc, store=store)
            sys_.register_view("V1", "s[t]/p")
            outcome = sys_.answer("//s[t]/p")
            assert outcome.codes == sys_.direct_codes("//s[t]/p")
        # fragments survive on disk
        with KVStore(path) as store:
            from repro.storage import FragmentStore

            fragments = FragmentStore(store)
            assert fragments.is_materialized("V1")


class TestReopen:
    def test_reopen_answers_without_rematerializing(self, tmp_path):
        doc = encode_tree(build_tree(BOOK))
        path = str(tmp_path / "system.db")
        with KVStore(path) as store:
            original = MaterializedViewSystem(doc, store=store)
            original.register_view("V1", "s[t]/p")
            original.register_view("V4", "s[p]/f")
            truth = original.direct_codes("s[f//i][t]/p")
            original.fragments.store.flush()
        # New session: same document, state from disk only.
        doc2 = encode_tree(build_tree(BOOK))
        with KVStore(path) as store:
            reopened = MaterializedViewSystem.reopen(doc2, store)
            assert reopened.view_count == 2
            outcome = reopened.answer("s[f//i][t]/p")
            assert outcome.codes == truth
            assert sorted(outcome.view_ids) == ["V1", "V4"]

    def test_reopen_keeps_capped_views_excluded(self, tmp_path):
        doc = encode_tree(build_tree(BOOK))
        path = str(tmp_path / "system.db")
        with KVStore(path) as store:
            original = MaterializedViewSystem(doc, fragment_cap=8, store=store)
            assert not original.register_view("big", "//s")
        doc2 = encode_tree(build_tree(BOOK))
        with KVStore(path) as store:
            reopened = MaterializedViewSystem.reopen(doc2, store, fragment_cap=8)
            assert reopened.view_count == 0
            assert reopened.try_answer("//s") is None

    def test_reopen_allows_more_views(self, tmp_path):
        doc = encode_tree(build_tree(BOOK))
        path = str(tmp_path / "system.db")
        with KVStore(path) as store:
            MaterializedViewSystem(doc, store=store).register_view("V1", "s[t]/p")
        doc2 = encode_tree(build_tree(BOOK))
        with KVStore(path) as store:
            reopened = MaterializedViewSystem.reopen(doc2, store)
            reopened.register_view("V5", "//s//t")
            outcome = reopened.answer("//s/t")
            assert outcome.codes == reopened.direct_codes("//s/t")
