"""Tests for extended Dewey encoding, schema and FST decoding."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, SchemaError
from repro.xmltree import (
    DocumentSchema,
    FiniteStateTransducer,
    build_tree,
    common_prefix,
    descendant_range_key,
    encode_tree,
    format_code,
    is_ancestor,
    is_ancestor_or_self,
    is_parent,
    is_prefix,
    parse_code,
)
from repro.xmltree.dewey import assign_child_component, compare_codes

from conftest import LABELS, random_tree


class TestAssignment:
    def test_paper_figure2_components(self, book_doc):
        """Siblings t,a,a,s,s under book get 0,1,4,5,8 (paper Fig. 2)."""
        codes = [child.dewey for child in book_doc.tree.root.children]
        assert codes == [(0, 0), (0, 1), (0, 4), (0, 5), (0, 8)]

    def test_components_strictly_increase(self, book_doc):
        for node in book_doc.tree.iter_nodes():
            components = [child.dewey[-1] for child in node.children]
            assert components == sorted(components)
            assert len(set(components)) == len(components)

    def test_residue_identifies_label(self, book_doc):
        schema = book_doc.schema
        for node in book_doc.tree.iter_nodes():
            for child in node.children:
                fanout = schema.fanout(node.label)
                residue = child.dewey[-1] % fanout
                assert schema.child_at(node.label, residue) == child.label

    def test_assign_child_component_first_child(self):
        schema = DocumentSchema("r", {"r": ["a", "b", "c"]})
        assert assign_child_component(schema, "r", "a", None) == 0
        assert assign_child_component(schema, "r", "b", None) == 1
        assert assign_child_component(schema, "r", "c", None) == 2

    def test_assign_child_component_after_sibling(self):
        schema = DocumentSchema("r", {"r": ["a", "b", "c"]})
        # previous component 1 (a 'b'); next 'a' must be smallest > 1 ≡ 0 (mod 3)
        assert assign_child_component(schema, "r", "a", 1) == 3
        assert assign_child_component(schema, "r", "c", 1) == 2
        assert assign_child_component(schema, "r", "b", 1) == 4


class TestCodeMath:
    def test_format_and_parse_roundtrip(self):
        code = (0, 8, 6)
        assert format_code(code) == "0.8.6"
        assert parse_code("0.8.6") == code

    def test_parse_rejects_garbage(self):
        with pytest.raises(EncodingError):
            parse_code("")
        with pytest.raises(EncodingError):
            parse_code("0.x.1")

    def test_prefix_relations(self):
        assert is_prefix((0, 8), (0, 8, 6))
        assert is_prefix((0, 8), (0, 8))
        assert not is_prefix((0, 8, 6), (0, 8))
        assert is_ancestor((0,), (0, 1))
        assert not is_ancestor((0, 1), (0, 1))
        assert is_ancestor_or_self((0, 1), (0, 1))
        assert is_parent((0, 8), (0, 8, 6))
        assert not is_parent((0,), (0, 8, 6))

    def test_common_prefix_is_lca(self):
        # Paper: 0.8.6.0 and 0.8.6.1 share 0.8.6.
        assert common_prefix((0, 8, 6, 0), (0, 8, 6, 1)) == (0, 8, 6)
        assert common_prefix((0, 1), (0, 2)) == (0,)
        assert common_prefix((1,), (2,)) == ()

    def test_compare_codes_orders_ancestors_first(self):
        assert compare_codes((0, 8), (0, 8, 6)) == -1
        assert compare_codes((0, 8, 6), (0, 8)) == 1
        assert compare_codes((0, 8), (0, 8)) == 0

    def test_descendant_range(self):
        low, high = descendant_range_key((0, 8))
        inside = [(0, 8), (0, 8, 0), (0, 8, 6, 3)]
        outside = [(0, 7, 9), (0, 9), (1,), (0,)]
        for code in inside:
            assert low <= code < high
        for code in outside:
            assert not (low <= code < high)

    def test_descendant_range_rejects_empty(self):
        with pytest.raises(EncodingError):
            descendant_range_key(())

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=6),
           st.lists(st.integers(0, 50), min_size=1, max_size=6))
    def test_tuple_order_matches_document_containment(self, a, b):
        """Prefixes sort into their descendant range; non-descendants out."""
        a, b = tuple(a), tuple(b)
        low, high = descendant_range_key(a)
        assert (low <= b < high) == is_prefix(a, b)


class TestSchema:
    def test_from_tree_orders_by_first_appearance(self):
        tree = build_tree(("r", ["x", "y", "x", "z"]))
        schema = DocumentSchema.from_tree(tree)
        assert schema.child_labels("r") == ("x", "y", "z")

    def test_rejects_duplicate_child_labels(self):
        with pytest.raises(SchemaError):
            DocumentSchema("r", {"r": ["a", "a"]})

    def test_missing_label_raises(self):
        schema = DocumentSchema("r", {"r": ["a"]})
        with pytest.raises(SchemaError):
            schema.child_labels("missing")
        with pytest.raises(SchemaError):
            schema.child_position("r", "zzz")

    def test_child_at_bounds(self):
        schema = DocumentSchema("r", {"r": ["a"], "a": []})
        with pytest.raises(SchemaError):
            schema.child_at("a", 0)
        with pytest.raises(SchemaError):
            schema.child_at("r", 5)

    def test_fanout_minimum_one(self):
        schema = DocumentSchema("r", {"r": []})
        assert schema.fanout("r") == 1

    def test_dict_roundtrip(self):
        schema = DocumentSchema("r", {"r": ["a", "b"], "a": ["c"]})
        again = DocumentSchema.from_dict(schema.to_dict())
        assert schema == again

    def test_labels_includes_leaves(self):
        schema = DocumentSchema("r", {"r": ["a", "b"]})
        assert schema.labels() >= {"r", "a", "b"}


class TestFST:
    def test_paper_example_2_1(self, book_doc):
        """0.8.6 decodes to b/s/s (paper Example 2.1)."""
        fst = book_doc.fst
        # In our book fixture s3 sits at 0.8.5 (sibling layout differs
        # slightly); check the invariant on the real nodes instead.
        for node in book_doc.tree.iter_nodes():
            assert fst.decode(node.dewey) == node.label_path()

    def test_decode_caches_prefixes(self, book_doc):
        fst = FiniteStateTransducer(book_doc.schema)
        deep = max(book_doc.tree.iter_nodes(), key=lambda n: len(n.dewey))
        fst.decode(deep.dewey)
        # Every prefix must now be cached and still correct.
        for depth in range(1, len(deep.dewey) + 1):
            assert fst.decode(deep.dewey[:depth])[-1:] == (
                book_doc.tree.node_at(deep.dewey[:depth]).label,
            )

    def test_label_of(self, book_doc):
        for node in book_doc.tree.iter_nodes():
            assert book_doc.fst.label_of(node.dewey) == node.label

    def test_empty_code_rejected(self, book_doc):
        with pytest.raises(EncodingError):
            book_doc.fst.decode(())

    def test_undecodable_code_rejected(self):
        schema = DocumentSchema("r", {"r": []})
        fst = FiniteStateTransducer(schema)
        with pytest.raises(EncodingError):
            fst.decode((0, 1))

    def test_transitions_table(self, book_doc):
        table = book_doc.fst.transitions()
        assert table["b"] == ("t", "a", "s")
        assert table["s"] == ("t", "p", "s", "f")
        assert "t" not in table  # childless labels omitted

    def test_clear_cache(self, book_doc):
        fst = book_doc.fst
        fst.decode((0, 8))
        fst.clear_cache()
        assert fst.decode((0, 8)) == ("b", "s")


class TestEncodeRandomTrees:
    @pytest.mark.parametrize("seed", range(8))
    def test_fst_decodes_every_node(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=60)
        doc = encode_tree(tree)
        for node in tree.iter_nodes():
            assert doc.fst.decode(node.dewey) == node.label_path()

    @pytest.mark.parametrize("seed", range(4))
    def test_codes_unique_and_prefix_consistent(self, seed):
        rng = random.Random(seed)
        tree = random_tree(rng, max_nodes=60)
        doc = encode_tree(tree)
        codes = [node.dewey for node in tree.iter_nodes()]
        assert len(set(codes)) == len(codes)
        for node in tree.iter_nodes():
            for child in node.children:
                assert is_parent(node.dewey, child.dewey)
        del doc

    def test_node_by_code_index(self, book_doc):
        for node in book_doc.tree.iter_nodes():
            assert book_doc.node_by_code(node.dewey) is node
        assert book_doc.node_by_code((9, 9)) is None
